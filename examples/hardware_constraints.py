"""Hardware constraints end to end: crosstalk, shared control, pulses.

Maps a parallel-heavy Ising-grid simulation circuit onto the 17-qubit
surface chip, then explores the bottom layers of the stack:

1. baseline ASAP schedule (maximal parallelism),
2. shared-control constrained schedule (limited simultaneous CZs),
3. crosstalk-free schedule (no adjacent simultaneous CZs),

comparing latency and crosstalk-penalised fidelity for each, and finally
lowering the winning schedule to analog control pulses.

Run:  python examples/hardware_constraints.py
"""

from repro.compiler import asap_schedule, sabre_mapper
from repro.fullstack import compile_to_pulses
from repro.metrics import crosstalk_fidelity, crosstalk_overlaps
from repro.hardware import surface17_device
from repro.workloads import ising_grid


def main() -> None:
    device = surface17_device()
    circuit = ising_grid(3, 3, steps=2)
    print(f"workload: {circuit.name} ({circuit.num_gates} gates)")

    result = sabre_mapper().map(circuit, device)
    print(
        f"mapped with {result.mapper_name}: {result.swap_count} SWAPs, "
        f"{result.mapped.num_gates} gates\n"
    )

    variants = {
        "unconstrained ASAP": asap_schedule(result.mapped, device.calibration),
        "max 2 parallel CZ": asap_schedule(
            result.mapped, device.calibration, max_parallel_2q=2
        ),
        "crosstalk-free": asap_schedule(
            result.mapped,
            device.calibration,
            coupling=device.coupling,
            crosstalk_free=True,
        ),
    }

    print(
        f"{'schedule':22s} {'latency ns':>10s} {'parallel':>9s} "
        f"{'xtalk pairs':>11s} {'fidelity':>9s}"
    )
    for name, schedule in variants.items():
        overlaps = crosstalk_overlaps(schedule, device.coupling)
        fidelity = crosstalk_fidelity(schedule, device.coupling, device.calibration)
        print(
            f"{name:22s} {schedule.latency_ns:10.0f} "
            f"{schedule.parallelism():9.2f} {overlaps:11d} {fidelity:9.4f}"
        )

    best = variants["crosstalk-free"]
    pulses = compile_to_pulses(best, device.calibration)
    print(
        f"\npulse program: {pulses.num_pulses} pulses on "
        f"{len(pulses.channels())} channels, {pulses.duration_ns:.0f} ns, "
        f"{pulses.total_samples()} waveform samples"
    )
    busiest = max(pulses.channels(), key=pulses.channel_occupancy)
    print(
        f"busiest channel: {busiest} "
        f"({pulses.channel_occupancy(busiest):.0%} occupied)"
    )
    first = pulses.pulses[0]
    print(
        f"first pulse: {first.label} on {first.channel} at {first.start_ns:.0f} ns, "
        f"peak {first.waveform.peak:.2f}, {len(first.waveform.samples)} samples"
    )
    print(f"collision free: {not pulses.has_collisions()}")


if __name__ == "__main__":
    main()
