"""Quickstart: compile a circuit to a NISQ chip and inspect the cost.

Builds a small GHZ-state circuit, maps it onto the Surface-17 device with
the trivial mapper (the paper's baseline), verifies the result against
the state-vector oracle and prints the overhead/fidelity report of the
kind Fig. 3 aggregates.

Run:  python examples/quickstart.py
"""

from repro import (
    Circuit,
    profile_circuit,
    sabre_mapper,
    surface17_device,
    trivial_mapper,
)


def main() -> None:
    # A 6-qubit GHZ state: H then a CNOT chain.
    circuit = Circuit(6, name="ghz-6")
    circuit.h(0)
    for q in range(5):
        circuit.cx(q, q + 1)
    print(f"input circuit: {circuit.num_gates} gates, depth {circuit.depth()}")

    # Profile it the paper's way: size parameters + interaction graph.
    profile = profile_circuit(circuit)
    print(
        f"profile: {profile.size.num_qubits} qubits, "
        f"{profile.size.two_qubit_percentage:.0f}% two-qubit gates, "
        f"interaction graph has {profile.metrics.num_edges:.0f} edges "
        f"(max degree {profile.metrics.max_degree:.0f})"
    )

    device = surface17_device()
    print(
        f"\ntarget device: {device.name} — {device.num_qubits} qubits, "
        f"CZ error {device.calibration.two_qubit_error:.1%}"
    )

    for mapper in (trivial_mapper(), sabre_mapper()):
        result = mapper.map(circuit, device)
        verified = result.verify()
        print(
            f"\n[{result.mapper_name}] "
            f"{result.overhead.gates_before} -> {result.overhead.gates_after} gates "
            f"(+{result.overhead.gate_overhead_percent:.0f}%), "
            f"{result.swap_count} SWAPs"
        )
        print(
            f"  estimated fidelity {result.fidelity.fidelity_before:.3f} -> "
            f"{result.fidelity.fidelity_after:.3f}, "
            f"latency {result.latency_ns:.0f} ns, "
            f"semantics verified: {verified}"
        )
        print(f"  initial layout: {result.initial_layout}")
        print(f"  final layout:   {result.final_layout}")


if __name__ == "__main__":
    main()
