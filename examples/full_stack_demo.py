"""A walk down the full stack of the paper's Fig. 1.

Takes one quantum application (a 4-qubit Grover-style search), pushes it
through every functional element — profiling, compilation, scheduling
under control-electronics constraints, QISA code generation, execution on
the (simulated) quantum device — and prints each layer's artefact.

Run:  python examples/full_stack_demo.py
"""

from repro import ControlModel, FullStack, MapperAdvisor, profile_circuit, surface17_device
from repro.workloads import grover


def main() -> None:
    # Layer 1: the quantum application.
    circuit = grover(3, marked=[1, 0, 1])
    print("=== application layer ===")
    print(
        f"{circuit.name}: {circuit.num_qubits} qubits, "
        f"{circuit.num_gates} gates, depth {circuit.depth()}"
    )

    # Information flowing *down*: the application profile.
    profile = profile_circuit(circuit)
    print(
        f"profile: interaction graph {profile.metrics.num_edges:.0f} edges, "
        f"max degree {profile.metrics.max_degree:.0f}, "
        f"avg shortest path {profile.metrics.avg_shortest_path:.2f}"
    )

    # Layers 2-5: compiler -> QISA -> control -> device.
    device = surface17_device()
    stack = FullStack(
        device,
        advisor=MapperAdvisor(),  # algorithm-driven mapper selection
        control=ControlModel(max_parallel_2q=2, max_parallel_measure=3),
        cycle_ns=20.0,
    )
    report = stack.execute(circuit, shots=500, seed=1)

    print("\n=== compiler layer ===")
    mapping = report.mapping
    print(
        f"mapper: {mapping.mapper_name} | "
        f"{mapping.overhead.gates_before} -> {mapping.overhead.gates_after} gates "
        f"({mapping.swap_count} SWAPs, +{mapping.overhead.gate_overhead_percent:.0f}%)"
    )
    print(f"initial layout: {mapping.initial_layout}")
    print(f"final layout:   {mapping.final_layout}")

    print("\n=== scheduling / control layer ===")
    print(
        f"latency {report.schedule.latency_ns:.0f} ns in "
        f"{report.schedule.num_time_slots} time slots, "
        f"avg parallelism {report.schedule.parallelism():.2f}"
    )

    print("\n=== QISA layer (first 12 bundles) ===")
    for bundle in report.program.bundles[:12]:
        print("  " + bundle.to_text().replace("\n", "\n  "))
    print(
        f"  ... {report.program.num_instructions} instructions, "
        f"{report.program.duration_cycles} cycles total"
    )

    print("\n=== device layer (simulated execution) ===")
    print(f"estimated fidelity (gates + decoherence): {report.estimated_fidelity:.3f}")
    counts = report.counts or {}
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:4]
    print("top measurement outcomes (data qubits are the first 3 bits):")
    for bits, count in top:
        print(f"  {bits}: {count}")
    best = top[0][0][:3] if top else ""
    print(f"search target 101 recovered: {best == '101'}")


if __name__ == "__main__":
    main()
