"""Hardware-aware vs algorithm-driven vs trivial mapping, head to head.

Maps a mix of real algorithms and synthetic circuits onto the paper's
100-qubit extended Surface-17 device with the three mapping pipelines and
the profile-driven advisor, reporting SWAP count, gate overhead, depth
and estimated fidelity per (circuit, mapper) pair — the co-design
argument of the paper in one table.

Run:  python examples/mapper_comparison.py
"""

from repro import (
    MapperAdvisor,
    noise_aware_mapper,
    sabre_mapper,
    surface17_extended_device,
    trivial_mapper,
)
from repro.workloads import (
    cuccaro_adder,
    ghz_state,
    qaoa_maxcut,
    qft,
    random_circuit,
    random_maxcut_instance,
)


def build_workloads():
    return [
        ghz_state(16),
        qft(12, do_swaps=False),
        cuccaro_adder(6),
        qaoa_maxcut(
            14,
            random_maxcut_instance(14, 21, seed=3),
            num_layers=2,
            entangler="cx",
            seed=3,
        ),
        random_circuit(16, 300, 0.3, seed=3),
        random_circuit(16, 300, 0.7, seed=3),
    ]


def main() -> None:
    device = surface17_extended_device(100)
    mappers = [trivial_mapper(), sabre_mapper(), noise_aware_mapper()]
    advisor = MapperAdvisor()

    header = (
        f"{'circuit':22s} {'mapper':12s} {'swaps':>6s} {'ovh %':>7s} "
        f"{'depth':>6s} {'fidelity':>9s}"
    )
    print(f"device: {device.name}, {device.num_qubits} qubits\n")
    print(header)
    print("-" * len(header))

    for circuit in build_workloads():
        decision = advisor.decide(circuit)
        for mapper in mappers:
            result = mapper.map(circuit, device)
            print(
                f"{circuit.name[:22]:22s} {result.mapper_name:12s} "
                f"{result.swap_count:6d} "
                f"{result.overhead.gate_overhead_percent:7.1f} "
                f"{result.overhead.depth_after:6d} "
                f"{result.fidelity.fidelity_after:9.4f}"
            )
        print(
            f"{'':22s} advisor picks {decision.mapper_name!r} "
            f"(difficulty {decision.difficulty:.2f})"
        )
        print()


if __name__ == "__main__":
    main()
