"""Validating the paper's fidelity model against simulation ground truth.

Fig. 3 computes circuit fidelity as a product of gate fidelities — a
closed-form proxy.  This example stacks the library's three noise layers
on the same circuits and shows how well the proxy holds up:

1. **product model** (`repro.metrics.product_fidelity`) — the paper's
   formula, instant,
2. **Monte-Carlo trajectories** (`repro.sim.estimate_success_rate`) —
   stochastic Pauli errors through the state-vector simulator,
3. **density matrix** (`repro.sim.channel_fidelity`) — exact evolution
   through depolarizing Kraus channels.

Run:  python examples/noise_model_validation.py
"""

from repro.hardware import SURFACE17_CALIBRATION
from repro.metrics import product_fidelity
from repro.sim import channel_fidelity, estimate_success_rate
from repro.workloads import ghz_state, qft, random_circuit, vqe_ansatz


def main() -> None:
    # Amplify the Versluis rates 3x so differences are visible at
    # these small circuit sizes.
    calibration = SURFACE17_CALIBRATION.scaled(3.0)
    print(
        "noise model: depolarizing, 1q error "
        f"{calibration.single_qubit_error:.3f}, 2q error "
        f"{calibration.two_qubit_error:.3f}\n"
    )

    circuits = [
        ghz_state(5),
        qft(5, do_swaps=False),
        vqe_ansatz(5, num_layers=3, seed=0),
        random_circuit(5, 40, 0.4, seed=1),
        random_circuit(6, 90, 0.5, seed=2),
    ]

    print(
        f"{'circuit':18s} {'product model':>13s} {'monte-carlo':>18s} "
        f"{'density matrix':>14s}"
    )
    for circuit in circuits:
        unitary_part = circuit.without_directives()
        model = product_fidelity(unitary_part, calibration)
        monte_carlo = estimate_success_rate(
            unitary_part, calibration, trajectories=300, seed=7
        )
        exact = channel_fidelity(unitary_part, calibration)
        print(
            f"{circuit.name:18s} {model:13.4f} "
            f"{monte_carlo.mean:9.4f} ± {monte_carlo.std_error:5.4f} "
            f"{exact:14.4f}"
        )

    print(
        "\nreading: the product model is a slightly conservative lower "
        "bound of the\nexact channel fidelity (independent Pauli errors can "
        "cancel), and the\nMonte-Carlo estimate converges to the exact value "
        "— so the paper's proxy\norders circuits correctly, which is all "
        "Fig. 3 needs."
    )


if __name__ == "__main__":
    main()
