"""Hardware co-design: pick a chip topology for a target application.

"Algorithm-driven devices could be an effective solution in dealing with
limited NISQ computing resources" (Sec. III).  Given two very different
target applications — a 1D Ising simulation and a dense QAOA instance —
this example sweeps candidate 12-qubit topologies, maps each application
onto each candidate, and shows how the *right* chip depends on the
application's interaction graph (including its temporal structure).

Run:  python examples/codesign_exploration.py
"""

from repro.core import (
    best_topology_for,
    explore_topologies,
    profile_circuit,
    temporal_profile,
)
from repro.workloads import ising_chain, qaoa_maxcut, random_maxcut_instance

NUM_QUBITS = 12


def describe(circuit) -> None:
    profile = profile_circuit(circuit)
    temporal = temporal_profile(circuit)
    print(
        f"\n=== {circuit.name} ===\n"
        f"interaction graph: {profile.metrics.num_edges:.0f} edges, "
        f"density {profile.metrics.density:.2f}, "
        f"max degree {profile.metrics.max_degree:.0f}\n"
        f"temporal: locality {temporal.locality:.2f}, "
        f"persistence {temporal.persistence:.2f}, "
        f"burstiness {temporal.burstiness:.2f}"
    )


def sweep(circuit) -> None:
    describe(circuit)
    reports = explore_topologies(circuit, NUM_QUBITS)
    print(
        f"{'topology':10s} {'edges':>6s} {'swaps':>6s} {'ovh %':>7s} "
        f"{'fidelity':>9s}"
    )
    for report in reports:
        print(
            f"{report.name:10s} {report.num_edges:6d} {report.total_swaps:6d} "
            f"{report.mean_overhead_percent:7.1f} {report.mean_fidelity:9.4f}"
        )
    winner = best_topology_for(circuit, NUM_QUBITS)
    print(
        f"-> best buildable topology: {winner.name} "
        f"({winner.total_swaps} swaps with only {winner.num_edges} couplers)"
    )


def main() -> None:
    print(f"designing a {NUM_QUBITS}-qubit accelerator per application")

    # A 1D, temporally-regular workload: should live on a cheap chain.
    sweep(ising_chain(NUM_QUBITS, steps=3))

    # A dense, irregular workload: needs a richer lattice.
    edges = random_maxcut_instance(NUM_QUBITS, 30, seed=5)
    sweep(
        qaoa_maxcut(NUM_QUBITS, edges, num_layers=2, entangler="cx", seed=5)
    )


if __name__ == "__main__":
    main()
