"""Algorithm profiling and clustering — the paper's Sec. IV workflow.

Samples a benchmark suite (random / reversible / real circuits), profiles
every circuit with the Table I interaction-graph metrics, runs the
Pearson-correlation reduction to find a low-redundancy metric set, and
clusters the suite in the reduced feature space.  This is exactly the
"algorithms can be clustered based on their similarities" pipeline the
paper proposes as the basis for algorithm-driven mapping.

Run:  python examples/characterize_benchmarks.py
"""

from collections import Counter

from repro import PAPER_RETAINED_METRICS, cluster_profiles, profile_suite, reduce_metrics
from repro.workloads import evaluation_suite


def main() -> None:
    suite = evaluation_suite(num_circuits=45, seed=11, max_qubits=20, max_gates=400)
    profiles = profile_suite(suite)
    print(f"profiled {len(profiles)} benchmark circuits")
    print(f"families: {dict(Counter(p.family for p in profiles))}")

    # --- Pearson reduction (Table I) -----------------------------------
    reduction = reduce_metrics([p.metrics for p in profiles], threshold=0.85)
    print(f"\nPearson reduction at |r| >= {reduction.threshold}:")
    print(f"  retained ({len(reduction.retained)}): {', '.join(reduction.retained)}")
    recovered = [m for m in PAPER_RETAINED_METRICS if m in reduction.retained]
    print(f"  paper's retained set recovered: {', '.join(recovered)}")
    print("  example redundancies folded away:")
    for name, (kept_by, r) in sorted(reduction.dropped.items())[:5]:
        print(f"    {name:24s} |r|={r:.2f} with {kept_by}")

    # --- Clustering in the reduced feature space ------------------------
    result = cluster_profiles(profiles, k=3, seed=0)
    print(
        f"\nk-means clustering on {result.feature_names} "
        f"(silhouette {result.silhouette:.2f}):"
    )
    for cluster in sorted(set(result.labels)):
        members = result.members(cluster)
        families = Counter(p.family for p in members)
        sizes = [p.size.num_qubits for p in members]
        print(
            f"  cluster {cluster}: {len(members):2d} circuits, "
            f"families {dict(families)}, "
            f"qubits {min(sizes)}-{max(sizes)}"
        )
        for profile in members[:3]:
            print(
                f"      {profile.name[:32]:32s} "
                f"path={profile.metrics.avg_shortest_path:.2f} "
                f"maxdeg={profile.metrics.max_degree:.0f} "
                f"adj_std={profile.metrics.adjacency_std:.2f}"
            )


if __name__ == "__main__":
    main()
