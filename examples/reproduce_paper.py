"""Reproduce every figure and table of the paper in one run.

Regenerates Fig. 3(a/b/c), Fig. 4, Fig. 5 and Table I — by default on a
reduced 60-circuit suite (~30 s); pass ``--full`` for the paper's
200-circuit configuration (~2 min).

Run:  python examples/reproduce_paper.py [--full]
"""

import argparse
import sys
import time

from repro.experiments import (
    fig3_data,
    fig5_data,
    fig5_decile_contrast,
    format_fig3,
    format_fig4,
    format_fig5,
    format_table1,
    paper_configuration,
    run_fig4,
    run_suite,
    run_table1,
)
from repro.workloads import evaluation_suite


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full 200-circuit configuration",
    )
    args = parser.parse_args(argv)

    if args.full:
        suite = evaluation_suite(num_circuits=200, seed=2022, max_gates=20000)
    else:
        suite = evaluation_suite(num_circuits=60, seed=2022, max_qubits=30, max_gates=2000)

    print(
        f"mapping {len(suite)} benchmarks onto the "
        f"{paper_configuration().name} with the trivial mapper ..."
    )
    started = time.perf_counter()
    records = run_suite(
        suite,
        progress=lambda i, n, name: (
            print(f"  {i}/{n} {name}", file=sys.stderr) if i % 25 == 0 else None
        ),
    )
    print(f"done in {time.perf_counter() - started:.1f}s\n")

    banner = "=" * 72
    print(banner)
    print(format_fig3(fig3_data(records)))
    print(banner)
    print(format_fig4(run_fig4()))
    print(banner)
    data5 = fig5_data(records)
    print(format_fig5(data5))
    print("\nTop-overhead decile vs rest (the paper's Fig. 5 reading):")
    for metric, (top, rest, ok) in fig5_decile_contrast(data5).items():
        print(f"  {metric:20s} top={top:8.2f} rest={rest:8.2f} as-expected={ok}")
    print(banner)
    print(format_table1(run_table1(records)))


if __name__ == "__main__":
    main()
