"""Shared fixtures for the test-suite."""

import pytest

from repro.circuit import Circuit
from repro.hardware import (
    all_to_all_device,
    grid_device,
    line_device,
    surface17_device,
    surface7_device,
)


@pytest.fixture(scope="session")
def dev7():
    return surface7_device()


@pytest.fixture(scope="session")
def dev17():
    return surface17_device()


@pytest.fixture(scope="session")
def dev_line5():
    return line_device(5)


@pytest.fixture(scope="session")
def dev_grid9():
    return grid_device(3, 3)


@pytest.fixture(scope="session")
def dev_full6():
    return all_to_all_device(6)


@pytest.fixture()
def bell_circuit():
    return Circuit(2).h(0).cx(0, 1)


@pytest.fixture()
def ghz3_circuit():
    return Circuit(3).h(0).cx(0, 1).cx(1, 2)
