"""Unit tests for gate decomposition (repro.compiler.decompose).

Every rewrite rule is checked against the dense simulator: lowering any
standard gate into any of the three gate sets must preserve the unitary
up to global phase.
"""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, Gate
from repro.circuit.gates import STANDARD_GATES
from repro.compiler import DecompositionError, decompose_circuit, decompose_gate, zyz_angles
from repro.hardware import (
    CNOT_GATESET,
    GateSet,
    IBM_BASIS_GATESET,
    SURFACE17_GATESET,
    UNRESTRICTED_GATESET,
)
from repro.sim import circuits_equivalent


def _unitary_gate_cases():
    rng = np.random.default_rng(99)
    for name, definition in sorted(STANDARD_GATES.items()):
        if definition.matrix_fn is None or definition.num_qubits is None:
            continue
        params = tuple(rng.uniform(0.1, 2 * math.pi, size=definition.num_params))
        yield Gate(name, tuple(range(definition.num_qubits)), params)


GATESETS = [SURFACE17_GATESET, IBM_BASIS_GATESET, CNOT_GATESET]


class TestRuleCorrectness:
    @pytest.mark.parametrize(
        "gate", list(_unitary_gate_cases()), ids=lambda g: g.name
    )
    @pytest.mark.parametrize("gate_set", GATESETS, ids=lambda s: s.name)
    def test_every_gate_in_every_gateset(self, gate, gate_set):
        circuit = Circuit(gate.num_qubits, [gate])
        lowered = decompose_circuit(circuit, gate_set)
        assert all(gate_set.supports(g) for g in lowered)
        assert circuits_equivalent(circuit, lowered)

    def test_supported_gate_untouched(self):
        gate = Gate("cz", (0, 1))
        assert decompose_gate(gate, SURFACE17_GATESET) == [gate]

    def test_directives_pass_through(self):
        circuit = Circuit(2).barrier().measure_all()
        lowered = decompose_circuit(circuit, SURFACE17_GATESET)
        assert [g.name for g in lowered] == ["barrier", "measure", "measure"]

    def test_swap_into_cz_set(self):
        lowered = decompose_gate(Gate("swap", (0, 1)), SURFACE17_GATESET)
        names = {g.name for g in lowered}
        assert names <= set(SURFACE17_GATESET.gate_names)
        assert "cz" in names

    def test_toffoli_cnot_count(self):
        lowered = decompose_gate(Gate("ccx", (0, 1, 2)), CNOT_GATESET)
        assert sum(1 for g in lowered if g.name == "cx") == 6

    def test_whole_circuit(self):
        circuit = (
            Circuit(3)
            .h(0)
            .ccx(0, 1, 2)
            .swap(0, 2)
            .cp(0.7, 1, 2)
            .u3(0.1, 0.2, 0.3, 0)
        )
        for gate_set in GATESETS:
            lowered = decompose_circuit(circuit, gate_set)
            assert circuits_equivalent(circuit, lowered)


class TestZyz:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_random_unitaries(self, seed):
        rng = np.random.default_rng(seed)
        theta, phi, lam = rng.uniform(-2 * math.pi, 2 * math.pi, size=3)
        gate = Gate("u3", (0,), (theta, phi, lam))
        t, p, l = zyz_angles(gate.matrix())
        reconstruction = Circuit(1).rz(l, 0).ry(t, 0).rz(p, 0)
        assert circuits_equivalent(Circuit(1, [gate]), reconstruction)

    def test_identity(self):
        theta, phi, lam = zyz_angles(np.eye(2))
        assert theta == pytest.approx(0.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            zyz_angles(np.eye(4))

    def test_diagonal_unitary(self):
        gate = Gate("rz", (0,), (1.3,))
        t, p, l = zyz_angles(gate.matrix())
        assert t == pytest.approx(0.0)
        assert (p + l) % (2 * math.pi) == pytest.approx(1.3)


class TestErrors:
    def test_no_two_qubit_primitive(self):
        broken = GateSet.of("broken", ["rz", "rx", "h"])
        with pytest.raises(DecompositionError, match="neither"):
            decompose_gate(Gate("cx", (0, 1)), broken)

    def test_no_rotation_basis(self):
        broken = GateSet.of("broken", ["x", "cx"])
        with pytest.raises(DecompositionError, match="lacks rz"):
            decompose_gate(Gate("h", (0,)), broken)

    def test_rz_only_insufficient(self):
        broken = GateSet.of("broken", ["rz", "cx"])
        with pytest.raises(DecompositionError, match="lacks ry/rx/sx"):
            decompose_gate(Gate("h", (0,)), broken)


class TestOutputQuality:
    def test_zero_angle_rotations_skipped(self):
        # rz(0) synthesised into any basis should vanish or stay tiny.
        lowered = decompose_gate(Gate("p", (0,), (0.0,)), IBM_BASIS_GATESET)
        assert lowered == []

    def test_diagonal_gate_becomes_single_rz(self):
        lowered = decompose_gate(Gate("p", (0,), (0.8,)), IBM_BASIS_GATESET)
        assert len(lowered) == 1
        assert lowered[0].name == "rz"

    def test_unrestricted_is_identity(self):
        circuit = Circuit(3).ccx(0, 1, 2).iswap(0, 1)
        assert decompose_circuit(circuit, UNRESTRICTED_GATESET) == circuit
