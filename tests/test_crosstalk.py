"""Unit tests for the crosstalk model (scheduling constraint + fidelity)."""

import pytest

from repro.circuit import Circuit
from repro.compiler import asap_schedule
from repro.hardware import (
    IDEAL_CALIBRATION,
    SURFACE17_CALIBRATION,
    line_device,
    Calibration,
)
from repro.metrics import crosstalk_fidelity, crosstalk_overlaps, product_fidelity


@pytest.fixture()
def line4():
    return line_device(4)


def parallel_adjacent_circuit():
    # cz(0,1) and cz(2,3) share no qubit but their edges are adjacent
    # through the (1,2) coupling, so they crosstalk on a line.
    return Circuit(4).cz(0, 1).cz(2, 3)


class TestCrosstalkCounting:
    def test_adjacent_concurrent_pair_counted(self, line4):
        schedule = asap_schedule(parallel_adjacent_circuit())
        assert crosstalk_overlaps(schedule, line4.coupling) == 1

    def test_far_pairs_not_counted(self):
        device = line_device(6)
        # edges (0,1) and (4,5): separated by two idle qubits.
        schedule = asap_schedule(Circuit(6).cz(0, 1).cz(4, 5))
        assert crosstalk_overlaps(schedule, device.coupling) == 0

    def test_sequential_gates_not_counted(self, line4):
        # same qubits force sequential execution: no overlap.
        schedule = asap_schedule(Circuit(4).cz(0, 1).cz(1, 2))
        assert crosstalk_overlaps(schedule, line4.coupling) == 0

    def test_one_qubit_gates_ignored(self, line4):
        schedule = asap_schedule(Circuit(4).h(0).h(1).cz(2, 3))
        assert crosstalk_overlaps(schedule, line4.coupling) == 0


class TestCrosstalkFreeScheduling:
    def test_conflicting_gates_serialised(self, line4):
        circuit = parallel_adjacent_circuit()
        free = asap_schedule(circuit)
        mitigated = asap_schedule(
            circuit, coupling=line4.coupling, crosstalk_free=True
        )
        assert crosstalk_overlaps(free, line4.coupling) == 1
        assert crosstalk_overlaps(mitigated, line4.coupling) == 0
        assert mitigated.latency_ns > free.latency_ns

    def test_non_conflicting_gates_untouched(self):
        device = line_device(6)
        circuit = Circuit(6).cz(0, 1).cz(4, 5)
        free = asap_schedule(circuit)
        mitigated = asap_schedule(
            circuit, coupling=device.coupling, crosstalk_free=True
        )
        assert mitigated.latency_ns == free.latency_ns

    def test_requires_coupling(self):
        with pytest.raises(ValueError, match="coupling"):
            asap_schedule(parallel_adjacent_circuit(), crosstalk_free=True)

    def test_combined_with_control_limit(self, line4):
        circuit = parallel_adjacent_circuit()
        schedule = asap_schedule(
            circuit,
            max_parallel_2q=1,
            coupling=line4.coupling,
            crosstalk_free=True,
        )
        assert crosstalk_overlaps(schedule, line4.coupling) == 0


class TestCrosstalkFidelity:
    def test_penalty_applied(self, line4):
        circuit = parallel_adjacent_circuit()
        schedule = asap_schedule(circuit)
        base = product_fidelity(circuit)
        with_crosstalk = crosstalk_fidelity(schedule, line4.coupling)
        expected = base * (1 - SURFACE17_CALIBRATION.crosstalk_error)
        assert with_crosstalk == pytest.approx(expected)

    def test_mitigated_schedule_has_no_penalty(self, line4):
        circuit = parallel_adjacent_circuit()
        mitigated = asap_schedule(
            circuit, coupling=line4.coupling, crosstalk_free=True
        )
        assert crosstalk_fidelity(mitigated, line4.coupling) == pytest.approx(
            product_fidelity(circuit)
        )

    def test_trade_off_direction(self, line4):
        """Mitigation must increase fidelity and latency simultaneously."""
        circuit = parallel_adjacent_circuit()
        free = asap_schedule(circuit)
        mitigated = asap_schedule(
            circuit, coupling=line4.coupling, crosstalk_free=True
        )
        assert crosstalk_fidelity(mitigated, line4.coupling) > crosstalk_fidelity(
            free, line4.coupling
        )
        assert mitigated.latency_ns > free.latency_ns

    def test_calibration_field_validated(self):
        with pytest.raises(ValueError):
            Calibration(crosstalk_error=1.2)

    def test_ideal_has_no_crosstalk(self, line4):
        schedule = asap_schedule(parallel_adjacent_circuit())
        assert crosstalk_fidelity(
            schedule, line4.coupling, IDEAL_CALIBRATION
        ) == pytest.approx(1.0)
