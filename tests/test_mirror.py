"""Unit tests for mirror-circuit benchmarking."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.compiler import sabre_mapper
from repro.hardware import SURFACE17_CALIBRATION, surface7_device
from repro.sim import NoisySimulator, sample_counts
from repro.workloads import (
    ghz_state,
    mirror_circuit,
    mirror_expected_bits,
    mirror_success_probability,
    qft,
    random_circuit,
)


class TestMirrorConstruction:
    def test_structure(self):
        base = random_circuit(4, 20, 0.4, seed=0)
        mirrored = mirror_circuit(base, seed=1)
        # base + frame + inverse + measurements
        assert mirrored.count_ops()["measure"] == 4
        assert mirrored.num_gates >= 2 * base.num_gates

    def test_rejects_measured_base(self):
        with pytest.raises(ValueError, match="measurement-free"):
            mirror_circuit(Circuit(2).h(0).measure(0))

    @pytest.mark.parametrize("seed", range(5))
    def test_ideal_output_is_basis_state(self, seed):
        base = random_circuit(4, 30, 0.4, seed=seed)
        mirrored = mirror_circuit(base, seed=seed)
        bits = mirror_expected_bits(mirrored)
        assert len(bits) == 4
        assert set(bits) <= {"0", "1"}

    def test_noiseless_run_hits_expected(self):
        base = qft(4, do_swaps=False)
        mirrored = mirror_circuit(base, seed=3)
        bits = mirror_expected_bits(mirrored)
        counts = sample_counts(mirrored.without_directives(), shots=64, seed=0)
        assert counts == {bits: 64}

    def test_identity_frame_possible(self):
        # seed that draws all-identity frame -> output |00>.
        base = ghz_state(2)
        found_zero = False
        for seed in range(20):
            mirrored = mirror_circuit(base, seed=seed)
            if mirrored.num_gates == 2 * base.num_gates:  # empty frame
                assert mirror_expected_bits(mirrored) == "00"
                found_zero = True
                break
        assert found_zero

    def test_middle_frame_on_clifford_base(self):
        from repro.workloads import random_clifford_circuit

        base = random_clifford_circuit(4, 30, seed=5)
        mirrored = mirror_circuit(base, seed=5, frame="middle")
        bits = mirror_expected_bits(mirrored)
        assert len(bits) == 4

    def test_frame_validated(self):
        with pytest.raises(ValueError, match="frame"):
            mirror_circuit(ghz_state(2), frame="sideways")

    def test_non_mirror_circuit_rejected(self):
        with pytest.raises(ValueError, match="not a valid mirror"):
            mirror_expected_bits(Circuit(1).h(0))


class TestMirrorScoring:
    def test_success_probability(self):
        assert mirror_success_probability({"01": 75, "11": 25}, "01") == 0.75
        assert mirror_success_probability({"11": 10}, "00") == 0.0

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            mirror_success_probability({}, "0")

    def test_noise_lowers_success(self):
        """The benchmark in action: noisy trajectories miss the target."""
        base = random_circuit(4, 30, 0.4, seed=7)
        mirrored = mirror_circuit(base, seed=7)
        bits = mirror_expected_bits(mirrored)
        target_index = int(bits, 2)
        calibration = SURFACE17_CALIBRATION.scaled(5)
        simulator = NoisySimulator(calibration, seed=11)
        hits = 0
        trials = 60
        unitary_part = mirrored.without_directives()
        for _ in range(trials):
            state = simulator.run(unitary_part).reshape(-1)
            hits += abs(state[target_index]) ** 2 > 0.5
        success = hits / trials
        assert 0.0 <= success < 1.0

    def test_mapped_mirror_still_verifies(self, dev7):
        """Mirrors survive compilation: map then check the basis output
        through the mapping's final layout."""
        base = ghz_state(4)
        mirrored = mirror_circuit(base, seed=2)
        result = sabre_mapper().map(mirrored.without_directives(), dev7)
        assert result.verify()
