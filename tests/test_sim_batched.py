"""Batched oracle equivalence: batched simulation vs the serial path."""

import pickle

import numpy as np
import pytest

from repro.circuit import Circuit, Gate
from repro.circuit.gates import gate_matrix
from repro.compiler.mapper import sabre_mapper, trivial_mapper
from repro.hardware.device import grid_device, line_device
from repro.sim import (
    Simulator,
    Workspace,
    allclose_up_to_global_phase,
    apply_gate_batched,
    circuit_unitary,
    fused_operations,
    random_product_state,
    random_product_states,
    run_batched,
    sample_counts,
    statevector,
    verify_mapping,
    zero_state,
)
from repro.sim.equivalence import _embed_states, _embed_virtual_state
from repro.workloads.random_circuits import random_circuit


def _ghz(n):
    circuit = Circuit(n)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


class TestRandomProductStates:
    def test_matches_sequential_draws(self):
        """A seeded batch draws exactly like sequential single-state calls."""
        batch = random_product_states(4, 5, np.random.default_rng(42))
        rng = np.random.default_rng(42)
        for index in range(5):
            expected = random_product_state(4, rng)
            assert np.array_equal(batch[index], expected)

    def test_shape_and_normalisation(self):
        batch = random_product_states(3, 7, np.random.default_rng(0))
        assert batch.shape == (7, 2, 2, 2)
        norms = np.sum(np.abs(batch) ** 2, axis=(1, 2, 3))
        assert np.allclose(norms, 1.0)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one"):
            random_product_states(3, 0)


class TestApplyGateBatched:
    def test_matches_per_state_application(self):
        states = random_product_states(3, 4, np.random.default_rng(1))
        gate = Gate("cx", (2, 0))
        batched = apply_gate_batched(states, gate)
        simulator = Simulator(seed=0)
        circuit = Circuit(3)
        circuit.cx(2, 0)
        for index in range(4):
            expected = simulator.run(circuit, initial_state=states[index]).state
            assert np.allclose(batched[index], expected)


class TestFusedOperations:
    def test_merges_adjacent_single_qubit_runs(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.t(0)
        circuit.x(1)
        circuit.cx(0, 1)
        circuit.s(1)
        circuit.z(1)
        operations = circuit.num_operations
        fused = fused_operations(circuit)
        assert len(fused) < operations
        # h;t on qubit 0 fuse into T @ H (later gate multiplies from left).
        matrix, qubits = fused[0]
        assert qubits == (0,)
        expected = gate_matrix(Gate("t", (0,))) @ gate_matrix(Gate("h", (0,)))
        assert np.allclose(matrix, expected)

    def test_preserves_circuit_unitary(self):
        circuit = random_circuit(4, 40, 0.4, seed=9)
        state = random_product_state(4, np.random.default_rng(3))
        fused_out = run_batched(circuit, state[np.newaxis], fuse=True)[0]
        plain_out = run_batched(circuit, state[np.newaxis], fuse=False)[0]
        assert np.allclose(fused_out, plain_out)

    def test_trailing_single_qubit_gates_are_flushed(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.h(1)
        fused = fused_operations(circuit)
        touched = sorted(qubits for _, qubits in fused[1:])
        assert touched == [(0,), (1,)]

    def test_rejects_directives(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.barrier()
        with pytest.raises(ValueError, match="directive"):
            fused_operations(circuit)


class TestRunBatched:
    def test_matches_serial_simulation(self):
        circuit = random_circuit(5, 60, 0.35, seed=11)
        states = random_product_states(5, 6, np.random.default_rng(5))
        batched = run_batched(circuit, states)
        simulator = Simulator(seed=0)
        for index in range(6):
            expected = simulator.run(circuit, initial_state=states[index]).state
            assert np.allclose(batched[index], expected, atol=1e-12)

    def test_accepts_flat_state_batch(self):
        circuit = _ghz(3)
        flat = zero_state(3).reshape(1, -1)
        out = run_batched(circuit, flat)
        assert np.allclose(out[0], statevector(circuit))

    def test_skips_barriers(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        out = run_batched(circuit, zero_state(2)[np.newaxis])
        assert np.allclose(out[0], statevector(circuit.without_directives()))

    def test_rejects_measurement(self):
        circuit = Circuit(1)
        circuit.h(0)
        circuit.measure(0)
        with pytest.raises(ValueError, match="measurement-free"):
            run_batched(circuit, zero_state(1)[np.newaxis])

    def test_rejects_wrong_dimension(self):
        circuit = _ghz(2)
        with pytest.raises(ValueError, match="wrong dimension"):
            run_batched(circuit, np.zeros((2, 3), dtype=complex))

    def test_rejects_empty_batch(self):
        circuit = _ghz(2)
        with pytest.raises(ValueError, match="non-empty batch"):
            run_batched(circuit, np.zeros((0, 4), dtype=complex))


class TestWorkspace:
    """Preallocated-buffer simulation is bit-for-bit, not just close."""

    def _bitwise_equal(self, a, b):
        return (
            np.ascontiguousarray(a).tobytes()
            == np.ascontiguousarray(b).tobytes()
        )

    @pytest.mark.parametrize("fuse", [True, False])
    def test_run_batched_bitwise_identical(self, fuse):
        circuit = random_circuit(5, 60, 0.4, seed=21)
        states = random_product_states(5, 6, np.random.default_rng(4))
        legacy = run_batched(circuit, states, fuse=fuse)
        pooled = run_batched(
            circuit, states, fuse=fuse, workspace=Workspace()
        )
        assert self._bitwise_equal(legacy, pooled)

    def test_apply_gate_batched_bitwise_identical(self):
        states = random_product_states(4, 5, np.random.default_rng(6))
        workspace = Workspace()
        for gate in (Gate("h", (2,)), Gate("cx", (3, 0)), Gate("t", (1,))):
            legacy = apply_gate_batched(states, gate)
            pooled = apply_gate_batched(states, gate, workspace=workspace)
            assert self._bitwise_equal(legacy, pooled)

    def test_result_is_never_a_workspace_view(self):
        states = random_product_states(3, 2, np.random.default_rng(9))
        workspace = Workspace()
        first = apply_gate_batched(states, Gate("h", (0,)), workspace=workspace)
        snapshot = first.copy()
        # Reusing the workspace must not retroactively corrupt results.
        apply_gate_batched(states, Gate("x", (1,)), workspace=workspace)
        assert self._bitwise_equal(first, snapshot)

    def test_buffers_grow_across_widths_and_stay_correct(self):
        workspace = Workspace()
        capacities = []
        for qubits, batch in ((3, 2), (6, 4), (4, 3)):
            circuit = random_circuit(qubits, 30, 0.4, seed=qubits)
            states = random_product_states(
                qubits, batch, np.random.default_rng(qubits)
            )
            legacy = run_batched(circuit, states)
            pooled = run_batched(circuit, states, workspace=workspace)
            assert self._bitwise_equal(legacy, pooled)
            capacities.append(workspace.capacity)
        # Grow-only: the shrink back to 4 qubits reuses the 6-qubit buffers.
        assert capacities == sorted(capacities)
        assert capacities[-1] == capacities[-2]

    def test_workspace_refuses_pickle(self):
        with pytest.raises(TypeError, match="cannot be\\s+pickled"):
            pickle.dumps(Workspace())


def _embed_reference(virtual_state, num_physical, layout):
    """The original per-filler ``tensordot`` embedding, kept as the test
    oracle for the single-allocation implementation."""
    num_virtual = virtual_state.ndim
    zero = np.array([1.0, 0.0], dtype=complex)
    state = virtual_state
    for _ in range(num_physical - num_virtual):
        state = np.tensordot(state, zero, axes=0)
    assigned = set(layout[v] for v in range(num_virtual))
    free = [p for p in range(num_physical) if p not in assigned]
    destination = [layout[v] for v in range(num_virtual)] + free
    return np.moveaxis(state, range(num_physical), destination)


class TestEmbedding:
    @pytest.mark.parametrize(
        "layout", [{0: 0, 1: 1, 2: 2}, {0: 4, 1: 0, 2: 2}, {0: 3, 1: 1, 2: 4}]
    )
    def test_matches_reference_embedding(self, layout):
        state = random_product_state(3, np.random.default_rng(8))
        fast = _embed_virtual_state(state, 5, layout)
        assert np.array_equal(fast, _embed_reference(state, 5, layout))

    def test_batched_embedding_stacks_single_embeddings(self):
        states = random_product_states(2, 4, np.random.default_rng(2))
        layout = {0: 2, 1: 0}
        embedded = _embed_states(states, 4, layout, 2)
        assert embedded.shape == (4, 2, 2, 2, 2)
        for index in range(4):
            assert np.array_equal(
                embedded[index], _embed_reference(states[index], 4, layout)
            )


class TestVerifyMappingBatched:
    @pytest.mark.parametrize("make_mapper", [trivial_mapper, sabre_mapper])
    def test_batched_agrees_with_serial_on_mapped_circuits(self, make_mapper):
        device = grid_device(3, 3)
        for seed in (0, 1, 2):
            circuit = random_circuit(5, 30, 0.4, seed=seed)
            result = make_mapper().map(circuit, device)
            assert result.verify(trials=4, seed=99, batched=True)
            assert result.verify(trials=4, seed=99, batched=False)

    def test_wrong_mapping_rejected_on_both_paths(self):
        """A corrupted mapped circuit must fail identically on each path."""
        device = line_device(4)
        circuit = random_circuit(3, 20, 0.4, seed=7)
        result = trivial_mapper().map(circuit, device)
        broken = result.mapped.copy()
        broken.x(0)  # corrupt: extra gate the original never applies
        for batched in (True, False):
            assert not verify_mapping(
                result.original,
                broken,
                result.initial_layout,
                result.final_layout,
                trials=4,
                seed=99,
                batched=batched,
            )

    def test_same_seed_same_inputs_across_paths(self):
        """Seeded batched/serial runs verify the identical trial states."""
        circuit = _ghz(3)
        mapped = _ghz(3)
        layout = {0: 0, 1: 1, 2: 2}
        for batched in (True, False):
            assert verify_mapping(
                circuit, mapped, layout, layout, trials=5, seed=17,
                batched=batched,
            )

    def test_permuted_readout_verified(self):
        """The final layout, not the identity, defines correctness."""
        original = Circuit(2)
        original.h(0)
        original.cx(0, 1)
        mapped = Circuit(2)
        mapped.h(1)
        mapped.cx(1, 0)
        swapped = {0: 1, 1: 0}
        for batched in (True, False):
            assert verify_mapping(
                original, mapped, swapped, swapped, batched=batched
            )
            assert not verify_mapping(
                original, mapped, {0: 0, 1: 1}, {0: 0, 1: 1}, batched=batched
            )


class TestSampleCounts:
    @pytest.mark.parametrize("shots", [0, -3])
    def test_rejects_non_positive_shots(self, shots):
        with pytest.raises(ValueError, match="positive"):
            sample_counts(_ghz(2), shots)

    def test_histogram_sums_to_shots(self):
        counts = sample_counts(_ghz(3), shots=500, seed=3)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"000", "111"}

    def test_seed_reproducible(self):
        assert sample_counts(_ghz(2), 100, seed=5) == sample_counts(
            _ghz(2), 100, seed=5
        )


class TestGlobalPhase:
    def test_batched_path_ignores_global_phase(self):
        original = Circuit(1)
        original.x(0)
        phased = Circuit(1)
        phased.x(0)
        phased.z(0)
        phased.x(0)
        phased.z(0)
        phased.x(0)  # Z X Z X = -I, so this equals -X
        layout = {0: 0}
        assert allclose_up_to_global_phase(
            circuit_unitary(phased), -circuit_unitary(original)
        )
        for batched in (True, False):
            assert verify_mapping(
                original, phased, layout, layout, batched=batched
            )
