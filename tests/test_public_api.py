"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.circuit",
        "repro.sim",
        "repro.hardware",
        "repro.workloads",
        "repro.compiler",
        "repro.core",
        "repro.metrics",
        "repro.fullstack",
        "repro.experiments",
        "repro.runtime",
    ],
)
def test_subpackage_all_exports(module):
    mod = importlib.import_module(module)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_quickstart_from_docstring():
    """The quickstart in the package docstring must actually run."""
    from repro import Circuit, surface17_device, trivial_mapper

    circuit = Circuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    result = trivial_mapper().map(circuit, surface17_device())
    assert result.overhead.gate_overhead_percent >= 0.0
    assert 0.0 < result.fidelity.fidelity_after <= 1.0


def test_paper_pipeline_one_liner():
    """Suite -> map -> profile: the core loop exposed at top level."""
    from repro import profile_suite, small_suite

    profiles = profile_suite(small_suite(3))
    assert len(profiles) == 3
