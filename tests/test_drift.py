"""Streaming calibration drift: deltas, epochs, incremental invalidation.

Pins the drift subsystem's contracts: a :class:`CalibrationStream`
bumps a monotonic epoch per applied delta and reports exactly which
sites moved; a seeded :class:`DriftPlan` replays identically anywhere;
the incremental distance-table refresh is **bit-for-bit** equivalent to
a wholesale rebuild while recomputing strictly fewer rows on partial
drift; and :meth:`Calibration.cache_key` is a sound version fingerprint
(permutation-invariant, single-value sensitive, pickle-stable).
"""

import pickle
from dataclasses import replace

import pytest

from repro.compiler.routing import (
    NoiseAwareRouter,
    _DISTANCE_CACHE,
    clear_distance_cache,
    refresh_distance_caches,
)
from repro.compiler.scheduling import alap_schedule, asap_schedule
from repro.hardware import resolve_device
from repro.hardware.calibration import SURFACE17_CALIBRATION, Calibration
from repro.hardware.drift import (
    CalibrationDelta,
    CalibrationStream,
    DriftPlan,
    diff_calibrations,
)
from repro.service.cache import calibration_version
from repro.workloads import random_circuit

TOPOLOGIES = ("line:16", "grid:4x5", "surface17")


def _an_edge(device, index=0):
    return sorted(tuple(sorted(e)) for e in device.coupling.edges)[index]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_distance_cache()
    yield
    clear_distance_cache()


class TestCalibrationDelta:
    def test_canonical_regardless_of_construction_order(self):
        a = CalibrationDelta.of(
            edge_errors={(0, 1): 0.02, (2, 3): 0.03}, qubit_errors={5: 0.004}
        )
        b = CalibrationDelta.of(
            edge_errors={frozenset((3, 2)): 0.03, (1, 0): 0.02},
            qubit_errors={5: 0.004},
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_out_of_range_errors(self):
        with pytest.raises(ValueError, match="must be in"):
            CalibrationDelta.of(edge_errors={(0, 1): 1.5})
        with pytest.raises(ValueError, match="must be in"):
            CalibrationDelta.of(qubit_errors={0: -0.1})

    def test_empty_and_accessors(self):
        assert CalibrationDelta.of().empty
        delta = CalibrationDelta.of(edge_errors={(1, 0): 0.02})
        assert not delta.empty
        assert delta.edge_errors() == {frozenset((0, 1)): 0.02}


class TestCalibrationStream:
    def test_epoch_is_monotonic_and_diffs_report_changes(self):
        stream = CalibrationStream(SURFACE17_CALIBRATION)
        assert stream.epoch == 0
        diff = stream.apply(CalibrationDelta.of(edge_errors={(0, 2): 0.05}))
        assert diff.epoch == 1 and stream.epoch == 1
        assert diff.edge_changes == (
            ((0, 2), SURFACE17_CALIBRATION.two_qubit_error, 0.05),
        )
        # Re-applying the same value bumps the epoch but changes nothing.
        diff2 = stream.apply(CalibrationDelta.of(edge_errors={(0, 2): 0.05}))
        assert diff2.epoch == 2 and diff2.empty
        assert stream.calibration.edge_errors[frozenset((0, 2))] == 0.05

    def test_subscribers_see_every_update(self):
        stream = CalibrationStream(SURFACE17_CALIBRATION)
        seen = []
        stream.subscribe(lambda diff, old, new: seen.append(diff.epoch))
        stream.apply(CalibrationDelta.of(qubit_errors={3: 0.002}))
        stream.apply(CalibrationDelta.of(edge_errors={(0, 2): 0.02}))
        assert seen == [1, 2]

    def test_qubit_changes_reported_with_old_and_new(self):
        stream = CalibrationStream(SURFACE17_CALIBRATION)
        diff = stream.apply(CalibrationDelta.of(qubit_errors={3: 0.002}))
        assert diff.qubit_changes == (
            (3, SURFACE17_CALIBRATION.single_qubit_error, 0.002),
        )
        assert diff.magnitude() == pytest.approx(0.001)


class TestDiffCalibrations:
    def test_default_rate_change_flags_defaults(self):
        new = replace(SURFACE17_CALIBRATION, two_qubit_error=0.02)
        diff = diff_calibrations(SURFACE17_CALIBRATION, new)
        assert diff.defaults_changed and not diff.empty

    def test_identical_calibrations_diff_empty(self):
        assert diff_calibrations(
            SURFACE17_CALIBRATION, SURFACE17_CALIBRATION
        ).empty


class TestDriftPlan:
    def test_same_seed_same_plan(self):
        device = resolve_device("surface17")
        a = DriftPlan.generate(device, num_updates=30, seed=5)
        b = DriftPlan.generate(device, num_updates=30, seed=5)
        assert a == b and len(a) == 30
        assert a != DriftPlan.generate(device, num_updates=30, seed=6)

    def test_replay_walks_two_streams_identically(self):
        device = resolve_device("grid:4x5")
        plan = DriftPlan.generate(device, num_updates=12, seed=9)
        one = CalibrationStream(device.calibration)
        two = CalibrationStream(device.calibration)
        diffs_one = plan.replay(one)
        diffs_two = plan.replay(two)
        assert diffs_one == diffs_two
        assert one.calibration == two.calibration
        assert one.epoch == two.epoch == 12

    def test_rates_stay_in_bounds(self):
        device = resolve_device("line:16")
        plan = DriftPlan.generate(
            device, num_updates=50, seed=3, magnitude=0.9
        )
        stream = CalibrationStream(device.calibration)
        plan.replay(stream)
        for value in stream.calibration.edge_errors.values():
            assert 0.0 < value <= 0.3  # keeps 3e < 1 for the noise metric


class TestIncrementalRefreshEquivalence:
    @pytest.mark.parametrize("spec", TOPOLOGIES)
    def test_bitwise_identical_across_seeded_traces(self, spec):
        device = resolve_device(spec)
        router = NoiseAwareRouter()
        for seed in (1, 2, 3):
            plan = DriftPlan.generate(device, num_updates=8, seed=seed)
            stream = CalibrationStream(device.calibration)
            matrix = router._build_distance_matrix(device)
            current = device
            for delta in plan.updates:
                diff = stream.apply(delta)
                drifted = replace(current, calibration=stream.calibration)
                matrix, _, _ = router.refresh_distance_matrix(
                    current, drifted, matrix, diff.changed_edges
                )
                full = router._build_distance_matrix(drifted)
                assert matrix.tobytes() == full.tobytes()
                current = drifted

    def test_partial_drift_recomputes_strictly_fewer_rows(self):
        # On a perfectly uniform calibration every row ties through every
        # edge, so the conservative flagging marks all of them.  Start
        # from a baseline where the edge is already slightly worse than
        # its neighbours: only the rows whose shortest paths genuinely
        # cross it remain flagged when it drifts further.
        base = resolve_device("grid:4x5")
        edge = _an_edge(base)
        device = replace(
            base,
            calibration=base.calibration.with_edge_error(*edge, 0.012),
        )
        router = NoiseAwareRouter()
        matrix = router._build_distance_matrix(device)
        # An *increase* keeps the best edge cost (the scale) unchanged,
        # so the refresh can stay incremental.
        drifted = replace(
            device,
            calibration=device.calibration.with_edge_error(*edge, 0.013),
        )
        refreshed, rows, wholesale = router.refresh_distance_matrix(
            device, drifted, matrix, [edge]
        )
        assert not wholesale
        assert 0 < rows < device.num_qubits
        assert refreshed.tobytes() == (
            router._build_distance_matrix(drifted).tobytes()
        )

    def test_scale_change_falls_back_to_wholesale(self):
        device = resolve_device("grid:4x5")
        router = NoiseAwareRouter()
        matrix = router._build_distance_matrix(device)
        edge = _an_edge(device)
        # Decreasing below every other edge moves the min cost — every
        # entry of the normalised table shifts, incremental is unsound.
        drifted = replace(
            device,
            calibration=device.calibration.with_edge_error(*edge, 0.001),
        )
        refreshed, rows, wholesale = router.refresh_distance_matrix(
            device, drifted, matrix, [edge]
        )
        assert wholesale and rows == device.num_qubits
        assert refreshed.tobytes() == (
            router._build_distance_matrix(drifted).tobytes()
        )

    def test_qubit_only_drift_recomputes_nothing(self):
        device = resolve_device("grid:4x5")
        router = NoiseAwareRouter()
        matrix = router._build_distance_matrix(device)
        drifted = replace(
            device,
            calibration=device.calibration.with_qubit_error(0, 0.005),
        )
        refreshed, rows, wholesale = router.refresh_distance_matrix(
            device, drifted, matrix, []
        )
        assert rows == 0 and not wholesale
        assert refreshed.tobytes() == matrix.tobytes()

    def test_non_coupling_edge_override_recomputes_nothing(self):
        device = resolve_device("surface17")
        router = NoiseAwareRouter()
        matrix = router._build_distance_matrix(device)
        assert (0, 1) not in {
            tuple(sorted(e)) for e in device.coupling.edges
        }
        drifted = replace(
            device,
            calibration=device.calibration.with_edge_error(0, 1, 0.05),
        )
        _, rows, wholesale = router.refresh_distance_matrix(
            device, drifted, matrix, [(0, 1)]
        )
        assert rows == 0 and not wholesale


class TestRefreshDistanceCaches:
    def test_migrates_cached_table_and_keeps_old_entry(self):
        base = resolve_device("grid:4x5")
        edge = _an_edge(base)
        # Slightly-worse baseline edge: a further increase flags only
        # the rows that actually route through it (see the partial-drift
        # test above for why a uniform baseline flags everything).
        device = replace(
            base,
            calibration=base.calibration.with_edge_error(*edge, 0.012),
        )
        router = NoiseAwareRouter()
        router._distance_matrix(device)  # populate the module cache
        old_key = router._distance_cache_key(device)
        stream = CalibrationStream(device.calibration)
        diff = stream.apply(
            CalibrationDelta.of(edge_errors={edge: 0.013})
        )
        drifted = replace(device, calibration=stream.calibration)
        refresh = refresh_distance_caches(device, drifted, diff)
        assert refresh.tables_refreshed == 1
        assert 0 < refresh.rows_recomputed < refresh.total_rows
        assert refresh.wholesale_rebuilds == 0
        new_key = router._distance_cache_key(drifted)
        # Epoch-pinned in-flight jobs still find the old table; the new
        # key serves post-drift admissions.
        assert old_key in _DISTANCE_CACHE and new_key in _DISTANCE_CACHE
        assert not _DISTANCE_CACHE[new_key].flags.writeable

    def test_no_cached_table_is_a_noop(self):
        device = resolve_device("grid:4x5")
        edge = _an_edge(device)
        drifted = replace(
            device,
            calibration=device.calibration.with_edge_error(*edge, 0.05),
        )
        refresh = refresh_distance_caches(device, drifted)
        assert refresh.tables_refreshed == 0
        assert refresh.rows_recomputed == 0

    def test_missing_diff_forces_wholesale(self):
        device = resolve_device("grid:4x5")
        router = NoiseAwareRouter()
        router._distance_matrix(device)
        edge = _an_edge(device)
        drifted = replace(
            device,
            calibration=device.calibration.with_edge_error(*edge, 0.05),
        )
        refresh = refresh_distance_caches(device, drifted, diff=None)
        assert refresh.wholesale_rebuilds == 1
        assert refresh.rows_recomputed == refresh.total_rows


class TestCalibrationCacheKeyProperties:
    """Regression guard for the calibration-aware key (PR 6)."""

    def test_edge_ordering_permutation_invariance(self):
        edges = {
            frozenset((0, 2)): 0.02,
            frozenset((1, 4)): 0.03,
            frozenset((2, 5)): 0.04,
        }
        forward = replace(SURFACE17_CALIBRATION, edge_errors=dict(edges))
        backward = replace(
            SURFACE17_CALIBRATION,
            edge_errors=dict(reversed(list(edges.items()))),
        )
        assert forward.cache_key() == backward.cache_key()
        assert calibration_version(forward) == calibration_version(backward)

    def test_sensitivity_to_any_single_value_change(self):
        base = replace(
            SURFACE17_CALIBRATION,
            qubit_errors={1: 0.002},
            edge_errors={frozenset((0, 2)): 0.02},
        )
        reference = base.cache_key()
        perturbed = [
            replace(base, single_qubit_error=0.0011),
            replace(base, two_qubit_error=0.011),
            replace(base, measurement_error=0.011),
            replace(base, single_qubit_duration_ns=21.0),
            replace(base, two_qubit_duration_ns=41.0),
            replace(base, measurement_duration_ns=301.0),
            replace(base, t1_us=31.0),
            replace(base, t2_us=21.0),
            replace(base, crosstalk_error=0.0051),
            base.with_qubit_error(1, 0.0021),
            base.with_qubit_error(2, 0.002),
            base.with_edge_error(0, 2, 0.021),
            base.with_edge_error(1, 4, 0.02),
        ]
        keys = {c.cache_key() for c in perturbed}
        assert len(keys) == len(perturbed)
        assert reference not in keys
        versions = {calibration_version(c) for c in perturbed}
        assert len(versions) == len(perturbed)
        assert calibration_version(base) not in versions

    def test_pickle_roundtrip_stability(self):
        base = replace(
            SURFACE17_CALIBRATION,
            qubit_errors={3: 0.002, 1: 0.003},
            edge_errors={frozenset((0, 2)): 0.02, frozenset((1, 4)): 0.03},
        )
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(base, protocol=protocol))
            assert clone.cache_key() == base.cache_key()
            assert calibration_version(clone) == calibration_version(base)

    def test_with_updates_merges_and_changes_key(self):
        base = SURFACE17_CALIBRATION.with_edge_error(0, 2, 0.02)
        updated = base.with_updates(
            edge_errors={frozenset((1, 4)): 0.03},
            qubit_errors={5: 0.002},
        )
        assert updated.edge_errors[frozenset((0, 2))] == 0.02  # kept
        assert updated.edge_errors[frozenset((1, 4))] == 0.03
        assert updated.qubit_errors[5] == 0.002
        assert updated.cache_key() != base.cache_key()
        assert base.with_updates() == base


class TestScheduleEpochPinning:
    def test_schedules_pin_the_stream_epoch(self):
        circuit = random_circuit(4, 30, 0.5, seed=2)
        stream = CalibrationStream(SURFACE17_CALIBRATION)
        stream.apply(
            CalibrationDelta.of(edge_errors={(0, 2): 0.02})
        )
        asap = asap_schedule(circuit, stream=stream)
        alap = alap_schedule(circuit, stream=stream)
        assert asap.calibration_epoch == 1
        assert alap.calibration_epoch == 1
        # Without a stream there is no epoch to pin.
        assert asap_schedule(circuit).calibration_epoch is None

    def test_pinned_durations_ignore_later_drift(self):
        circuit = random_circuit(4, 30, 0.5, seed=2)
        stream = CalibrationStream(SURFACE17_CALIBRATION)
        before = asap_schedule(circuit, stream=stream)
        # Drift after scheduling: the built schedule is immutable.
        stream.apply(CalibrationDelta.of(qubit_errors={0: 0.01}))
        after = asap_schedule(circuit, stream=stream)
        assert before.calibration_epoch == 0
        assert after.calibration_epoch == 1
        # Error-rate drift leaves durations (and hence latency) alone.
        assert before.latency_ns == after.latency_ns
