"""Unit tests for the random-circuit generators."""

import pytest

from repro.circuit import size_parameters
from repro.workloads import (
    random_circuit,
    random_clifford_circuit,
    supremacy_style_circuit,
)


class TestRandomCircuit:
    def test_exact_gate_count(self):
        circuit = random_circuit(5, 120, 0.3, seed=0)
        assert circuit.num_gates == 120

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_exact_two_qubit_fraction(self, fraction):
        circuit = random_circuit(6, 200, fraction, seed=1)
        assert circuit.num_two_qubit_gates == round(200 * fraction)

    def test_deterministic_with_seed(self):
        a = random_circuit(4, 50, 0.4, seed=42)
        b = random_circuit(4, 50, 0.4, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_circuit(4, 50, 0.4, seed=1)
        b = random_circuit(4, 50, 0.4, seed=2)
        assert a != b

    def test_gate_pools_respected(self):
        circuit = random_circuit(
            4, 60, 0.5, seed=0, one_qubit_gates=("h",), two_qubit_gates=("cz",)
        )
        assert set(circuit.count_ops()) <= {"h", "cz"}

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(4, 10, 1.5)

    def test_two_qubit_on_single_qubit_register_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(1, 10, 0.5)

    def test_single_qubit_register_all_1q(self):
        circuit = random_circuit(1, 10, 0.0, seed=3)
        assert circuit.num_gates == 10

    def test_parametric_angles_in_range(self):
        circuit = random_circuit(
            3, 40, 0.0, seed=5, one_qubit_gates=("rx", "ry", "rz")
        )
        for gate in circuit:
            assert 0.0 <= gate.params[0] < 6.3


class TestCliffordCircuit:
    def test_only_clifford_gates(self):
        circuit = random_clifford_circuit(5, 80, seed=0)
        assert set(circuit.count_ops()) <= {"h", "s", "sdg", "x", "y", "z", "cx", "cz"}

    def test_size(self):
        assert random_clifford_circuit(5, 80, seed=0).num_gates == 80


class TestSupremacyCircuit:
    def test_structure(self):
        circuit = supremacy_style_circuit(3, 3, depth=4, seed=0)
        assert circuit.num_qubits == 9
        # One H per qubit + depth * (one 1q per qubit + some cz).
        assert circuit.count_ops()["h"] >= 9

    def test_interactions_form_grid(self):
        from repro.core import InteractionGraph

        circuit = supremacy_style_circuit(3, 3, depth=8, seed=1)
        graph = InteractionGraph.from_circuit(circuit)
        # Grid interactions only: no edge between qubits that are not
        # grid-adjacent (|r1-r2| + |c1-c2| == 1).
        for a, b, _ in graph.edges():
            ra, ca = divmod(a, 3)
            rb, cb = divmod(b, 3)
            assert abs(ra - rb) + abs(ca - cb) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            supremacy_style_circuit(0, 3, 2)

    def test_deterministic(self):
        assert supremacy_style_circuit(2, 3, 3, seed=9) == supremacy_style_circuit(
            2, 3, 3, seed=9
        )
