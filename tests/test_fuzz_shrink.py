"""The delta-debugging minimizer."""

from dataclasses import replace

from repro.circuit import Circuit
from repro.fuzz import (
    FuzzSeed,
    generate_sample,
    shrink_circuit,
    shrink_sample,
)


def _wide_circuit():
    circuit = Circuit(6, name="haystack")
    for q in range(6):
        circuit.h(q)
    circuit.cx(0, 5)  # the needle
    for q in range(5):
        circuit.cx(q, q + 1)
    circuit.rz(1.25, 3)
    return circuit


class TestShrinkCircuit:
    def test_drops_irrelevant_gates(self):
        def still_fails(circuit):
            return any(
                g.name == "cx" and set(g.qubits) == {0, 1}
                for g in circuit.gates
            )

        needle = Circuit(4).h(0).cx(2, 3).cx(0, 1).h(3).cx(0, 1)
        shrunk = shrink_circuit(needle, still_fails)
        assert still_fails(shrunk)
        assert len(shrunk) == 1

    def test_merges_qubits(self):
        # Failure only needs *some* 2q gate; the minimizer should both
        # cut gates and collapse the register.
        def still_fails(circuit):
            return any(g.is_two_qubit for g in circuit.gates)

        shrunk = shrink_circuit(_wide_circuit(), still_fails)
        assert still_fails(shrunk)
        assert len(shrunk) == 1
        assert shrunk.num_qubits == 2

    def test_keeps_unshrinkable_failure(self):
        circuit = Circuit(2).cx(0, 1)

        def still_fails(candidate):
            return len(candidate) == 1 and candidate.gates[0].name == "cx"

        shrunk = shrink_circuit(circuit, still_fails)
        assert shrunk.gates == circuit.gates

    def test_predicate_exception_counts_as_pass(self):
        # A predicate that explodes on the empty circuit must not trap
        # the shrinker: it treats the probe as "does not fail".
        def touchy(circuit):
            if len(circuit) == 0:
                raise RuntimeError("cannot judge an empty circuit")
            return True

        shrunk = shrink_circuit(Circuit(2).h(0).h(1), touchy)
        assert len(shrunk) >= 1

    def test_deterministic(self):
        def still_fails(circuit):
            return sum(g.is_two_qubit for g in circuit.gates) >= 2

        a = shrink_circuit(_wide_circuit(), still_fails)
        b = shrink_circuit(_wide_circuit(), still_fails)
        assert a == b


class TestShrinkSample:
    def test_shrinks_circuit_and_device(self):
        sample = generate_sample(FuzzSeed(2022, 0))  # random/ring
        wide = replace(sample, circuit=_wide_circuit())

        def still_fails(candidate):
            return any(g.is_two_qubit for g in candidate.circuit.gates)

        result = shrink_sample(wide, still_fails)
        assert result.reduced
        assert len(result.sample.circuit) == 1
        assert result.sample.circuit.num_qubits == 2
        # Ring devices bottom out at 3 qubits.
        assert result.sample.device.num_qubits == 3
        assert result.probes > 0

    def test_records_before_after(self):
        sample = generate_sample(FuzzSeed(2022, 0))
        wide = replace(sample, circuit=_wide_circuit())
        result = shrink_sample(wide, lambda s: len(s.circuit.gates) >= 1)
        assert result.gates_before == len(_wide_circuit())
        assert result.gates_after == len(result.sample.circuit)
        assert result.gates_after <= result.gates_before
