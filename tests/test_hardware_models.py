"""Unit tests for calibrations, gate sets and devices."""

import pytest

from repro.circuit import Gate
from repro.hardware import (
    CNOT_GATESET,
    Calibration,
    GateSet,
    IBM_BASIS_GATESET,
    IBM_FALCON_CALIBRATION,
    IDEAL_CALIBRATION,
    SURFACE17_CALIBRATION,
    SURFACE17_GATESET,
    UNRESTRICTED_GATESET,
    all_to_all_device,
    grid_device,
    line_device,
    surface17_device,
    surface17_extended_device,
    surface7_device,
)


class TestCalibration:
    def test_paper_error_rates(self):
        # Versluis et al.: 99.9% single-qubit, 99% CZ fidelity.
        assert SURFACE17_CALIBRATION.single_qubit_error == pytest.approx(0.001)
        assert SURFACE17_CALIBRATION.two_qubit_error == pytest.approx(0.01)

    def test_gate_error_by_arity(self):
        cal = SURFACE17_CALIBRATION
        assert cal.gate_error(Gate("h", (0,))) == 0.001
        assert cal.gate_error(Gate("cz", (0, 1))) == 0.01
        assert cal.gate_error(Gate("measure", (0,))) == 0.01
        assert cal.gate_error(Gate("barrier", (0,))) == 0.0

    def test_three_qubit_gate_costs_like_decomposition(self):
        error = SURFACE17_CALIBRATION.gate_error(Gate("ccx", (0, 1, 2)))
        assert error == pytest.approx(6 * 0.01)

    def test_fidelity_complements_error(self):
        gate = Gate("cz", (0, 1))
        cal = SURFACE17_CALIBRATION
        assert cal.gate_fidelity(gate) == pytest.approx(1 - cal.gate_error(gate))

    def test_durations(self):
        cal = SURFACE17_CALIBRATION
        assert cal.gate_duration_ns(Gate("x", (0,))) == 20.0
        assert cal.gate_duration_ns(Gate("cz", (0, 1))) == 40.0
        assert cal.gate_duration_ns(Gate("measure", (0,))) == 300.0
        assert cal.gate_duration_ns(Gate("barrier", (0,))) == 0.0

    def test_per_qubit_override(self):
        cal = SURFACE17_CALIBRATION.with_qubit_error(3, 0.05)
        assert cal.gate_error(Gate("x", (3,))) == 0.05
        assert cal.gate_error(Gate("x", (2,))) == 0.001

    def test_per_edge_override_is_symmetric(self):
        cal = SURFACE17_CALIBRATION.with_edge_error(0, 1, 0.2)
        assert cal.gate_error(Gate("cz", (0, 1))) == 0.2
        assert cal.gate_error(Gate("cz", (1, 0))) == 0.2

    def test_scaled(self):
        cal = SURFACE17_CALIBRATION.scaled(2.0)
        assert cal.two_qubit_error == pytest.approx(0.02)
        assert cal.single_qubit_error == pytest.approx(0.002)

    def test_scaled_clips(self):
        cal = SURFACE17_CALIBRATION.scaled(1e6)
        assert cal.two_qubit_error < 1.0

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            Calibration(single_qubit_error=1.5)
        with pytest.raises(ValueError):
            Calibration(two_qubit_error=-0.1)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            Calibration(t1_us=0.0)

    def test_ideal_is_noise_free(self):
        assert IDEAL_CALIBRATION.gate_error(Gate("cz", (0, 1))) == 0.0

    def test_falcon_differs(self):
        assert IBM_FALCON_CALIBRATION.two_qubit_duration_ns > 100


class TestGateSet:
    def test_surface17_primitives(self):
        assert SURFACE17_GATESET.supports(Gate("cz", (0, 1)))
        assert not SURFACE17_GATESET.supports(Gate("cx", (0, 1)))
        assert SURFACE17_GATESET.two_qubit_primitives == frozenset({"cz"})

    def test_directives_always_supported(self):
        for gate_set in (SURFACE17_GATESET, IBM_BASIS_GATESET, CNOT_GATESET):
            assert gate_set.supports(Gate("measure", (0,)))
            assert gate_set.supports(Gate("barrier", (0, 1)))
            assert gate_set.supports(Gate("reset", (0,)))

    def test_contains_protocol(self):
        assert "cz" in SURFACE17_GATESET
        assert "cx" not in SURFACE17_GATESET

    def test_unknown_gate_name_rejected(self):
        with pytest.raises(ValueError, match="unknown gate kinds"):
            GateSet.of("bad", ["nonsense"])

    def test_unrestricted_accepts_everything(self):
        assert UNRESTRICTED_GATESET.supports(Gate("ccx", (0, 1, 2)))
        assert UNRESTRICTED_GATESET.supports(Gate("iswap", (0, 1)))


class TestDevice:
    def test_surface17_device(self):
        device = surface17_device()
        assert device.num_qubits == 17
        assert device.gate_set is SURFACE17_GATESET
        assert device.calibration is SURFACE17_CALIBRATION
        assert device.name == "surface-17"

    def test_extended_device_default_100(self):
        device = surface17_extended_device()
        assert device.num_qubits == 100

    def test_fits(self):
        device = surface7_device()
        assert device.fits(7)
        assert not device.fits(8)

    def test_grid_device(self):
        device = grid_device(2, 3)
        assert device.num_qubits == 6
        assert device.gate_set is CNOT_GATESET

    def test_line_device(self):
        assert line_device(4).coupling.diameter() == 3

    def test_all_to_all_device_is_ideal(self):
        device = all_to_all_device(5)
        assert device.coupling.diameter() == 1
        assert device.calibration.two_qubit_error == 0.0
