"""Unit tests for the routing passes.

The two key invariants, checked for every router on every test circuit:
(1) every two-qubit gate in the output acts on coupled physical qubits;
(2) the output is semantically equivalent to the input given the
    initial/final layouts (state-vector oracle).
"""

import pytest

from repro.circuit import Circuit, Gate
from repro.compiler import (
    Layout,
    NoiseAwareRouter,
    RoutingError,
    SabreRouter,
    TrivialRouter,
)
from repro.hardware import (
    CouplingGraph,
    Device,
    line_device,
    all_to_all_device,
    surface7_device,
)
from repro.sim import verify_mapping
from repro.workloads import qft, random_circuit

ROUTERS = [TrivialRouter(), SabreRouter(seed=0), NoiseAwareRouter(seed=0)]


def _route_and_verify(router, circuit, device, layout=None):
    layout = layout or Layout.trivial(circuit.num_qubits, device.num_qubits)
    result = router.route(circuit, device, layout)
    for gate in result.circuit:
        if gate.is_two_qubit:
            assert device.coupling.are_adjacent(*gate.qubits), gate
    assert verify_mapping(
        circuit.without_directives(),
        result.circuit.without_directives(),
        result.initial_layout,
        result.final_layout,
    )
    return result


@pytest.mark.parametrize("router", ROUTERS, ids=lambda r: r.name)
class TestRouterInvariants:
    def test_line_chain(self, router):
        device = line_device(5)
        circuit = Circuit(5).cx(0, 4).cx(1, 3).h(2).cx(0, 1)
        result = _route_and_verify(router, circuit, device)
        assert result.swap_count > 0

    def test_surface7_random(self, router, dev7):
        circuit = random_circuit(7, 40, 0.4, seed=8)
        _route_and_verify(router, circuit, dev7)

    def test_qft(self, router, dev7):
        _route_and_verify(router, qft(6, do_swaps=False).without_directives(), dev7)

    def test_adjacent_gates_need_no_swaps(self, router):
        device = line_device(4)
        circuit = Circuit(4).cx(0, 1).cx(1, 2).cx(2, 3)
        result = _route_and_verify(router, circuit, device)
        assert result.swap_count == 0
        assert result.initial_layout == result.final_layout

    def test_all_to_all_never_swaps(self, router):
        device = all_to_all_device(6)
        circuit = random_circuit(6, 60, 0.6, seed=2)
        result = router.route(
            circuit, device, Layout.trivial(6, 6)
        )
        assert result.swap_count == 0

    def test_one_qubit_gates_remapped(self, router):
        device = line_device(3)
        layout = Layout(2, 3, {0: 2, 1: 0})
        circuit = Circuit(2).h(0).x(1)
        result = router.route(circuit, device, layout)
        names = {(g.name, g.qubits) for g in result.circuit}
        assert ("h", (2,)) in names
        assert ("x", (0,)) in names

    def test_measure_follows_layout(self, router):
        device = line_device(3)
        circuit = Circuit(3).cx(0, 2).measure(0).measure(2)
        result = router.route(circuit, device, Layout.trivial(3, 3))
        measured = [g.qubits[0] for g in result.circuit if g.name == "measure"]
        assert measured == [result.final_layout[0], result.final_layout[2]]

    def test_input_layout_not_mutated(self, router):
        device = line_device(4)
        layout = Layout.trivial(4, 4)
        router.route(Circuit(4).cx(0, 3), device, layout)
        assert layout == Layout.trivial(4, 4)

    def test_rejects_three_qubit_gates(self, router):
        device = line_device(3)
        with pytest.raises(RoutingError, match="arity"):
            router.route(Circuit(3).ccx(0, 1, 2), device, Layout.trivial(3, 3))

    def test_rejects_disconnected_device(self, router):
        broken = Device(CouplingGraph(4, [(0, 1), (2, 3)]))
        with pytest.raises(RoutingError, match="disconnected"):
            router.route(Circuit(2).cx(0, 1), broken, Layout.trivial(2, 4))

    def test_rejects_mismatched_layout(self, router):
        device = line_device(4)
        with pytest.raises(RoutingError, match="does not match"):
            router.route(Circuit(2).cx(0, 1), device, Layout.trivial(3, 4))


class TestTrivialRouterSpecifics:
    def test_deterministic(self):
        device = line_device(6)
        circuit = random_circuit(6, 30, 0.5, seed=1)
        a = TrivialRouter().route(circuit, device, Layout.trivial(6, 6))
        b = TrivialRouter().route(circuit, device, Layout.trivial(6, 6))
        assert a.circuit == b.circuit

    def test_swap_count_matches_distance(self):
        # Single far gate on a line: needs exactly distance-1 swaps.
        device = line_device(5)
        circuit = Circuit(5).cx(0, 4)
        result = TrivialRouter().route(circuit, device, Layout.trivial(5, 5))
        assert result.swap_count == 3

    def test_gate_operand_order_preserved(self):
        device = line_device(3)
        circuit = Circuit(3).cx(2, 0)  # control=2, target=0
        result = TrivialRouter().route(circuit, device, Layout.trivial(3, 3))
        final_gate = [g for g in result.circuit if g.name == "cx"][0]
        # control must still be the (moved) virtual qubit 2.
        assert result.final_layout[2] == final_gate.qubits[0]
        assert result.final_layout[0] == final_gate.qubits[1]


class TestSabreRouterSpecifics:
    def test_beats_trivial_on_average(self, dev7):
        trivial_total = 0
        sabre_total = 0
        for seed in range(6):
            circuit = random_circuit(7, 60, 0.5, seed=seed)
            layout = Layout.trivial(7, 7)
            trivial_total += TrivialRouter().route(circuit, dev7, layout).swap_count
            sabre_total += SabreRouter(seed=0).route(circuit, dev7, layout).swap_count
        assert sabre_total < trivial_total

    def test_seeded_determinism(self, dev7):
        circuit = random_circuit(7, 50, 0.5, seed=4)
        a = SabreRouter(seed=5).route(circuit, dev7, Layout.trivial(7, 7))
        b = SabreRouter(seed=5).route(circuit, dev7, Layout.trivial(7, 7))
        assert a.circuit == b.circuit

    def test_lookahead_zero_still_works(self, dev7):
        router = SabreRouter(lookahead_size=0, seed=0)
        circuit = random_circuit(7, 30, 0.5, seed=3)
        result = router.route(circuit, dev7, Layout.trivial(7, 7))
        assert verify_mapping(
            circuit.without_directives(),
            result.circuit.without_directives(),
            result.initial_layout,
            result.final_layout,
        )


class TestDistanceCacheCalibration:
    """Regression: a calibration update must never serve a stale table.

    The distance-cache key is *derived* from ``metric_name`` and
    ``uses_calibration``; before the fix the key and the matrix builder
    were two independent overrides, so a fidelity-aware subclass that
    overrode only ``_build_distance_matrix`` silently reused tables
    computed under old calibration data.  The service-layer result
    cache makes that bug user-visible, hence these gates.
    """

    def test_calibration_aware_metric_invalidates_on_update(self):
        from dataclasses import replace

        from repro.compiler.routing import clear_distance_cache

        class EdgeErrorRouter(SabreRouter):
            # Declaring the metric fidelity-aware is all a subclass
            # should need for correct invalidation.
            metric_name = "edge-error-metric"
            uses_calibration = True

            def _build_distance_matrix(self, device):
                dist = super()._build_distance_matrix(device)
                return dist * (1.0 + device.calibration.two_qubit_error)

        clear_distance_cache()
        device = line_device(4)
        router = EdgeErrorRouter(seed=0)
        before = router._distance_matrix(device)
        updated = replace(
            device,
            calibration=replace(device.calibration, two_qubit_error=0.25),
        )
        after = router._distance_matrix(updated)
        assert after[0, 3] == pytest.approx(3 * 1.25)
        assert (before != after).any(), "stale distance table served"

    def test_noise_aware_router_invalidates_on_calibration_update(self):
        from dataclasses import replace

        from repro.compiler.routing import clear_distance_cache

        clear_distance_cache()
        device = line_device(5)
        router = NoiseAwareRouter(seed=0)
        stale = router._distance_matrix(device)
        updated = replace(
            device,
            calibration=device.calibration.with_edge_error(1, 2, 0.3),
        )
        warm = router._distance_matrix(updated)
        assert (warm != stale).any()
        # The warm-cache answer must be byte-identical to a cold build.
        clear_distance_cache()
        cold = router._distance_matrix(updated)
        assert (warm == cold).all()

    def test_hop_metric_shared_across_calibrations(self):
        from dataclasses import replace

        device = line_device(4)
        router = SabreRouter(seed=0)
        key = router._distance_cache_key(device)
        updated = replace(
            device,
            calibration=device.calibration.with_edge_error(0, 1, 0.3),
        )
        # Hop counts ignore calibration, so the table may be shared.
        assert router._distance_cache_key(updated) == key


class TestNoiseAwareRouterSpecifics:
    def test_prefers_reliable_detour(self):
        # Ring of 4: two routes between opposite corners; poison one side.
        coupling = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        from repro.hardware import SURFACE17_CALIBRATION, CNOT_GATESET

        calibration = SURFACE17_CALIBRATION.with_edge_error(0, 1, 0.2)
        device = Device(coupling, calibration, CNOT_GATESET)
        circuit = Circuit(4).cx(0, 2)
        result = NoiseAwareRouter(seed=0).route(
            circuit, device, Layout.trivial(4, 4)
        )
        swaps = [g for g in result.circuit if g.name == "swap"]
        assert len(swaps) == 1
        # The swap should use the clean side (via qubit 3), not edge (0,1).
        assert set(swaps[0].qubits) != {0, 1}
