"""The fuzz loop, reproducer dumps and the planted-bug self-test."""

import json

import pytest

from repro.circuit import parse_qasm
from repro.compiler import SabreRouter
from repro.fuzz import (
    INVARIANT_NAMES,
    planted_bug_selftest,
    run_fuzz,
)
from repro.fuzz.runner import SELFTEST_SHRINK_LIMIT, _PlantedOffByOneRouter


class TestRunFuzz:
    def test_healthy_block_is_green(self, tmp_path):
        report = run_fuzz(
            seed=2022, samples=16, out_dir=tmp_path, check_parallel=False
        )
        assert report.ok
        assert report.failures == []
        assert list(report.stats) == list(INVARIANT_NAMES)
        assert all(
            s.checked == 16 for s in report.stats.values()
        )
        # No failures, no reproducer files.
        assert list(tmp_path.iterdir()) == []

    def test_parallel_check_included(self):
        report = run_fuzz(seed=2022, samples=8)
        assert report.parallel_message is None
        assert report.ok

    def test_format_mentions_every_invariant(self):
        report = run_fuzz(seed=2022, samples=4, check_parallel=False)
        text = report.format()
        for name in INVARIANT_NAMES:
            assert name in text

    def test_failures_are_dumped_and_replayable(self, tmp_path):
        def buggy(seed, incremental):
            cls = _PlantedOffByOneRouter if incremental else SabreRouter
            return cls(seed=seed, incremental=incremental)

        report = run_fuzz(
            seed=2022,
            samples=16,
            out_dir=tmp_path,
            router_factory=buggy,
            check_parallel=False,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.invariant == "sabre_twin"
        assert failure.shrunk is not None
        qasm_files = sorted(tmp_path.glob("*.qasm"))
        json_files = sorted(tmp_path.glob("*.json"))
        assert qasm_files and json_files
        # The QASM reproducer parses back to the shrunk circuit.
        reread = parse_qasm(qasm_files[0].read_text())
        assert len(reread) >= 1
        sidecar = json.loads(json_files[0].read_text())
        assert sidecar["invariant"] == "sabre_twin"
        assert sidecar["seed"] == 2022
        assert "shrunk" in sidecar
        assert sidecar["shrunk"]["gates_after"] <= sidecar["shrunk"]["gates_before"]

    def test_no_shrink_mode(self):
        def buggy(seed, incremental):
            cls = _PlantedOffByOneRouter if incremental else SabreRouter
            return cls(seed=seed, incremental=incremental)

        report = run_fuzz(
            seed=2022,
            samples=8,
            shrink=False,
            router_factory=buggy,
            check_parallel=False,
        )
        assert not report.ok
        assert all(f.shrunk is None for f in report.failures)


class TestPlantedBugSelfTest:
    def test_finds_and_shrinks(self):
        report = planted_bug_selftest()
        assert report.failures
        smallest = min(
            len(f.shrunk.sample.circuit)
            for f in report.failures
            if f.shrunk is not None
        )
        assert smallest <= SELFTEST_SHRINK_LIMIT

    def test_raises_when_nothing_found(self):
        # A block too small to trigger a tie: zero samples.
        with pytest.raises(RuntimeError, match="not .*detected"):
            planted_bug_selftest(samples=0)
