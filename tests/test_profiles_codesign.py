"""Unit tests for circuit profiles and the co-design advisor."""

import pytest

from repro.circuit import Circuit
from repro.core import (
    MapperAdvisor,
    profile_circuit,
    profile_suite,
    routing_difficulty,
    spearman_correlation,
)
from repro.hardware import surface7_device
from repro.workloads import (
    fig4_qaoa_circuit,
    fig4_random_circuit,
    ghz_state,
    qft,
    random_circuit,
    small_suite,
)


class TestProfiles:
    def test_profile_fields(self):
        profile = profile_circuit(ghz_state(4), family="real")
        assert profile.family == "real"
        assert profile.size.num_qubits == 4
        assert profile.metrics.num_edges == 3
        assert not profile.is_synthetic

    def test_synthetic_flag(self):
        assert profile_circuit(Circuit(2), family="random").is_synthetic
        assert profile_circuit(Circuit(2), family="reversible").is_synthetic

    def test_feature_vector_mixes_sources(self):
        profile = profile_circuit(ghz_state(3))
        vector = profile.feature_vector(["max_degree", "num_gates", "depth"])
        assert vector.tolist() == [2.0, 3.0, 3.0]

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            profile_circuit(Circuit(1)).feature_vector(["nonsense"])

    def test_as_dict_includes_both(self):
        record = profile_circuit(ghz_state(3)).as_dict()
        assert "max_degree" in record
        assert "num_gates" in record

    def test_profile_suite(self):
        profiles = profile_suite(small_suite(6))
        assert len(profiles) == 6
        assert all(p.family in ("random", "reversible", "real") for p in profiles)


class TestRoutingDifficulty:
    def test_bounds(self):
        for circuit in (ghz_state(5), qft(5), random_circuit(6, 60, 0.8, seed=0)):
            score = routing_difficulty(profile_circuit(circuit).metrics)
            assert 0.0 <= score <= 1.0

    def test_no_interactions_scores_zero(self):
        assert routing_difficulty(profile_circuit(Circuit(3).h(0)).metrics) == 0.0

    def test_dense_random_harder_than_qaoa(self):
        qaoa = routing_difficulty(profile_circuit(fig4_qaoa_circuit()).metrics)
        rand = routing_difficulty(profile_circuit(fig4_random_circuit()).metrics)
        assert rand > qaoa

    def test_chain_easier_than_dense(self):
        chain = routing_difficulty(profile_circuit(ghz_state(8)).metrics)
        dense = routing_difficulty(
            profile_circuit(random_circuit(8, 200, 0.8, seed=1)).metrics
        )
        assert chain < dense

    def test_difficulty_predicts_routing_pressure(self, dev17):
        """The headline co-design claim: the profile score ranks the SWAP
        pressure (swaps per two-qubit gate) across same-size circuits.

        Relative gate overhead confounds circuit *size* with routing
        difficulty (a tiny circuit pays a huge percentage for one SWAP
        chain), so the rank check normalises per two-qubit gate.
        """
        from repro.compiler import sabre_mapper
        from repro.workloads import qaoa_maxcut, random_maxcut_instance

        # A structure-exploiting mapper makes the ranking visible: the
        # trivial router pays ~1 SWAP chain per far gate regardless of
        # structure, whereas graph placement + lookahead only pays where
        # the interaction graph is genuinely hard to embed.
        mapper = sabre_mapper()
        qaoa = qaoa_maxcut(
            8,
            random_maxcut_instance(8, 10, seed=1),
            num_layers=6,
            entangler="cx",
            seed=1,
        )
        scores, pressure = [], []
        circuits = [ghz_state(8).repeated(12), qaoa] + [
            random_circuit(8, 100, f, seed=3) for f in (0.2, 0.5, 0.8)
        ]
        for circuit in circuits:
            scores.append(routing_difficulty(profile_circuit(circuit).metrics))
            result = mapper.map(circuit, dev17)
            pressure.append(result.swap_count / circuit.num_two_qubit_gates)
        assert spearman_correlation(scores, pressure) > 0.5


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        x = [1, 2, 3, 4, 5]
        y = [v ** 3 for v in x]
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_ties_averaged(self):
        value = spearman_correlation([1, 1, 2, 2], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    def test_constant_input_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            spearman_correlation([1], [1])
        with pytest.raises(ValueError):
            spearman_correlation([1, 2], [1, 2, 3])


class TestMapperAdvisor:
    def test_easy_circuit_gets_trivial(self):
        advisor = MapperAdvisor(threshold=0.5)
        decision = advisor.decide(ghz_state(8))
        assert decision.mapper_name == advisor.easy_mapper.name
        assert decision.difficulty < 0.5

    def test_hard_circuit_gets_sabre(self):
        advisor = MapperAdvisor(threshold=0.5)
        decision = advisor.decide(random_circuit(8, 200, 0.8, seed=0))
        assert decision.mapper_name == advisor.hard_mapper.name

    def test_map_runs_selected_pipeline(self, dev7):
        advisor = MapperAdvisor(threshold=0.5)
        result = advisor.map(ghz_state(5), dev7)
        assert result.mapper_name == advisor.easy_mapper.name
        assert result.verify()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            MapperAdvisor(threshold=1.5)

    def test_custom_mappers(self, dev7):
        from repro.compiler import sabre_mapper

        advisor = MapperAdvisor(
            threshold=0.0, hard_mapper=sabre_mapper()
        )  # everything is "hard"
        decision = advisor.decide(ghz_state(4))
        assert decision.mapper_name == "sabre"
