"""Unit tests for the density-matrix simulator and Kraus channels."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.hardware import Calibration, IDEAL_CALIBRATION, SURFACE17_CALIBRATION
from repro.metrics import product_fidelity
from repro.sim import (
    DensityMatrixSimulator,
    amplitude_damping_kraus,
    channel_fidelity,
    depolarizing_kraus,
    estimate_success_rate,
    phase_damping_kraus,
    state_fidelity,
    statevector,
)
from repro.workloads import ghz_state, random_circuit


def _completeness(kraus, dim):
    total = sum(k.conj().T @ k for k in kraus)
    return np.allclose(total, np.eye(dim), atol=1e-12)


class TestKrausChannels:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_depolarizing_1q_complete(self, p):
        assert _completeness(depolarizing_kraus(p, 1), 2)

    @pytest.mark.parametrize("p", [0.0, 0.2, 1.0])
    def test_depolarizing_2q_complete(self, p):
        kraus = depolarizing_kraus(p, 2)
        assert len(kraus) == 16
        assert _completeness(kraus, 4)

    @pytest.mark.parametrize("gamma", [0.0, 0.3, 1.0])
    def test_amplitude_damping_complete(self, gamma):
        assert _completeness(amplitude_damping_kraus(gamma), 2)

    @pytest.mark.parametrize("lam", [0.0, 0.4, 1.0])
    def test_phase_damping_complete(self, lam):
        assert _completeness(phase_damping_kraus(lam), 2)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.5)
        with pytest.raises(ValueError):
            amplitude_damping_kraus(-0.1)
        with pytest.raises(ValueError):
            depolarizing_kraus(0.1, num_qubits=3)

    def test_amplitude_damping_decay(self):
        rho_one = np.diag([0.0, 1.0]).astype(complex)
        out = DensityMatrixSimulator.apply_channel(
            rho_one, amplitude_damping_kraus(0.3), [0]
        )
        assert out[1, 1].real == pytest.approx(0.7)
        assert out[0, 0].real == pytest.approx(0.3)

    def test_phase_damping_kills_coherence(self):
        plus = np.full((2, 2), 0.5, dtype=complex)
        out = DensityMatrixSimulator.apply_channel(
            plus, phase_damping_kraus(1.0), [0]
        )
        assert out[0, 1] == pytest.approx(0.0)
        assert out[0, 0].real == pytest.approx(0.5)

    def test_full_depolarizing_gives_mixed_state(self):
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = DensityMatrixSimulator.apply_channel(
            rho, depolarizing_kraus(1.0, 1), [0]
        )
        # p=1 uniform Pauli: (X+Y+Z rho .../3) -> diag(1/3, 2/3).
        assert np.trace(out).real == pytest.approx(1.0)
        assert out[1, 1].real == pytest.approx(2.0 / 3.0)


class TestDensityMatrixSimulator:
    def test_noiseless_matches_pure_state(self):
        circuit = ghz_state(3)
        rho = DensityMatrixSimulator(IDEAL_CALIBRATION).run(circuit)
        psi = statevector(circuit).reshape(-1)
        assert np.allclose(rho, np.outer(psi, psi.conj()), atol=1e-10)

    def test_density_matrix_properties(self):
        calibration = SURFACE17_CALIBRATION.scaled(5)
        rho = DensityMatrixSimulator(calibration).run(
            random_circuit(4, 30, 0.5, seed=0)
        )
        assert np.trace(rho).real == pytest.approx(1.0)
        assert np.allclose(rho, rho.conj().T, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() > -1e-10

    def test_noise_reduces_purity(self):
        circuit = random_circuit(3, 20, 0.5, seed=1)
        noisy = DensityMatrixSimulator(SURFACE17_CALIBRATION.scaled(10)).run(circuit)
        purity = np.trace(noisy @ noisy).real
        assert purity < 0.999

    def test_width_limit(self):
        with pytest.raises(ValueError, match="limited"):
            DensityMatrixSimulator().run(Circuit(11))

    def test_measurements_rejected(self):
        with pytest.raises(ValueError, match="strip"):
            DensityMatrixSimulator().run(Circuit(1).measure(0))

    def test_custom_initial_state(self):
        rho1 = np.diag([0.0, 1.0]).astype(complex)
        out = DensityMatrixSimulator(IDEAL_CALIBRATION).run(
            Circuit(1).x(0), initial=rho1
        )
        assert out[0, 0].real == pytest.approx(1.0)


class TestChannelFidelity:
    def test_ideal_is_one(self):
        assert channel_fidelity(ghz_state(3), IDEAL_CALIBRATION) == pytest.approx(1.0)

    def test_product_model_is_lower_bound(self):
        """The paper's proxy never overestimates the exact fidelity."""
        calibration = SURFACE17_CALIBRATION.scaled(3)
        for circuit in (ghz_state(4), random_circuit(4, 40, 0.5, seed=2)):
            exact = channel_fidelity(circuit, calibration)
            model = product_fidelity(circuit.without_directives(), calibration)
            assert model <= exact + 1e-9

    def test_monte_carlo_converges_to_exact(self):
        """The three noise layers agree: MC sampling ~ exact channel."""
        calibration = SURFACE17_CALIBRATION.scaled(4)
        circuit = random_circuit(4, 30, 0.5, seed=3)
        exact = channel_fidelity(circuit, calibration)
        estimate = estimate_success_rate(
            circuit, calibration, trajectories=500, seed=5
        )
        assert abs(estimate.mean - exact) < 5 * max(estimate.std_error, 0.005)

    def test_state_fidelity_pure_overlap(self):
        psi = np.array([1.0, 0.0])
        rho = np.diag([0.8, 0.2]).astype(complex)
        assert state_fidelity(rho, psi) == pytest.approx(0.8)
