"""Unit tests for the state-vector simulator and equivalence oracle."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, Gate
from repro.sim import (
    Simulator,
    allclose_up_to_global_phase,
    apply_gate,
    basis_state,
    circuit_unitary,
    circuits_equivalent,
    permutation_unitary,
    probabilities,
    random_product_state,
    sample_counts,
    statevector,
    verify_mapping,
    zero_state,
)


class TestStates:
    def test_zero_state(self):
        state = zero_state(3)
        assert state.shape == (2, 2, 2)
        assert state[0, 0, 0] == 1.0
        assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0)

    def test_basis_state(self):
        state = basis_state(2, [1, 0])
        assert state[1, 0] == 1.0

    def test_basis_state_wrong_length(self):
        with pytest.raises(ValueError):
            basis_state(2, [1])

    def test_random_product_state_normalised(self):
        rng = np.random.default_rng(0)
        state = random_product_state(4, rng)
        assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0)

    def test_width_limit(self):
        with pytest.raises(ValueError, match="limit"):
            zero_state(40)


class TestApplyGate:
    def test_x_flips(self):
        state = apply_gate(zero_state(1), Gate("x", (0,)))
        assert state[1] == pytest.approx(1.0)

    def test_h_superposition(self):
        state = apply_gate(zero_state(1), Gate("h", (0,)))
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))

    def test_cx_respects_qubit_order(self):
        # control qubit 1, target qubit 0 on state |01> (q1=1).
        state = apply_gate(basis_state(2, [0, 1]), Gate("cx", (1, 0)))
        assert state[1, 1] == pytest.approx(1.0)

    def test_agrees_with_unitary(self):
        rng = np.random.default_rng(1)
        circuit = Circuit(3)
        circuit.h(0).cx(0, 2).rz(0.7, 1).cswap(0, 1, 2).ry(1.1, 2)
        via_sim = statevector(circuit).reshape(-1)
        via_unitary = circuit_unitary(circuit)[:, 0]
        assert np.allclose(via_sim, via_unitary, atol=1e-10)


class TestSimulatorMeasurement:
    def test_deterministic_measure(self):
        result = Simulator(seed=0).run(Circuit(1).x(0).measure(0))
        assert result.measurements[0] == [1]
        assert result.last_outcome(0) == 1

    def test_measure_collapses(self):
        result = Simulator(seed=3).run(Circuit(2).h(0).cx(0, 1).measure(0))
        outcome = result.measurements[0][0]
        # After measuring qubit 0, qubit 1 must agree (GHZ correlation).
        probs = result.probabilities()
        surviving = int(np.argmax(probs))
        assert (surviving >> 1) & 1 == outcome
        assert surviving & 1 == outcome

    def test_measurement_statistics(self):
        ones = 0
        simulator = Simulator(seed=1234)
        for _ in range(200):
            result = simulator.run(Circuit(1).h(0).measure(0))
            ones += result.measurements[0][0]
        assert 60 < ones < 140  # ~ Binomial(200, 0.5)

    def test_reset_restores_zero(self):
        result = Simulator(seed=0).run(Circuit(1).x(0).reset(0))
        assert result.state[0] == pytest.approx(1.0)

    def test_reset_superposition(self):
        result = Simulator(seed=5).run(Circuit(1).h(0).reset(0))
        assert abs(result.state[0]) == pytest.approx(1.0)

    def test_barrier_is_noop(self):
        a = Simulator(seed=0).run(Circuit(2).h(0).barrier().cx(0, 1))
        b = Simulator(seed=0).run(Circuit(2).h(0).cx(0, 1))
        assert np.allclose(a.state, b.state)

    def test_initial_state(self):
        init = basis_state(1, [1])
        result = Simulator(seed=0).run(Circuit(1).x(0), initial_state=init)
        assert result.state[0] == pytest.approx(1.0)

    def test_wrong_initial_state_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            Simulator().run(Circuit(2).h(0), initial_state=np.ones(3))


class TestStatevectorHelpers:
    def test_statevector_rejects_measurement(self):
        with pytest.raises(ValueError, match="measurement-free"):
            statevector(Circuit(1).measure(0))

    def test_probabilities_sum_to_one(self):
        probs = probabilities(Circuit(3).h(0).cx(0, 1).t(2))
        assert probs.sum() == pytest.approx(1.0)

    def test_sample_counts_ghz(self):
        counts = sample_counts(Circuit(2).h(0).cx(0, 1), shots=500, seed=7)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 500
        assert 150 < counts.get("00", 0) < 350


class TestUnitary:
    def test_identity_circuit(self):
        assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))

    def test_known_cx(self):
        expected = np.eye(4)[:, [0, 1, 3, 2]]
        assert np.allclose(circuit_unitary(Circuit(2).cx(0, 1)), expected)

    def test_composition_order(self):
        circuit = Circuit(1).x(0).h(0)
        # h applied after x: U = H @ X.
        h = circuit_unitary(Circuit(1).h(0))
        x = circuit_unitary(Circuit(1).x(0))
        assert np.allclose(circuit_unitary(circuit), h @ x)

    def test_rejects_measurement(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(1).measure(0))

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            circuit_unitary(Circuit(13))

    def test_permutation_unitary_identity(self):
        assert np.allclose(permutation_unitary(3, {0: 0, 1: 1, 2: 2}), np.eye(8))

    def test_permutation_unitary_swap(self):
        perm = permutation_unitary(2, {0: 1, 1: 0})
        swap = circuit_unitary(Circuit(2).swap(0, 1))
        assert np.allclose(perm, swap)

    def test_permutation_requires_bijection(self):
        with pytest.raises(ValueError):
            permutation_unitary(2, {0: 0, 1: 0})


class TestEquivalence:
    def test_global_phase_ignored(self):
        a = np.array([1.0, 0.0])
        b = np.exp(1j * 0.7) * a
        assert allclose_up_to_global_phase(a, b)

    def test_different_states_rejected(self):
        assert not allclose_up_to_global_phase(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        )

    def test_shape_mismatch(self):
        assert not allclose_up_to_global_phase(np.ones(2), np.ones(4))

    def test_circuits_equivalent_phase(self):
        # rz(pi) and z differ only by a global phase.
        assert circuits_equivalent(Circuit(1).rz(math.pi, 0), Circuit(1).z(0))

    def test_circuits_equivalent_widths(self):
        assert not circuits_equivalent(Circuit(1).x(0), Circuit(2).x(0))


class TestVerifyMapping:
    def test_identity_mapping(self, bell_circuit):
        assert verify_mapping(
            bell_circuit, bell_circuit, {0: 0, 1: 1}, {0: 0, 1: 1}
        )

    def test_mapping_with_swap(self, bell_circuit):
        mapped = Circuit(3).h(0).swap(1, 2).cx(0, 2)
        assert verify_mapping(bell_circuit, mapped, {0: 0, 1: 1}, {0: 0, 1: 2})

    def test_wrong_final_layout_detected(self, bell_circuit):
        mapped = Circuit(3).h(0).swap(1, 2).cx(0, 2)
        assert not verify_mapping(
            bell_circuit, mapped, {0: 0, 1: 1}, {0: 0, 1: 1}
        )

    def test_wrong_gate_detected(self, bell_circuit):
        mapped = Circuit(2).h(0).cz(0, 1)
        assert not verify_mapping(bell_circuit, mapped, {0: 0, 1: 1}, {0: 0, 1: 1})

    def test_non_injective_layout_rejected(self, bell_circuit):
        with pytest.raises(ValueError, match="injective"):
            verify_mapping(bell_circuit, bell_circuit, {0: 0, 1: 0}, {0: 0, 1: 1})

    def test_too_small_physical_register_rejected(self, bell_circuit):
        with pytest.raises(ValueError, match="fewer qubits"):
            verify_mapping(bell_circuit, Circuit(1), {0: 0, 1: 1}, {0: 0, 1: 1})
