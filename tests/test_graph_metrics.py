"""Unit tests for the Table I metric suite, cross-validated with networkx."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import (
    GraphMetrics,
    InteractionGraph,
    METRIC_NAMES,
    PAPER_RETAINED_METRICS,
    TABLE1_ROWS,
    circuit_graph_metrics,
    compute_metrics,
)
from repro.workloads import ghz_state, random_circuit, vqe_ansatz


def _graph_from_edges(n, edges):
    graph = InteractionGraph(n)
    for a, b in edges:
        graph.add_interaction(a, b)
    return graph


SAMPLE_GRAPHS = [
    _graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]),  # path
    _graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]),  # cycle
    _graph_from_edges(5, [(0, i) for i in range(1, 5)]),  # star
    _graph_from_edges(4, [(a, b) for a in range(4) for b in range(a + 1, 4)]),
    _graph_from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]),
]


class TestCrossValidationWithNetworkx:
    @pytest.mark.parametrize("graph", SAMPLE_GRAPHS, ids=range(len(SAMPLE_GRAPHS)))
    def test_clustering(self, graph):
        ours = compute_metrics(graph).clustering_coefficient
        theirs = nx.average_clustering(graph.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-9)

    @pytest.mark.parametrize("graph", SAMPLE_GRAPHS[:4], ids=range(4))
    def test_avg_shortest_path_connected(self, graph):
        ours = compute_metrics(graph).avg_shortest_path
        theirs = nx.average_shortest_path_length(graph.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-9)

    @pytest.mark.parametrize("graph", SAMPLE_GRAPHS, ids=range(len(SAMPLE_GRAPHS)))
    def test_betweenness(self, graph):
        metrics = compute_metrics(graph)
        centrality = nx.betweenness_centrality(graph.to_networkx())
        values = list(centrality.values())
        assert metrics.betweenness_mean == pytest.approx(np.mean(values), abs=1e-9)
        assert metrics.betweenness_max == pytest.approx(max(values), abs=1e-9)

    @pytest.mark.parametrize("graph", SAMPLE_GRAPHS[:4], ids=range(4))
    def test_closeness_connected(self, graph):
        ours = compute_metrics(graph).closeness
        centrality = nx.closeness_centrality(graph.to_networkx())
        assert ours == pytest.approx(np.mean(list(centrality.values())), abs=1e-9)

    @pytest.mark.parametrize("graph", SAMPLE_GRAPHS, ids=range(len(SAMPLE_GRAPHS)))
    def test_algebraic_connectivity(self, graph):
        ours = compute_metrics(graph).algebraic_connectivity
        laplacian = nx.laplacian_matrix(graph.to_networkx()).todense()
        eigenvalues = sorted(np.linalg.eigvalsh(laplacian))
        assert ours == pytest.approx(max(0.0, eigenvalues[1]), abs=1e-8)

    def test_random_circuit_metrics_match_networkx(self):
        circuit = random_circuit(8, 60, 0.5, seed=11)
        graph = InteractionGraph.from_circuit(circuit)
        metrics = compute_metrics(graph)
        nxg = graph.to_networkx()
        assert metrics.clustering_coefficient == pytest.approx(
            nx.average_clustering(nxg), abs=1e-9
        )
        degrees = [d for _, d in nxg.degree()]
        assert metrics.max_degree == max(degrees)
        assert metrics.min_degree == min(degrees)


class TestMetricValues:
    def test_path_graph(self):
        metrics = compute_metrics(SAMPLE_GRAPHS[0])
        assert metrics.num_qubits == 4
        assert metrics.num_edges == 3
        assert metrics.max_degree == 2
        assert metrics.min_degree == 1
        assert metrics.diameter == 3
        assert metrics.connected == 1.0
        assert metrics.clustering_coefficient == 0.0

    def test_complete_graph(self):
        metrics = compute_metrics(SAMPLE_GRAPHS[3])
        assert metrics.density == pytest.approx(1.0)
        assert metrics.avg_shortest_path == pytest.approx(1.0)
        assert metrics.clustering_coefficient == pytest.approx(1.0)

    def test_disconnected_components(self):
        metrics = compute_metrics(SAMPLE_GRAPHS[4])
        assert metrics.connected == 0.0
        # Path metrics averaged over reachable pairs only.
        assert metrics.avg_shortest_path == pytest.approx(1.0)

    def test_weighted_adjacency_statistics(self):
        graph = InteractionGraph(3)
        graph.add_interaction(0, 1, 4.0)
        graph.add_interaction(1, 2, 2.0)
        metrics = compute_metrics(graph)
        off_diag = [4.0, 0.0, 2.0]
        assert metrics.adjacency_mean == pytest.approx(np.mean(off_diag))
        assert metrics.adjacency_std == pytest.approx(np.std(off_diag))
        assert metrics.adjacency_variance == pytest.approx(np.var(off_diag))
        assert metrics.adjacency_max == 4.0
        assert metrics.adjacency_min_nonzero == 2.0
        assert metrics.weight_mean == pytest.approx(3.0)

    def test_degenerate_empty_graph(self):
        metrics = compute_metrics(InteractionGraph(0))
        assert all(np.isfinite(v) for v in metrics.as_dict().values())

    def test_single_node(self):
        metrics = compute_metrics(InteractionGraph(1))
        assert metrics.num_qubits == 1
        assert metrics.avg_shortest_path == 0.0

    def test_no_edges(self):
        metrics = compute_metrics(InteractionGraph(4))
        assert metrics.num_edges == 0
        assert metrics.density == 0.0
        assert metrics.adjacency_std == 0.0


class TestMetricVectorApi:
    def test_metric_names_complete(self):
        metrics = circuit_graph_metrics(ghz_state(3))
        assert set(metrics.as_dict()) == set(METRIC_NAMES)

    def test_vector_order(self):
        metrics = circuit_graph_metrics(ghz_state(3))
        vector = metrics.vector(["num_edges", "max_degree"])
        assert vector.tolist() == [2.0, 2.0]

    def test_paper_retained_subset(self):
        assert set(PAPER_RETAINED_METRICS) <= set(METRIC_NAMES)
        assert len(PAPER_RETAINED_METRICS) == 4

    def test_table1_rows_present(self):
        assert len(TABLE1_ROWS) == 4
        assert any("Hopcount" in row[0] for row in TABLE1_ROWS)


class TestMetricBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_on_random_circuits(self, seed):
        circuit = random_circuit(7, 50, 0.5, seed=seed)
        metrics = circuit_graph_metrics(circuit)
        n = metrics.num_qubits
        assert 0 <= metrics.min_degree <= metrics.avg_degree <= metrics.max_degree
        assert metrics.max_degree <= n - 1
        assert 0.0 <= metrics.density <= 1.0
        assert 0.0 <= metrics.clustering_coefficient <= 1.0
        assert 0.0 <= metrics.betweenness_mean <= metrics.betweenness_max <= 1.0
        assert metrics.avg_shortest_path <= metrics.diameter
        assert metrics.adjacency_variance == pytest.approx(
            metrics.adjacency_std ** 2
        )


class TestNewMetrics:
    def test_assortativity_matches_networkx(self):
        graph = _graph_from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        ours = compute_metrics(graph).assortativity
        theirs = nx.degree_assortativity_coefficient(graph.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_assortativity_star_is_negative(self):
        star = _graph_from_edges(5, [(0, i) for i in range(1, 5)])
        assert compute_metrics(star).assortativity < 0

    def test_assortativity_regular_graph_zero(self):
        cycle = _graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert compute_metrics(cycle).assortativity == 0.0

    def test_assortativity_empty(self):
        assert compute_metrics(InteractionGraph(3)).assortativity == 0.0

    def test_weight_entropy_uniform_is_one(self):
        graph = InteractionGraph(4)
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            graph.add_interaction(a, b, 5.0)
        assert compute_metrics(graph).weight_entropy == pytest.approx(1.0)

    def test_weight_entropy_skewed_is_low(self):
        graph = InteractionGraph(4)
        graph.add_interaction(0, 1, 100.0)
        graph.add_interaction(1, 2, 1.0)
        graph.add_interaction(2, 3, 1.0)
        assert compute_metrics(graph).weight_entropy < 0.5

    def test_weight_entropy_degenerate(self):
        single = InteractionGraph(2)
        single.add_interaction(0, 1)
        assert compute_metrics(single).weight_entropy == 0.0
        assert compute_metrics(InteractionGraph(2)).weight_entropy == 0.0
