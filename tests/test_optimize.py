"""Unit tests for the peephole optimiser (repro.compiler.optimize).

Every pass must preserve the circuit unitary (up to global phase); the
suite checks that invariant on randomised circuits as well as the
specific rewrites.
"""

import math

import pytest

from repro.circuit import Circuit, Gate
from repro.compiler import (
    cancel_inverse_pairs,
    merge_rotations,
    optimize_circuit,
    remove_trivial_gates,
)
from repro.sim import circuits_equivalent
from repro.workloads import random_circuit


class TestRemoveTrivial:
    def test_identity_removed(self):
        assert len(remove_trivial_gates(Circuit(1).i(0).x(0))) == 1

    def test_zero_rotation_removed(self):
        circuit = Circuit(1).rz(0.0, 0).rx(2 * math.pi, 0).ry(0.5, 0)
        cleaned = remove_trivial_gates(circuit)
        assert [g.name for g in cleaned] == ["ry"]

    def test_nonzero_kept(self):
        assert len(remove_trivial_gates(Circuit(1).rz(0.1, 0))) == 1


class TestCancelInversePairs:
    def test_adjacent_self_inverse(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1)
        assert len(cancel_inverse_pairs(circuit)) == 0

    def test_s_sdg_pair(self):
        assert len(cancel_inverse_pairs(Circuit(1).s(0).sdg(0))) == 0

    def test_rotation_inverse_pair(self):
        circuit = Circuit(1).rz(0.7, 0).rz(-0.7, 0)
        # rz pair is merged-or-cancelled only by exact inverse match.
        assert len(cancel_inverse_pairs(circuit)) == 0

    def test_non_inverse_kept(self):
        assert len(cancel_inverse_pairs(Circuit(1).h(0).x(0))) == 2

    def test_blocked_by_intervening_gate(self):
        circuit = Circuit(1).h(0).x(0).h(0)
        assert len(cancel_inverse_pairs(circuit)) == 3

    def test_disjoint_gates_do_not_block(self):
        circuit = Circuit(2).h(0).x(1).h(0)
        assert len(cancel_inverse_pairs(circuit)) == 1

    def test_commuting_gate_does_not_block(self):
        # rz on the control commutes with cx: the two cx cancel.
        circuit = Circuit(2).cx(0, 1).rz(0.5, 0).cx(0, 1)
        optimised = cancel_inverse_pairs(circuit)
        assert [g.name for g in optimised] == ["rz"]

    def test_commute_through_disabled(self):
        circuit = Circuit(2).cx(0, 1).rz(0.5, 0).cx(0, 1)
        assert len(cancel_inverse_pairs(circuit, commute_through=False)) == 3

    def test_symmetric_operands_cancel(self):
        circuit = Circuit(2).cz(0, 1).cz(1, 0)
        assert len(cancel_inverse_pairs(circuit)) == 0
        circuit = Circuit(2).swap(0, 1).swap(1, 0)
        assert len(cancel_inverse_pairs(circuit)) == 0

    def test_asymmetric_operands_do_not_cancel(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_inverse_pairs(circuit)) == 2

    def test_barrier_blocks_cancellation(self):
        circuit = Circuit(1).h(0).barrier(0).h(0)
        assert len(cancel_inverse_pairs(circuit).without_directives()) == 2

    def test_measure_never_cancelled(self):
        circuit = Circuit(1).measure(0).measure(0)
        assert len(cancel_inverse_pairs(circuit)) == 2


class TestMergeRotations:
    def test_same_axis_merged(self):
        circuit = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.7)

    def test_merge_to_zero_drops(self):
        circuit = Circuit(1).rz(0.3, 0).rz(-0.3, 0)
        assert len(merge_rotations(circuit)) == 0

    def test_different_axes_not_merged(self):
        assert len(merge_rotations(Circuit(1).rz(0.3, 0).rx(0.4, 0))) == 2

    def test_disjoint_qubits_do_not_block(self):
        circuit = Circuit(2).rz(0.3, 0).h(1).rz(0.4, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 2

    def test_two_qubit_rotation_merge(self):
        circuit = Circuit(2).rzz(0.2, 0, 1).rzz(0.3, 0, 1)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.5)

    def test_crz_operand_order_respected(self):
        circuit = Circuit(2).crz(0.2, 0, 1).crz(0.3, 1, 0)
        assert len(merge_rotations(circuit)) == 2


class TestOptimizeCircuit:
    def test_fixpoint_cascade(self):
        # x t tdg x -> x x -> empty (needs two rounds).
        circuit = Circuit(1).x(0).t(0).tdg(0).x(0)
        assert len(optimize_circuit(circuit)) == 0

    def test_semantics_preserved_on_random_circuits(self):
        for seed in range(5):
            circuit = random_circuit(4, 60, 0.4, seed=seed)
            optimised = optimize_circuit(circuit)
            assert len(optimised) <= len(circuit)
            assert circuits_equivalent(circuit, optimised)

    def test_semantics_preserved_with_measures_stripped(self):
        circuit = Circuit(3).h(0).h(0).cx(0, 1).rz(0.1, 1).rz(-0.1, 1).cx(0, 1)
        optimised = optimize_circuit(circuit)
        assert circuits_equivalent(circuit, optimised)
        assert len(optimised) == 0

    def test_idempotent(self):
        circuit = random_circuit(4, 40, 0.3, seed=7)
        once = optimize_circuit(circuit)
        twice = optimize_circuit(once)
        assert once == twice
