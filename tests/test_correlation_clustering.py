"""Unit tests for the Pearson reduction and benchmark clustering."""

import numpy as np
import pytest

from repro.core import (
    InteractionGraph,
    PAPER_RETAINED_METRICS,
    cluster_profiles,
    compute_metrics,
    hierarchical_labels,
    kmeans,
    pearson_matrix,
    profile_suite,
    reduce_metrics,
    silhouette_score,
    standardize_features,
)
from repro.workloads import small_suite


def _metric_population(count=20, seed=0):
    """Metric vectors from a spread of random interaction graphs."""
    rng = np.random.default_rng(seed)
    population = []
    for _ in range(count):
        n = int(rng.integers(4, 10))
        graph = InteractionGraph(n)
        pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
        rng.shuffle(pairs)
        for a, b in pairs[: int(rng.integers(n - 1, len(pairs)))]:
            graph.add_interaction(a, b, float(rng.integers(1, 6)))
        population.append(compute_metrics(graph))
    return population


class TestPearsonMatrix:
    def test_shape_and_diagonal(self):
        names, matrix = pearson_matrix(_metric_population())
        assert matrix.shape == (len(names), len(names))
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T, atol=1e-12)

    def test_bounded(self):
        _, matrix = pearson_matrix(_metric_population())
        assert np.all(matrix <= 1.0) and np.all(matrix >= -1.0)

    def test_perfectly_correlated_pair(self):
        population = _metric_population()
        names, matrix = pearson_matrix(
            population, names=["adjacency_std", "adjacency_variance"]
        )
        # std and variance are monotonically related but not linearly;
        # still strongly correlated on any real population.
        assert matrix[0, 1] > 0.9

    def test_constant_feature_correlates_zero(self):
        population = _metric_population()
        # 'connected' may vary; use a name guaranteed constant: craft one.
        names, matrix = pearson_matrix(population, names=["num_edges", "connected"])
        assert abs(matrix[0, 1]) <= 1.0  # well-defined, no NaN
        assert not np.isnan(matrix).any()

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            pearson_matrix([])


class TestReduction:
    def test_retained_mutually_uncorrelated(self):
        population = _metric_population(30)
        reduction = reduce_metrics(population, threshold=0.85)
        for i, a in enumerate(reduction.retained):
            for b in reduction.retained[i + 1 :]:
                assert abs(reduction.correlation(a, b)) < 0.85

    def test_dropped_have_blockers(self):
        reduction = reduce_metrics(_metric_population(30), threshold=0.85)
        for name, (kept_by, r) in reduction.dropped.items():
            if name != kept_by:  # constant features self-block
                assert kept_by in reduction.retained
                assert r >= 0.85

    def test_preference_order_respected(self):
        reduction = reduce_metrics(_metric_population(30))
        # The paper's first retained metric is always kept (first candidate).
        assert PAPER_RETAINED_METRICS[0] in reduction.retained

    def test_threshold_monotonicity(self):
        population = _metric_population(30)
        loose = reduce_metrics(population, threshold=0.99)
        strict = reduce_metrics(population, threshold=0.5)
        assert len(strict.retained) <= len(loose.retained)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            reduce_metrics(_metric_population(), threshold=0.0)

    def test_variance_and_std_never_both_kept(self):
        reduction = reduce_metrics(_metric_population(30), threshold=0.9)
        kept = set(reduction.retained)
        assert not {"adjacency_std", "adjacency_variance"} <= kept


class TestKmeans:
    def test_separates_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0, 0.2, size=(20, 2))
        blob_b = rng.normal(5, 0.2, size=(20, 2))
        features = np.vstack([blob_a, blob_b])
        labels, centroids = kmeans(features, 2, seed=1)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]
        assert centroids.shape == (2, 2)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 5)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_k_equals_n(self):
        features = np.arange(6, dtype=float).reshape(3, 2)
        labels, _ = kmeans(features, 3, seed=0)
        assert len(set(labels)) == 3

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(30, 3))
        a, _ = kmeans(features, 3, seed=7)
        b, _ = kmeans(features, 3, seed=7)
        assert np.array_equal(a, b)


class TestSilhouetteAndHierarchical:
    def test_silhouette_good_vs_bad(self):
        rng = np.random.default_rng(0)
        features = np.vstack(
            [rng.normal(0, 0.1, (15, 2)), rng.normal(4, 0.1, (15, 2))]
        )
        good = np.array([0] * 15 + [1] * 15)
        bad = np.array([0, 1] * 15)
        assert silhouette_score(features, good) > 0.8
        assert silhouette_score(features, bad) < 0.2

    def test_silhouette_single_cluster_zero(self):
        assert silhouette_score(np.zeros((5, 2)), np.zeros(5)) == 0.0

    def test_hierarchical_blobs(self):
        rng = np.random.default_rng(2)
        features = np.vstack(
            [rng.normal(0, 0.1, (10, 2)), rng.normal(3, 0.1, (10, 2))]
        )
        labels = hierarchical_labels(features, 2)
        assert len(set(labels[:10])) == 1
        assert labels[0] != labels[-1]

    def test_standardize(self):
        features = np.array([[1.0, 10.0], [3.0, 10.0], [5.0, 10.0]])
        scaled = standardize_features(features)
        assert scaled[:, 0].mean() == pytest.approx(0.0)
        assert scaled[:, 0].std() == pytest.approx(1.0)
        # Constant column untouched (no division by zero).
        assert np.allclose(scaled[:, 1], 0.0)


class TestClusterProfiles:
    def test_end_to_end(self):
        profiles = profile_suite(small_suite(12))
        result = cluster_profiles(profiles, k=3, seed=0)
        assert len(result.labels) == 12
        assert 1 <= result.num_clusters <= 3
        assert -1.0 <= result.silhouette <= 1.0
        members = sum(len(result.members(c)) for c in set(result.labels))
        assert members == 12

    def test_hierarchical_method(self):
        profiles = profile_suite(small_suite(9))
        result = cluster_profiles(profiles, k=2, method="hierarchical")
        assert result.num_clusters <= 2

    def test_unknown_method(self):
        profiles = profile_suite(small_suite(6))
        with pytest.raises(ValueError):
            cluster_profiles(profiles, method="psychic")

    def test_custom_features(self):
        profiles = profile_suite(small_suite(8))
        result = cluster_profiles(
            profiles, k=2, feature_names=["max_degree", "num_gates"]
        )
        assert result.feature_names == ["max_degree", "num_gates"]
