"""Unit tests for the Circuit container (repro.circuit.circuit)."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, CircuitError, Gate
from repro.sim import circuits_equivalent, statevector


class TestConstruction:
    def test_empty(self):
        circuit = Circuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0
        assert circuit.num_gates == 0

    def test_negative_register_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(-1)

    def test_initial_gates_validated(self):
        with pytest.raises(CircuitError, match="outside register"):
            Circuit(1, [Gate("cx", (0, 1))])

    def test_builder_chaining(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        assert [g.name for g in circuit] == ["h", "cx", "measure", "measure"]

    def test_add_resolves_aliases(self):
        circuit = Circuit(2).add("cnot", 0, 1)
        assert circuit[0].name == "cx"

    def test_add_with_implicit_params(self):
        circuit = Circuit(1).add("x90", 0)
        assert circuit[0].name == "rx"
        assert circuit[0].params == (math.pi / 2,)

    def test_append_out_of_range(self):
        with pytest.raises(CircuitError, match="outside register"):
            Circuit(2).h(5)

    def test_barrier_defaults_to_all_qubits(self):
        circuit = Circuit(3).barrier()
        assert circuit[0].qubits == (0, 1, 2)


class TestQueries:
    def test_counts(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure(2)
        assert circuit.num_gates == 3  # measure excluded
        assert circuit.num_operations == 4
        assert circuit.num_two_qubit_gates == 2
        assert circuit.two_qubit_fraction == pytest.approx(2 / 3)

    def test_two_qubit_fraction_empty(self):
        assert Circuit(2).two_qubit_fraction == 0.0

    def test_count_ops(self):
        counts = Circuit(2).h(0).h(1).cx(0, 1).count_ops()
        assert counts == {"h": 2, "cx": 1}

    def test_used_qubits(self):
        circuit = Circuit(5).h(1).cx(1, 3)
        assert circuit.used_qubits() == [1, 3]

    def test_depth_chain(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        assert circuit.depth() == 3

    def test_depth_parallel(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_depth_excludes_directives_by_default(self):
        circuit = Circuit(2).h(0).barrier().h(0)
        assert circuit.depth() == 2
        assert circuit.depth(count_directives=True) == 3

    def test_barrier_orders_later_gates(self):
        # h(0) | barrier(0,1) | h(1): the barrier forces h(1) after h(0).
        circuit = Circuit(2).h(0).barrier(0, 1).h(1)
        moments = circuit.moments()
        flat = [[g.name for g in m] for m in moments]
        assert flat == [["h"], ["barrier"], ["h"]]

    def test_moments_disjoint(self):
        circuit = Circuit(3).h(0).cx(1, 2).cx(0, 1).h(2)
        for moment in circuit.moments():
            seen = set()
            for gate in moment:
                assert not seen & set(gate.qubits)
                seen.update(gate.qubits)

    def test_moment_count_matches_depth(self):
        circuit = Circuit(3).h(0).cx(0, 1).h(2).cx(1, 2).measure_all()
        assert len(circuit.moments()) == circuit.depth(count_directives=True)


class TestTransforms:
    def test_copy_is_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1
        assert len(b) == 2

    def test_equality(self):
        assert Circuit(2).h(0) == Circuit(2).h(0)
        assert Circuit(2).h(0) != Circuit(2).h(1)
        assert Circuit(2) != Circuit(3)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Circuit(1))

    def test_inverse_undoes(self):
        circuit = Circuit(3).h(0).cx(0, 1).t(1).rzz(0.7, 1, 2)
        identity = circuit.compose(circuit.inverse())
        state = statevector(identity)
        expected = np.zeros(8, dtype=complex)
        expected[0] = 1.0
        assert np.allclose(np.abs(state.reshape(-1)), np.abs(expected), atol=1e-9)

    def test_inverse_reverses_order(self):
        circuit = Circuit(2).s(0).cx(0, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cx", "sdg"]

    def test_compose_sizes(self):
        combined = Circuit(2).h(0).compose(Circuit(4).x(3))
        assert combined.num_qubits == 4
        assert len(combined) == 2

    def test_remap(self):
        circuit = Circuit(2).cx(0, 1).remap_qubits({0: 2, 1: 0}, num_qubits=3)
        assert circuit[0].qubits == (2, 0)
        assert circuit.num_qubits == 3

    def test_remap_non_injective_rejected(self):
        with pytest.raises(CircuitError, match="injective"):
            Circuit(2).cx(0, 1).remap_qubits({0: 1, 1: 1})

    def test_remap_too_small_register_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).cx(0, 1).remap_qubits({0: 0, 1: 5}, num_qubits=3)

    def test_remap_preserves_semantics(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        mapped = circuit.remap_qubits({0: 1, 1: 0})
        swapped = Circuit(2).swap(0, 1).compose(mapped).swap(0, 1)
        assert circuits_equivalent(circuit, swapped)

    def test_without_directives(self):
        circuit = Circuit(2).h(0).barrier().measure_all()
        assert [g.name for g in circuit.without_directives()] == ["h"]

    def test_repeated(self):
        circuit = Circuit(1).x(0).repeated(3)
        assert len(circuit) == 3
        with pytest.raises(CircuitError):
            Circuit(1).x(0).repeated(-1)


class TestBuilderGateCoverage:
    """Every builder shorthand produces the right gate kind."""

    @pytest.mark.parametrize(
        "method,args,expected",
        [
            ("i", (0,), "i"),
            ("x", (0,), "x"),
            ("y", (0,), "y"),
            ("z", (0,), "z"),
            ("h", (0,), "h"),
            ("s", (0,), "s"),
            ("sdg", (0,), "sdg"),
            ("t", (0,), "t"),
            ("tdg", (0,), "tdg"),
            ("sx", (0,), "sx"),
            ("rx", (0.1, 0), "rx"),
            ("ry", (0.1, 0), "ry"),
            ("rz", (0.1, 0), "rz"),
            ("p", (0.1, 0), "p"),
            ("u2", (0.1, 0.2, 0), "u2"),
            ("u3", (0.1, 0.2, 0.3, 0), "u3"),
            ("cx", (0, 1), "cx"),
            ("cz", (0, 1), "cz"),
            ("swap", (0, 1), "swap"),
            ("iswap", (0, 1), "iswap"),
            ("cp", (0.1, 0, 1), "cp"),
            ("crz", (0.1, 0, 1), "crz"),
            ("rzz", (0.1, 0, 1), "rzz"),
            ("rxx", (0.1, 0, 1), "rxx"),
            ("ccx", (0, 1, 2), "ccx"),
            ("ccz", (0, 1, 2), "ccz"),
            ("cswap", (0, 1, 2), "cswap"),
            ("measure", (0,), "measure"),
            ("reset", (0,), "reset"),
        ],
    )
    def test_builder(self, method, args, expected):
        circuit = Circuit(3)
        getattr(circuit, method)(*args)
        assert circuit[0].name == expected
