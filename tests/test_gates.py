"""Unit tests for the gate model (repro.circuit.gates)."""

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    DIAGONAL_GATES,
    Gate,
    GATE_ALIASES,
    SELF_INVERSE_GATES,
    STANDARD_GATES,
    TWO_QUBIT_GATE_NAMES,
    gate_definition,
    gate_inverse,
    gate_matrix,
    gates_commute,
    resolve_alias,
    _embed,
)


def _random_params(definition, rng):
    return tuple(rng.uniform(0, 2 * math.pi, size=definition.num_params))


def _unitary_gates():
    for name, definition in sorted(STANDARD_GATES.items()):
        if definition.matrix_fn is None or definition.num_qubits is None:
            continue
        yield name, definition


class TestGateConstruction:
    def test_basic_gate(self):
        gate = Gate("cx", (0, 1))
        assert gate.num_qubits == 2
        assert gate.is_two_qubit
        assert not gate.is_directive

    def test_qubits_coerced_to_int(self):
        gate = Gate("h", (np.int64(3),))
        assert gate.qubits == (3,)
        assert isinstance(gate.qubits[0], int)

    def test_params_coerced_to_float(self):
        gate = Gate("rz", (0,), (1,))
        assert gate.params == (1.0,)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Gate("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cx", (1, 1))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError, match="parameters"):
            Gate("rz", (0,))

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError, match="unknown gate"):
            Gate("bogus", (0,))

    def test_barrier_variable_arity(self):
        assert Gate("barrier", (0,)).num_qubits == 1
        assert Gate("barrier", (0, 1, 2)).num_qubits == 3

    def test_remap(self):
        gate = Gate("cx", (0, 1)).remap({0: 5, 1: 3})
        assert gate.qubits == (5, 3)

    def test_overlaps(self):
        assert Gate("cx", (0, 1)).overlaps(Gate("h", (1,)))
        assert not Gate("cx", (0, 1)).overlaps(Gate("h", (2,)))

    def test_two_qubit_barrier_is_not_interaction(self):
        assert not Gate("barrier", (0, 1)).is_two_qubit


class TestMatrices:
    @pytest.mark.parametrize("name,definition", list(_unitary_gates()))
    def test_matrix_is_unitary(self, name, definition):
        rng = np.random.default_rng(42)
        params = _random_params(definition, rng)
        gate = Gate(name, tuple(range(definition.num_qubits)), params)
        matrix = gate_matrix(gate)
        dim = 2 ** definition.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    @pytest.mark.parametrize(
        "name", sorted(DIAGONAL_GATES - {"i"})
    )
    def test_diagonal_flag_matches_matrix(self, name):
        definition = STANDARD_GATES[name]
        rng = np.random.default_rng(3)
        gate = Gate(
            name,
            tuple(range(definition.num_qubits)),
            _random_params(definition, rng),
        )
        matrix = gate_matrix(gate)
        off_diagonal = matrix - np.diag(np.diag(matrix))
        assert np.allclose(off_diagonal, 0.0)

    def test_cx_matrix_convention_first_qubit_is_control(self):
        # |10> (control=1, target=0) must map to |11>.
        matrix = gate_matrix(Gate("cx", (0, 1)))
        state = np.zeros(4)
        state[0b10] = 1.0
        out = matrix @ state
        assert out[0b11] == pytest.approx(1.0)

    def test_directive_has_no_matrix(self):
        with pytest.raises(ValueError, match="no unitary matrix"):
            gate_matrix(Gate("measure", (0,)))

    def test_matrix_cache_returns_readonly(self):
        matrix = gate_matrix(Gate("h", (0,)))
        with pytest.raises(ValueError):
            matrix[0, 0] = 5.0


class TestInverses:
    @pytest.mark.parametrize("name,definition", list(_unitary_gates()))
    def test_inverse_matrix_is_adjoint(self, name, definition):
        rng = np.random.default_rng(7)
        gate = Gate(
            name,
            tuple(range(definition.num_qubits)),
            _random_params(definition, rng),
        )
        inverse = gate_inverse(gate)
        product = gate_matrix(gate) @ gate_matrix(inverse)
        dim = 2 ** definition.num_qubits
        # Allow a global phase.
        phase = product[0, 0]
        assert abs(abs(phase) - 1.0) < 1e-9
        assert np.allclose(product, phase * np.eye(dim), atol=1e-9)

    def test_self_inverse_set(self):
        for name in SELF_INVERSE_GATES - {"barrier"}:
            definition = STANDARD_GATES[name]
            gate = Gate(name, tuple(range(definition.num_qubits)))
            assert gate_inverse(gate) == gate

    def test_measure_not_invertible(self):
        with pytest.raises(ValueError, match="not invertible"):
            gate_inverse(Gate("measure", (0,)))

    def test_u2_inverse(self):
        gate = Gate("u2", (0,), (0.4, 1.1))
        inverse = gate_inverse(gate)
        product = gate_matrix(gate) @ gate_matrix(inverse)
        phase = product[0, 0]
        assert np.allclose(product, phase * np.eye(2), atol=1e-9)


class TestAliases:
    def test_alias_table_targets_exist(self):
        for target, _ in GATE_ALIASES.values():
            assert target in STANDARD_GATES

    def test_cnot_alias(self):
        assert resolve_alias("CNOT") == ("cx", ())

    def test_x90_alias_has_implicit_param(self):
        name, params = resolve_alias("x90")
        assert name == "rx"
        assert params == (math.pi / 2,)

    def test_unknown_passes_through(self):
        assert resolve_alias("mystery") == ("mystery", ())


class TestCommutation:
    def test_disjoint_gates_commute(self):
        assert gates_commute(Gate("h", (0,)), Gate("x", (1,)))

    def test_diagonal_gates_commute(self):
        assert gates_commute(Gate("rz", (0,), (0.3,)), Gate("cz", (0, 1)))

    def test_cx_sharing_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_sharing_target(self):
        assert gates_commute(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cx_control_target_chain_does_not_commute(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_cx_reversed_does_not_commute(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 0)))

    def test_rz_on_cx_control(self):
        assert gates_commute(Gate("rz", (0,), (1.0,)), Gate("cx", (0, 1)))

    def test_rx_on_cx_target(self):
        assert gates_commute(Gate("rx", (1,), (1.0,)), Gate("cx", (0, 1)))

    def test_x_on_cx_control_does_not_commute(self):
        assert not gates_commute(Gate("x", (0,)), Gate("cx", (0, 1)))

    def test_directive_blocks(self):
        assert not gates_commute(Gate("measure", (0,)), Gate("h", (0,)))
        assert not gates_commute(Gate("barrier", (0, 1)), Gate("x", (0,)))

    def test_numeric_fallback_agrees_with_matrices(self):
        # swap and cz on the same pair commute (both symmetric, check numeric).
        assert gates_commute(Gate("swap", (0, 1)), Gate("cz", (0, 1)))

    def test_numeric_fallback_disabled(self):
        assert not gates_commute(
            Gate("swap", (0, 1)), Gate("cz", (0, 1)), numeric_fallback=False
        )

    def test_commutation_matches_matrix_check(self):
        rng = np.random.default_rng(5)
        pool = [
            Gate("h", (0,)),
            Gate("x", (0,)),
            Gate("rz", (1,), (0.7,)),
            Gate("cx", (0, 1)),
            Gate("cz", (1, 2)),
            Gate("swap", (0, 2)),
        ]
        for a in pool:
            for b in pool:
                support = sorted(set(a.qubits) | set(b.qubits))
                ma = _embed(a, support)
                mb = _embed(b, support)
                expected = np.allclose(ma @ mb, mb @ ma, atol=1e-9)
                assert gates_commute(a, b) == expected, (a, b)


class TestEmbed:
    def test_embed_single_qubit(self):
        full = _embed(Gate("x", (1,)), [0, 1])
        expected = np.kron(np.eye(2), gate_matrix(Gate("x", (0,))))
        assert np.allclose(full, expected)

    def test_embed_respects_order(self):
        # cx with control on the less significant position.
        full = _embed(Gate("cx", (1, 0)), [0, 1])
        state = np.zeros(4)
        state[0b01] = 1.0  # qubit1 (control) = 1
        out = full @ state
        assert out[0b11] == pytest.approx(1.0)


def test_two_qubit_gate_names_consistent():
    for name in TWO_QUBIT_GATE_NAMES:
        assert STANDARD_GATES[name].num_qubits == 2


def test_gate_definition_unknown():
    with pytest.raises(KeyError):
        gate_definition("nope")
