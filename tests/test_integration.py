"""End-to-end integration scenarios across subsystem boundaries.

Each test exercises a realistic multi-module pipeline the way a
downstream user would: generate → persist → reload → compile → schedule
→ lower → measure, checking cross-module consistency rather than any
single unit.
"""

import numpy as np
import pytest

from repro import (
    Circuit,
    ControlModel,
    FullStack,
    MapperAdvisor,
    profile_suite,
    sabre_mapper,
    surface17_device,
    trivial_mapper,
)
from repro.compiler import asap_schedule
from repro.experiments import records_to_csv, run_suite
from repro.fullstack import compile_to_isa, compile_to_pulses
from repro.hardware import load_device, save_device, surface17_extended_device
from repro.metrics import product_fidelity
from repro.workloads import (
    evaluation_suite,
    ghz_state,
    load_suite,
    qaoa_maxcut,
    random_maxcut_instance,
    save_suite,
    summarize_suite,
)


class TestCorpusRoundtripPipeline:
    def test_generate_save_reload_map(self, tmp_path):
        """The archival path: a reloaded corpus maps identically."""
        suite = evaluation_suite(num_circuits=6, seed=3, max_qubits=10, max_gates=80)
        save_suite(suite, tmp_path / "corpus")
        reloaded = load_suite(tmp_path / "corpus")

        device = surface17_device()
        original_records = run_suite(suite, device=device)
        reloaded_records = run_suite(reloaded, device=device)
        for a, b in zip(original_records, reloaded_records):
            assert a.swap_count == b.swap_count
            assert a.gates_after == b.gates_after
            assert a.fidelity_after == pytest.approx(b.fidelity_after)

    def test_records_to_csv_from_reloaded_suite(self, tmp_path):
        suite = evaluation_suite(num_circuits=4, seed=1, max_qubits=8, max_gates=60)
        save_suite(suite, tmp_path / "corpus")
        records = run_suite(load_suite(tmp_path / "corpus"), device=surface17_device())
        path = records_to_csv(records, tmp_path / "results.csv")
        assert path.read_text().count("\n") == len(records) + 1

    def test_summary_of_persisted_suite(self, tmp_path):
        suite = evaluation_suite(num_circuits=6, seed=2, max_qubits=10, max_gates=60)
        save_suite(suite, tmp_path / "corpus")
        summary = summarize_suite(load_suite(tmp_path / "corpus"))
        assert summary.num_circuits == 6


class TestDeviceConfigPipeline:
    def test_custom_device_file_drives_the_stack(self, tmp_path):
        """Describe a chip in JSON, load it, run the full stack on it."""
        path = save_device(surface17_device(), tmp_path / "chip.json")
        device = load_device(path)
        stack = FullStack(device, mapper=sabre_mapper())
        report = stack.execute(ghz_state(4), shots=100, seed=0)
        assert report.mapping.verify()
        assert sum(report.counts.values()) == 100


class TestFullStackConsistency:
    def test_isa_matches_schedule(self):
        device = surface17_device()
        result = sabre_mapper().map(ghz_state(5), device)
        schedule = result.schedule()
        program = compile_to_isa(schedule, cycle_ns=20.0)
        # Instruction count = schedule entries minus barriers.
        expected = sum(1 for e in schedule.entries if e.gate.name != "barrier")
        assert program.num_instructions == expected

    def test_pulses_match_schedule_span(self):
        device = surface17_device()
        result = sabre_mapper().map(ghz_state(5), device)
        schedule = result.schedule()
        pulses = compile_to_pulses(schedule, device.calibration)
        assert pulses.duration_ns <= schedule.latency_ns + 1e-9
        assert not pulses.has_collisions()

    def test_control_constraint_consistency(self):
        """ControlModel's checker agrees with the constrained scheduler."""
        device = surface17_device()
        result = trivial_mapper().map(
            qaoa_maxcut(
                8,
                random_maxcut_instance(8, 12, seed=2),
                num_layers=1,
                entangler="cx",
                seed=2,
            ),
            device,
        )
        model = ControlModel(max_parallel_2q=1)
        free = asap_schedule(result.mapped, device.calibration)
        constrained = asap_schedule(
            result.mapped, device.calibration, max_parallel_2q=1
        )
        assert model.satisfies(constrained)
        # If the free schedule had any 2q parallelism, it must violate.
        two_qubit_starts = {
            e.start_ns for e in free.entries if e.gate.is_two_qubit
        }
        if len(two_qubit_starts) < sum(
            1 for e in free.entries if e.gate.is_two_qubit
        ):
            assert not model.satisfies(free)

    def test_advisor_stack_sampling_matches_ideal(self):
        """Mapping must not change measurement statistics (GHZ parity)."""
        device = surface17_device()
        stack = FullStack(device, advisor=MapperAdvisor())
        report = stack.execute(ghz_state(4), shots=400, seed=3)
        # All sampled outcomes must have the 4 data qubits aligned.
        layout = report.mapping.final_layout
        compact, _, final = report.mapping._compact()
        for bits, count in report.counts.items():
            data = [bits[final[v]] for v in range(4)]
            assert len(set(data)) == 1, (bits, data)


class TestProfilingToCompilationLoop:
    def test_profile_predicts_relative_cost_within_suite(self):
        """The co-design loop on a fresh suite: harder profiles cost more
        swaps per 2q gate under SABRE (rank correlation, width-fixed)."""
        from repro.core import routing_difficulty, spearman_correlation
        from repro.workloads import random_circuit

        device = surface17_extended_device(50)
        mapper = sabre_mapper()
        circuits = [
            ghz_state(10).repeated(8),
            qaoa_maxcut(
                10,
                random_maxcut_instance(10, 14, seed=4),
                num_layers=4,
                entangler="cx",
                seed=4,
            ),
            random_circuit(10, 150, 0.3, seed=4),
            random_circuit(10, 150, 0.7, seed=4),
        ]
        profiles = profile_suite(
            [type("B", (), {"circuit": c, "family": "?", "source": c.name})() for c in circuits]
        )
        scores = [routing_difficulty(p.metrics) for p in profiles]
        pressure = []
        for circuit in circuits:
            result = mapper.map(circuit, device)
            pressure.append(result.swap_count / circuit.num_two_qubit_gates)
        assert spearman_correlation(scores, pressure) > 0.5
