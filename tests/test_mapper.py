"""Unit tests for the end-to-end mappers (repro.compiler.mapper)."""

import pytest

from repro.circuit import Circuit
from repro.compiler import (
    MappingResult,
    QuantumMapper,
    TrivialPlacement,
    TrivialRouter,
    noise_aware_mapper,
    sabre_mapper,
    trivial_mapper,
)
from repro.hardware import surface17_device, surface7_device
from repro.workloads import cuccaro_adder, ghz_state, qft, random_circuit

MAPPERS = [trivial_mapper(), sabre_mapper(), noise_aware_mapper()]


@pytest.mark.parametrize("mapper", MAPPERS, ids=lambda m: m.name)
class TestMapperInvariants:
    def test_output_in_gate_set(self, mapper, dev7):
        result = mapper.map(qft(5), dev7)
        for gate in result.mapped:
            assert dev7.gate_set.supports(gate), gate

    def test_output_respects_coupling(self, mapper, dev7):
        result = mapper.map(random_circuit(7, 50, 0.5, seed=0), dev7)
        for gate in result.mapped:
            if gate.is_two_qubit:
                assert dev7.coupling.are_adjacent(*gate.qubits)

    def test_semantically_verified(self, mapper, dev7):
        for circuit in (ghz_state(4), qft(5), cuccaro_adder(2)):
            result = mapper.map(circuit.without_directives(), dev7)
            assert result.verify(), (mapper.name, circuit.name)

    def test_toffoli_circuits_supported(self, mapper, dev7):
        # 3-qubit gates must be decomposed before routing, transparently.
        result = mapper.map(Circuit(3).ccx(0, 1, 2), dev7)
        assert result.verify()

    def test_overhead_report_consistent(self, mapper, dev7):
        result = mapper.map(random_circuit(6, 40, 0.5, seed=1), dev7)
        report = result.overhead
        assert report.gates_after == result.mapped.num_gates
        assert report.gates_before == result.decomposed.num_gates
        assert report.gates_after >= report.gates_before
        assert report.gate_overhead_percent >= 0.0

    def test_fidelity_report_consistent(self, mapper, dev7):
        result = mapper.map(random_circuit(6, 40, 0.5, seed=2), dev7)
        assert 0.0 <= result.fidelity.fidelity_after <= result.fidelity.fidelity_before
        assert result.fidelity.decrease >= 0.0

    def test_layouts_are_injective(self, mapper, dev17):
        result = mapper.map(random_circuit(10, 60, 0.4, seed=3), dev17)
        for layout in (result.initial_layout, result.final_layout):
            assert len(set(layout.values())) == len(layout)


class TestMappingResult:
    def test_schedule_and_latency(self, dev7):
        result = trivial_mapper().map(ghz_state(4), dev7)
        schedule = result.schedule()
        assert schedule.latency_ns == result.latency_ns
        assert schedule.latency_ns > 0

    def test_swap_count_matches_router(self, dev7):
        result = trivial_mapper().map(Circuit(5).cx(0, 4), dev7)
        assert result.swap_count == result.overhead.swap_count

    def test_verify_rejects_too_wide(self):
        device = surface17_device()
        result = trivial_mapper().map(random_circuit(16, 40, 0.5, seed=0), device)
        with pytest.raises(ValueError, match="verification"):
            result.verify()

    def test_compact_covers_layout_positions(self, dev17):
        result = trivial_mapper().map(ghz_state(3), dev17)
        compact, initial, final = result._compact()
        assert set(initial.values()) <= set(range(compact.num_qubits))
        assert set(final.values()) <= set(range(compact.num_qubits))

    def test_mapper_name_recorded(self, dev7):
        assert trivial_mapper().map(ghz_state(2), dev7).mapper_name == "trivial"


class TestPipelineOptions:
    def test_optimize_output_shrinks_or_equals(self, dev7):
        base = QuantumMapper(TrivialPlacement(), TrivialRouter())
        optimising = QuantumMapper(
            TrivialPlacement(), TrivialRouter(), optimize_output=True
        )
        circuit = qft(5, do_swaps=False)
        plain = base.map(circuit, dev7)
        optimised = optimising.map(circuit, dev7)
        assert optimised.mapped.num_gates <= plain.mapped.num_gates
        assert optimised.verify()

    def test_optimize_input(self, dev7):
        redundant = Circuit(3).h(0).h(0).cx(0, 1).cx(0, 1).cx(1, 2)
        mapper = QuantumMapper(
            TrivialPlacement(), TrivialRouter(), optimize_input=True
        )
        result = mapper.map(redundant, dev7)
        assert result.decomposed.num_gates < 10
        assert result.verify()

    def test_custom_name(self):
        mapper = QuantumMapper(TrivialPlacement(), TrivialRouter(), name="mine")
        assert mapper.name == "mine"

    def test_default_name_composes(self):
        mapper = QuantumMapper(TrivialPlacement(), TrivialRouter())
        assert mapper.name == "trivial+trivial"


class TestMapperQualityOrdering:
    def test_sabre_beats_trivial_on_qft(self, dev17):
        circuit = qft(10, do_swaps=False)
        trivial_result = trivial_mapper().map(circuit, dev17)
        sabre_result = sabre_mapper().map(circuit, dev17)
        assert sabre_result.swap_count < trivial_result.swap_count
        assert (
            sabre_result.fidelity.fidelity_after
            >= trivial_result.fidelity.fidelity_after
        )
