"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* circuit IR: QASM round-trip identity; inverse composition = identity;
  depth bounds; remap bijectivity,
* interaction graphs: total weight = two-qubit gate count; degree and
  adjacency-statistic bounds,
* layouts: SWAP sequences keep the layout a bijection,
* compilation: decomposition and optimisation preserve the unitary;
  routing preserves semantics under the layout contract,
* metrics: gate-fidelity product bounds and monotonicity.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, Gate, parse_qasm, to_qasm
from repro.compiler import (
    Layout,
    SabreRouter,
    TrivialRouter,
    decompose_circuit,
    optimize_circuit,
)
from repro.core import InteractionGraph, compute_metrics
from repro.hardware import SURFACE17_GATESET, CNOT_GATESET, line_device, surface7_device
from repro.metrics import product_fidelity
from repro.sim import circuits_equivalent, verify_mapping

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_ANGLES = st.floats(
    min_value=-2 * math.pi,
    max_value=2 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def small_circuits(draw, max_qubits=4, max_gates=25, allow_directives=False):
    num_qubits = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circuit = Circuit(num_qubits)
    one_q = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]
    rot = ["rx", "ry", "rz", "p"]
    two_q = ["cx", "cz", "swap"]
    rot2 = ["rzz", "cp", "crz"]
    for _ in range(num_gates):
        kind = draw(st.integers(0, 3 if not allow_directives else 4))
        if kind == 0:
            circuit.add(draw(st.sampled_from(one_q)), draw(st.integers(0, num_qubits - 1)))
        elif kind == 1:
            circuit.add(
                draw(st.sampled_from(rot)),
                draw(st.integers(0, num_qubits - 1)),
                params=(draw(_ANGLES),),
            )
        elif kind == 2:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.add(draw(st.sampled_from(two_q)), a, b)
        elif kind == 3:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.add(draw(st.sampled_from(rot2)), a, b, params=(draw(_ANGLES),))
        else:
            circuit.barrier()
    return circuit


# ---------------------------------------------------------------------------
# Circuit IR properties
# ---------------------------------------------------------------------------


class TestCircuitProperties:
    @given(small_circuits(allow_directives=True))
    @settings(max_examples=40, deadline=None)
    def test_qasm_roundtrip_preserves_structure(self, circuit):
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert [g.name for g in parsed] == [g.name for g in circuit]
        for original, reparsed in zip(circuit, parsed):
            assert reparsed.qubits == original.qubits
            for p, q in zip(original.params, reparsed.params):
                assert q == pytest.approx(p, abs=1e-12)

    @given(small_circuits(max_gates=12))
    @settings(max_examples=20, deadline=None)
    def test_inverse_composition_is_identity(self, circuit):
        identity = circuit.compose(circuit.inverse())
        assert circuits_equivalent(identity, Circuit(circuit.num_qubits))

    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_depth_bounds(self, circuit):
        depth = circuit.depth()
        assert depth <= circuit.num_gates
        if circuit.num_gates:
            assert depth >= 1
        assert len(circuit.moments()) >= depth

    @given(small_circuits())
    @settings(max_examples=30, deadline=None)
    def test_remap_roundtrip(self, circuit):
        n = circuit.num_qubits
        forward = {q: (q + 1) % n for q in range(n)}
        backward = {v: k for k, v in forward.items()}
        assert circuit.remap_qubits(forward).remap_qubits(backward) == circuit


class TestInteractionGraphProperties:
    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_total_weight_counts_two_qubit_gates(self, circuit):
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.total_weight == circuit.num_two_qubit_gates

    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_metric_bounds(self, circuit):
        metrics = compute_metrics(InteractionGraph.from_circuit(circuit))
        n = metrics.num_qubits
        assert 0 <= metrics.min_degree <= metrics.max_degree <= max(0, n - 1)
        assert 0.0 <= metrics.density <= 1.0
        assert 0.0 <= metrics.clustering_coefficient <= 1.0
        assert metrics.adjacency_variance >= 0.0
        assert metrics.avg_shortest_path <= metrics.diameter + 1e-12
        assert all(np.isfinite(v) for v in metrics.as_dict().values())

    @given(small_circuits())
    @settings(max_examples=30, deadline=None)
    def test_adjacency_matrix_total(self, circuit):
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.adjacency_matrix().sum() == pytest.approx(
            2 * graph.total_weight
        )


class TestLayoutProperties:
    @given(
        st.integers(1, 5),
        st.integers(5, 8),
        st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_swaps_preserve_bijection(self, num_virtual, num_physical, swaps):
        layout = Layout.trivial(num_virtual, num_physical)
        for a, b in swaps:
            a %= num_physical
            b %= num_physical
            if a != b:
                layout.swap_physical(a, b)
        images = [layout.physical(v) for v in range(num_virtual)]
        assert len(set(images)) == num_virtual
        for v in range(num_virtual):
            assert layout.virtual(layout.physical(v)) == v


class TestCompilationProperties:
    @given(small_circuits(max_qubits=3, max_gates=10))
    @settings(max_examples=15, deadline=None)
    def test_decomposition_preserves_unitary(self, circuit):
        for gate_set in (SURFACE17_GATESET, CNOT_GATESET):
            lowered = decompose_circuit(circuit, gate_set)
            assert circuits_equivalent(circuit, lowered)

    @given(small_circuits(max_qubits=3, max_gates=14))
    @settings(max_examples=15, deadline=None)
    def test_optimizer_preserves_unitary(self, circuit):
        optimised = optimize_circuit(circuit)
        assert len(optimised) <= len(circuit)
        assert circuits_equivalent(circuit, optimised)

    @given(small_circuits(max_qubits=4, max_gates=12), st.sampled_from([0, 1]))
    @settings(max_examples=15, deadline=None)
    def test_routing_preserves_semantics(self, circuit, which):
        device = line_device(circuit.num_qubits)
        router = (TrivialRouter(), SabreRouter(seed=0))[which]
        result = router.route(
            circuit, device, Layout.trivial(circuit.num_qubits, device.num_qubits)
        )
        for gate in result.circuit:
            if gate.is_two_qubit:
                assert device.coupling.are_adjacent(*gate.qubits)
        assert verify_mapping(
            circuit.without_directives(),
            result.circuit.without_directives(),
            result.initial_layout,
            result.final_layout,
            trials=2,
        )


class TestFidelityProperties:
    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_fidelity_bounds(self, circuit):
        fidelity = product_fidelity(circuit)
        assert 0.0 <= fidelity <= 1.0

    @given(small_circuits(max_gates=15))
    @settings(max_examples=30, deadline=None)
    def test_fidelity_monotone_under_extension(self, circuit):
        extended = circuit.copy().cz(0, 1)
        assert product_fidelity(extended) <= product_fidelity(circuit)


@st.composite
def connected_topologies(draw, min_qubits=3, max_qubits=7):
    """Random connected coupling graphs (spanning tree + extra edges)."""
    from repro.hardware import CouplingGraph

    n = draw(st.integers(min_qubits, max_qubits))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        edges.add((parent, node))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 2))
        if b >= a:
            b += 1
        edges.add((min(a, b), max(a, b)))
    return CouplingGraph(n, sorted(edges))


class TestRoutingOnRandomTopologies:
    @given(connected_topologies(), small_circuits(max_qubits=3, max_gates=10))
    @settings(max_examples=15, deadline=None)
    def test_routing_any_connected_chip(self, coupling, circuit):
        from repro.hardware import CNOT_GATESET, Device, SURFACE17_CALIBRATION

        device = Device(coupling, SURFACE17_CALIBRATION, CNOT_GATESET)
        if circuit.num_qubits > device.num_qubits:
            return
        layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
        for router in (TrivialRouter(), SabreRouter(seed=0)):
            result = router.route(circuit, device, layout)
            for gate in result.circuit:
                if gate.is_two_qubit:
                    assert coupling.are_adjacent(*gate.qubits)
            assert verify_mapping(
                circuit.without_directives(),
                result.circuit.without_directives(),
                result.initial_layout,
                result.final_layout,
                trials=2,
            )
