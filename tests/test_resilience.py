"""The fault-tolerant execution layer.

Pins the contracts of ``repro.resilience``: cooperative deadlines
threaded into the routers, seeded deterministic retry backoff, the
``sabre -> sabre(reduced) -> trivial`` degradation chain, the crash-safe
journal with byte-identical resume, and the seeded fault-injection
harness whose plans replay identically at every worker count.
"""

import json
import pickle

import pytest

from repro.circuit import Circuit
from repro.compiler import sabre_mapper, trivial_mapper
from repro.compiler.layout import Layout
from repro.compiler.routing import SabreRouter, TrivialRouter
from repro.hardware import surface17_device
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    JournalError,
    ResilienceConfig,
    ResilienceExhausted,
    RetryPolicy,
    SuiteJournal,
    default_degradation_chain,
    map_with_resilience,
)
from repro.resilience.journal import decode_record, encode_record
from repro.resilience.policy import DegradationStep
from repro.runtime import run_suite_parallel
from repro.workloads import small_suite


def _line_circuit(n=5):
    circuit = Circuit(n)
    circuit.h(0)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    # A non-adjacent tail so routing has actual work to do.
    circuit.cx(0, n - 1)
    return circuit


class TestDeadline:
    def test_fresh_deadline_passes_checks(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert deadline.remaining_s > 0
        deadline.check("route.sabre")  # no raise

    def test_expired_deadline_raises_with_stage(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("route.sabre")
        assert excinfo.value.stage == "route.sabre"

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_s(3, 1) == policy.backoff_s(3, 1)
        assert policy.backoff_s(3, 1) != policy.backoff_s(3, 2)

    def test_backoff_bounded(self):
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=0.05)
        for attempt in range(8):
            delay = policy.backoff_s(0, attempt)
            assert 0.0 <= delay <= 0.05

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestDegradationChain:
    def test_sabre_chain_shape(self):
        chain = default_degradation_chain(sabre_mapper())
        assert [step.name for step in chain] == [
            "sabre",
            "sabre-reduced",
            "trivial",
        ]
        reduced = chain[1].mapper.router
        assert isinstance(reduced, SabreRouter)
        assert reduced.lookahead_size <= 4
        assert reduced.seed == chain[0].mapper.router.seed
        assert isinstance(chain[2].mapper.router, TrivialRouter)

    def test_trivial_chain_is_single_terminal_step(self):
        chain = default_degradation_chain(trivial_mapper())
        assert [step.name for step in chain] == ["trivial"]


class TestDeadlineThreading:
    def test_router_checks_deadline_on_entry(self):
        circuit = _line_circuit()
        device = surface17_device()
        layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
        with pytest.raises(DeadlineExceeded) as excinfo:
            SabreRouter().route(
                circuit, device, layout, deadline=Deadline.after(0.0)
            )
        assert excinfo.value.stage.startswith("route.")

    def test_route_without_deadline_is_unchanged(self):
        circuit = _line_circuit()
        device = surface17_device()
        layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
        with_kwarg = SabreRouter().route(
            circuit, device, layout.copy(), deadline=None
        )
        without = SabreRouter().route(circuit, device, layout.copy())
        assert pickle.dumps(with_kwarg) == pickle.dumps(without)

    def test_deadline_expiry_degrades_to_trivial_same_verdict(self):
        # The ISSUE's acceptance test: a deadline expiring mid-SABRE must
        # fall down the chain to the trivial router and still produce a
        # verified-correct mapping — the same verdict a direct trivial
        # map gives.
        circuit = Circuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3)
        device = surface17_device()
        config = ResilienceConfig(deadline_s=0.0)
        result, info = map_with_resilience(
            circuit, device, sabre_mapper(), config
        )
        assert info.deadline_expired and info.degraded
        assert info.steps == ("sabre", "sabre-reduced", "trivial")
        assert info.router == "trivial"
        direct = trivial_mapper().map(circuit, device)
        assert result.verify() is True
        assert result.verify() == direct.verify()
        assert result.swap_count == direct.swap_count
        assert pickle.dumps(result.mapped) == pickle.dumps(direct.mapped)


class TestEngine:
    def test_transient_fault_is_retried(self):
        circuit = _line_circuit()
        device = surface17_device()
        config = ResilienceConfig(faults=FaultPlan.parse("raise@0"))
        result, info = map_with_resilience(
            circuit, device, sabre_mapper(), config, circuit_index=0
        )
        assert info.attempts == 2 and info.retries == 1
        assert info.faults_injected == 1
        assert not info.degraded
        assert info.router == "sabre"
        assert info.backoff_total_s > 0.0
        assert any("InjectedFault" in error for error in info.errors)
        # The retry maps with a pristine mapper clone, so the record is
        # identical to a clean first attempt.
        clean, _ = map_with_resilience(
            circuit, device, sabre_mapper(), ResilienceConfig(deadline_s=60.0)
        )
        assert pickle.dumps(result.mapped) == pickle.dumps(clean.mapped)

    def test_exhaustion_raises_with_annotations(self):
        circuit = _line_circuit()
        device = surface17_device()
        config = ResilienceConfig(
            chain=(DegradationStep("sabre", sabre_mapper()),),
            policy=RetryPolicy(attempts=2, base_backoff_s=0.0),
            faults=FaultPlan.parse("raise@0x99"),
        )
        with pytest.raises(ResilienceExhausted) as excinfo:
            map_with_resilience(circuit, device, sabre_mapper(), config)
        info = excinfo.value.info
        assert info.attempts == 2 and info.retries == 1
        assert info.steps == ("sabre",)
        assert len(info.errors) == 2

    def test_info_dict_round_trip(self):
        circuit = _line_circuit()
        device = surface17_device()
        _, info = map_with_resilience(
            circuit, device, sabre_mapper(), ResilienceConfig(deadline_s=60.0)
        )
        from repro.resilience import ResilienceInfo

        assert ResilienceInfo.from_dict(info.to_dict()) == info


class TestFaultPlan:
    def test_parse_spec_string(self):
        plan = FaultPlan.parse("raise@1,sleep@2,kill@3x2,corrupt-journal@4")
        assert plan.specs == (
            FaultSpec("raise", 1, "map", 1),
            FaultSpec("sleep", 2, "map", 1),
            FaultSpec("kill", 3, "map", 2),
            FaultSpec("corrupt-journal", 4, "journal", 1),
        )
        assert "kill@3:mapx2" in plan.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode@1")

    def test_matching_is_exact(self):
        plan = FaultPlan.parse("raise@1x2")
        assert plan.planned(1, "map", 0) and plan.planned(1, "map", 1)
        assert not plan.planned(1, "map", 2)  # only the first N attempts
        assert not plan.planned(2, "map", 0)
        assert not plan.planned(1, "journal", 0)

    def test_fire_raise(self):
        with pytest.raises(InjectedFault):
            FaultPlan.parse("raise@0").fire(0, "map", 0)

    def test_kill_downgrades_to_raise_in_parent(self):
        # In the parent process a kill fault must not SIGKILL the test
        # runner; it degrades to a retryable raise so annotations match
        # at every worker count.
        with pytest.raises(InjectedFault, match="downgraded"):
            FaultPlan.parse("kill@0").fire(0, "map", 0)

    def test_fire_parent_crash(self, tmp_path):
        journal = SuiteJournal(tmp_path / "j.jsonl")
        journal.start({"suite": [], "mapper": "m", "device": "d"})
        journal.append({"index": 0, "name": "c0", "status": "ok"})
        with pytest.raises(InjectedCrash):
            FaultPlan.parse("corrupt-journal@0").fire_parent(0, journal)
        # The tail was torn before the crash: the last line is unparsable.
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[-1])


class TestJournal:
    def _start(self, tmp_path):
        journal = SuiteJournal(tmp_path / "run.jsonl")
        journal.start({"suite": ["a", "b"], "mapper": "m", "device": "d"})
        return journal

    def test_round_trip(self, tmp_path):
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a", "status": "ok"})
        journal.append({"index": 1, "name": "b", "status": "failed"})
        state = SuiteJournal.load(journal.path)
        assert state.header["mapper"] == "m"
        assert state.dropped_lines == 0
        assert sorted(state.by_index()) == [0, 1]
        assert state.by_index()[1]["status"] == "failed"

    def test_every_append_leaves_a_parsable_file(self, tmp_path):
        journal = self._start(tmp_path)
        for index in range(5):
            journal.append({"index": index, "name": str(index)})
            for line in journal.path.read_text().splitlines():
                json.loads(line)  # atomic replace: never a torn line

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a"})
        journal.append({"index": 1, "name": "b"})
        journal.corrupt_tail()
        state = SuiteJournal.load(journal.path)
        assert sorted(state.by_index()) == [0]
        assert state.dropped_lines >= 1

    def test_resume_rewrites_without_torn_tail(self, tmp_path):
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a"})
        journal.append({"index": 1, "name": "b"})
        journal.corrupt_tail()
        resumed = SuiteJournal(journal.path)
        state = resumed.resume_from()
        assert sorted(state.by_index()) == [0]
        resumed.append({"index": 1, "name": "b", "status": "ok"})
        reloaded = SuiteJournal.load(journal.path)
        assert reloaded.dropped_lines == 0
        assert sorted(reloaded.by_index()) == [0, 1]

    def test_blank_line_truncates_like_a_tear(self, tmp_path):
        # A blank line cannot come from the (one JSON object per line)
        # writer, so it marks a tear: entries past it have unknowable
        # provenance and must be dropped, not silently kept.
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a"})
        journal.append({"index": 1, "name": "b"})
        lines = journal.path.read_text().splitlines()
        journal.path.write_text(
            "\n".join([lines[0], lines[1], "", lines[2]]) + "\n"
        )
        state = SuiteJournal.load(journal.path)
        assert sorted(state.by_index()) == [0]
        assert state.dropped_lines == 2  # the blank line + the orphan

    def test_trailing_blank_line_counts_as_dropped(self, tmp_path):
        # An append that died right after writing the newline leaves a
        # trailing empty line; it is a (content-free) torn tail.
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a"})
        journal.path.write_text(journal.path.read_text() + "\n")
        state = SuiteJournal.load(journal.path)
        assert sorted(state.by_index()) == [0]
        assert state.dropped_lines == 1

    def test_duplicate_index_resume_is_byte_identical(self, tmp_path):
        # A crash between journaling and the runner's bookkeeping can
        # replay an index on resume.  The duplicate must collapse (later
        # line wins, first occurrence's slot) so the rewritten journal
        # is byte-identical to an uninterrupted run's.
        journal = self._start(tmp_path)
        journal.append({"index": 0, "name": "a", "status": "ok"})
        journal.append({"index": 1, "name": "b", "status": "failed"})
        retried = {"index": 1, "name": "b", "status": "ok"}
        dup_line = json.dumps({"kind": "record", **retried}, sort_keys=True)
        journal.path.write_text(
            journal.path.read_text() + dup_line + "\n" + '{"kind": "rec'
        )
        state = SuiteJournal.load(journal.path)
        assert state.dropped_lines == 1
        assert [entry["index"] for entry in state.entries] == [0, 1]
        assert state.by_index()[1]["status"] == "ok"
        resumed = SuiteJournal(journal.path)
        resumed.resume_from()
        resumed.append({"index": 2, "name": "c", "status": "ok"})
        reference = SuiteJournal(tmp_path / "ref.jsonl")
        reference.start({"suite": ["a", "b"], "mapper": "m", "device": "d"})
        reference.append({"index": 0, "name": "a", "status": "ok"})
        reference.append(retried)
        reference.append({"index": 2, "name": "c", "status": "ok"})
        assert journal.path.read_bytes() == reference.path.read_bytes()

    def test_missing_or_empty_journal_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            SuiteJournal.load(tmp_path / "nope.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalError):
            SuiteJournal.load(empty)

    def test_record_payload_round_trip(self):
        payload = {"swaps": 3, "values": (1, 2, 3)}
        assert decode_record(encode_record(payload)) == payload


class TestSuiteResilience:
    def test_defaults_are_a_strict_noop(self):
        # The no-op guarantee: with every resilience knob at its default
        # the legacy path runs and the report is bit-for-bit what the
        # pre-resilience runner produced (no annotations, no journal).
        suite = small_suite(4)
        device = surface17_device()
        legacy = run_suite_parallel(suite, device, sabre_mapper(), workers=1)
        assert legacy.resilience == [] and legacy.journal_path is None
        resilient = run_suite_parallel(
            suite, device, sabre_mapper(), workers=1, deadline_s=60.0
        )
        assert pickle.dumps(legacy.records) == pickle.dumps(resilient.records)
        assert len(resilient.resilience) == len(suite)

    def test_fault_plan_replays_identically_across_worker_counts(self):
        # The ISSUE's determinism test: the same fault plan must produce
        # byte-identical records and equal annotations at workers=1 and
        # workers=4 — an injected SIGKILL in a pool worker and its
        # in-parent downgraded raise converge on the same outcome.
        suite = small_suite(6)
        device = surface17_device()
        plan = FaultPlan.parse("raise@1,sleep@2,kill@3")
        runs = [
            run_suite_parallel(
                suite,
                device,
                sabre_mapper(),
                workers=workers,
                deadline_s=0.25,
                faults=plan,
            )
            for workers in (1, 4)
        ]
        assert pickle.dumps(runs[0].records) == pickle.dumps(runs[1].records)
        assert runs[0].resilience == runs[1].resilience
        assert not runs[0].failures and not runs[1].failures
        assert runs[0].resilience[1].retries >= 1
        assert runs[0].resilience[2].deadline_expired
        assert runs[0].resilience[3].attempts >= 2

    def test_resume_after_crash_is_byte_identical(self, tmp_path):
        # The ISSUE's resume test: kill the run mid-suite (with a torn
        # journal tail) and resume; the final records must be
        # byte-identical to an uninterrupted run's.
        suite = small_suite(5)
        device = surface17_device()
        reference = run_suite_parallel(
            suite, device, sabre_mapper(), workers=2, deadline_s=30.0
        )
        journal = tmp_path / "crash.jsonl"
        with pytest.raises(InjectedCrash):
            run_suite_parallel(
                suite,
                device,
                sabre_mapper(),
                workers=2,
                deadline_s=30.0,
                faults=FaultPlan.parse("corrupt-journal@2"),
                journal=journal,
            )
        resumed = run_suite_parallel(
            suite,
            device,
            sabre_mapper(),
            workers=2,
            deadline_s=30.0,
            journal=journal,
            resume=True,
        )
        assert resumed.resumed >= 1
        assert pickle.dumps(resumed.records) == pickle.dumps(
            reference.records
        )
        assert [r.name for r in resumed.resilience] == [
            r.name for r in reference.resilience
        ]

    def test_resume_refuses_foreign_journal(self, tmp_path):
        suite = small_suite(3)
        device = surface17_device()
        journal = tmp_path / "j.jsonl"
        run_suite_parallel(
            suite,
            device,
            sabre_mapper(),
            workers=1,
            deadline_s=30.0,
            journal=journal,
        )
        with pytest.raises(JournalError, match="different run"):
            run_suite_parallel(
                suite,
                device,
                trivial_mapper(),
                workers=1,
                deadline_s=30.0,
                journal=journal,
                resume=True,
            )

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            run_suite_parallel(small_suite(2), resume=True)

    def test_fault_counters_surface_in_telemetry(self):
        from repro import telemetry

        suite = small_suite(4)
        device = surface17_device()
        with telemetry.session() as tele:
            run_suite_parallel(
                suite,
                device,
                sabre_mapper(),
                workers=2,
                deadline_s=0.25,
                faults=FaultPlan.parse("raise@1,sleep@2"),
            )
            families = set(tele.registry.snapshot())
        assert "retries_total" in families
        assert "deadline_expired_total" in families
        assert "fallbacks_total" in families
        assert "faults_injected_total" in families


class TestSelfTest:
    def test_fault_recovery_selftest_green(self):
        from repro.resilience import fault_recovery_selftest

        checked = fault_recovery_selftest(workers=2, num_circuits=6)
        assert any("retried" in line for line in checked)
        assert any("byte-identical" in line for line in checked)


class TestRunCli:
    def test_run_journal_then_resume(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import save_suite

        corpus = tmp_path / "corpus"
        save_suite(small_suite(4), corpus)
        journal = tmp_path / "run.jsonl"
        argv = [
            "run",
            str(corpus),
            "--mapper",
            "sabre",
            "--deadline-s",
            "30",
            "--journal",
            str(journal),
            "-j",
            "1",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "mapped 4/4" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed:   4" in second
