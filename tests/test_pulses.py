"""Unit tests for the pulse-level control layer."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.compiler import asap_schedule
from repro.fullstack import (
    PulseSchedule,
    Waveform,
    compile_to_pulses,
    drag_envelope,
    flat_top_envelope,
    gaussian_envelope,
    square_envelope,
)


class TestEnvelopes:
    def test_gaussian_peak_and_symmetry(self):
        envelope = gaussian_envelope(20.0, 0.5)
        # the grid may not sample t=0 exactly; peak within 2%
        assert np.max(envelope) == pytest.approx(0.5, rel=0.02)
        assert np.allclose(envelope, envelope[::-1])

    def test_drag_has_quadrature(self):
        envelope = drag_envelope(20.0, 0.5, beta=0.3)
        assert np.iscomplexobj(envelope)
        assert np.abs(envelope.imag).max() > 0
        # The quadrature is the (scaled) derivative: odd symmetry.
        assert np.allclose(envelope.imag, -envelope.imag[::-1], atol=1e-12)

    def test_flat_top_plateau(self):
        envelope = flat_top_envelope(40.0, 0.5, rise_fraction=0.25)
        middle = envelope[len(envelope) // 2]
        assert middle == pytest.approx(0.5)
        assert envelope[0] == pytest.approx(0.0, abs=1e-9)

    def test_flat_top_rise_validated(self):
        with pytest.raises(ValueError):
            flat_top_envelope(40.0, 0.5, rise_fraction=0.7)

    def test_square(self):
        envelope = square_envelope(10.0, 0.3)
        assert np.all(envelope == 0.3)
        assert len(envelope) == 10

    def test_sample_rate_scales_length(self):
        assert len(gaussian_envelope(20.0, 1.0, sample_rate_gsps=2.0)) == 40


class TestWaveform:
    def test_duration(self):
        waveform = Waveform(np.ones(40), sample_rate_gsps=2.0)
        assert waveform.duration_ns == 20.0

    def test_area_and_peak(self):
        waveform = Waveform(np.full(10, 0.5))
        assert waveform.area == pytest.approx(5.0)
        assert waveform.peak == pytest.approx(0.5)


class TestCompileToPulses:
    def test_drive_flux_and_readout_channels(self):
        circuit = Circuit(2).h(0).cz(0, 1).measure(1)
        pulses = compile_to_pulses(asap_schedule(circuit))
        assert pulses.channels() == ["d0", "f0-1", "m1"]

    def test_virtual_z_emits_nothing(self):
        circuit = Circuit(1).rz(0.5, 0).s(0).t(0).z(0)
        pulses = compile_to_pulses(asap_schedule(circuit))
        assert pulses.num_pulses == 0

    def test_pulse_timing_follows_schedule(self):
        circuit = Circuit(2).h(0).cz(0, 1)
        schedule = asap_schedule(circuit)
        pulses = compile_to_pulses(schedule)
        flux = pulses.pulses_on("f0-1")[0]
        assert flux.start_ns == pytest.approx(20.0)
        assert pulses.duration_ns == pytest.approx(schedule.latency_ns)

    def test_no_collisions_on_valid_schedule(self):
        circuit = Circuit(3).h(0).h(1).cz(0, 1).rx(0.3, 2).cz(1, 2).measure_all()
        pulses = compile_to_pulses(asap_schedule(circuit))
        assert not pulses.has_collisions()

    def test_amplitude_scales_with_angle(self):
        small = compile_to_pulses(asap_schedule(Circuit(1).rx(0.2, 0)))
        large = compile_to_pulses(asap_schedule(Circuit(1).rx(2.8, 0)))
        assert small.pulses[0].waveform.peak < large.pulses[0].waveform.peak

    def test_x_gate_is_pi_amplitude(self):
        pulses = compile_to_pulses(asap_schedule(Circuit(1).x(0)))
        assert pulses.pulses[0].waveform.peak == pytest.approx(0.8, rel=0.02)

    def test_flux_channel_sorted_pair(self):
        pulses = compile_to_pulses(asap_schedule(Circuit(3).cz(2, 0)))
        assert pulses.channels() == ["f0-2"]

    def test_readout_duration(self):
        pulses = compile_to_pulses(asap_schedule(Circuit(1).measure(0)))
        assert pulses.pulses[0].waveform.duration_ns == pytest.approx(300.0)

    def test_occupancy(self):
        circuit = Circuit(1).x(0).x(0)
        pulses = compile_to_pulses(asap_schedule(circuit))
        assert pulses.channel_occupancy("d0") == pytest.approx(1.0)

    def test_total_samples_positive(self):
        circuit = Circuit(2).h(0).cz(0, 1)
        assert compile_to_pulses(asap_schedule(circuit)).total_samples() > 0

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            compile_to_pulses(asap_schedule(Circuit(1).x(0)), sample_rate_gsps=0)

    def test_barrier_skipped(self):
        pulses = compile_to_pulses(asap_schedule(Circuit(2).barrier()))
        assert pulses.num_pulses == 0

    def test_collision_detection(self):
        colliding = PulseSchedule(
            [
                # two overlapping pulses on the same channel
                compile_to_pulses(asap_schedule(Circuit(1).x(0))).pulses[0],
                compile_to_pulses(asap_schedule(Circuit(1).x(0))).pulses[0],
            ],
            1.0,
        )
        assert colliding.has_collisions()
