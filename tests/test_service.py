"""The compilation-as-a-service layer.

Pins the serving contracts of ``repro.service``: the cross-request
result cache is a bounded LRU with *exact* hit/miss/eviction counters,
cache keys change with the calibration version and the mapper, the job
queue orders by priority class with admission control at the door, and
the same request stream produces byte-identical payloads at every
worker count — including under injected worker faults.
"""

import dataclasses

import pytest

from repro.compiler.routing import (
    NoiseAwareRouter,
    SabreRouter,
    clear_distance_cache,
)
from repro.hardware import resolve_device
from repro.runtime import shm
from repro.service import (
    attach_prewarm_tables,
    publish_prewarm_tables,
)
from repro.service import (
    MAPPERS,
    PRIORITY_CLASSES,
    AdmissionError,
    CompilationService,
    CompileRequest,
    Job,
    JobQueue,
    ResultCache,
    ResultKey,
    ServiceClient,
    ServiceError,
    build_corpus,
    calibration_version,
    drive,
    generate_requests,
    result_key,
)
from repro.workloads import random_circuit

DEVICE = "surface7"


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(6, seed=3, min_qubits=4, max_qubits=6)


def _key(tag: str) -> ResultKey:
    return ResultKey(circuit=tag, device="d", calibration="c", mapper="m")


class TestResultCache:
    def test_lru_bound_under_interleaved_requests(self):
        cache = ResultCache(capacity=3)
        keys = [_key(f"c{i}") for i in range(5)]
        # Interleave: every insert touches an older key in between, so
        # recency (not insertion order) decides who survives.
        cache.put(keys[0], b"0")
        cache.put(keys[1], b"1")
        cache.put(keys[2], b"2")
        assert cache.get(keys[0]) == b"0"  # refresh 0 -> LRU is now 1
        cache.put(keys[3], b"3")  # evicts 1
        assert len(cache) == 3
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == b"0"  # refreshed entry survived
        cache.put(keys[4], b"4")  # evicts 2 (oldest untouched)
        assert len(cache) == 3
        assert cache.get(keys[2]) is None
        assert cache.get(keys[3]) == b"3"
        assert len(cache) <= 3

    def test_exact_hit_miss_eviction_counters(self):
        cache = ResultCache(capacity=2)
        a, b, c = _key("a"), _key("b"), _key("c")
        assert cache.get(a) is None  # miss 1
        cache.put(a, b"A")
        assert cache.get(a) == b"A"  # hit 1
        assert cache.get(b) is None  # miss 2
        cache.put(b, b"B")
        cache.put(c, b"C")  # evicts a
        assert cache.get(a) is None  # miss 3
        assert cache.get(c) == b"C"  # hit 2
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 5)
        assert stats["size"] == 2

    def test_first_write_wins(self):
        cache = ResultCache(capacity=2)
        key = _key("dup")
        cache.put(key, b"first")
        cache.put(key, b"second")  # byte-identical by contract; dropped
        assert cache.get(key) == b"first"
        assert cache.evictions == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=0)


class TestResultKeyContract:
    def test_calibration_update_changes_key(self):
        device = resolve_device(DEVICE)
        circuit = random_circuit(4, 20, 0.5, seed=1)
        before = result_key(circuit, DEVICE, device, "sabre")
        updated = dataclasses.replace(
            device, calibration=dataclasses.replace(
                device.calibration, two_qubit_error=0.05
            )
        )
        after = result_key(circuit, DEVICE, updated, "sabre")
        assert before.calibration != after.calibration
        assert before != after

    def test_mapper_is_part_of_the_key(self):
        device = resolve_device(DEVICE)
        circuit = random_circuit(4, 20, 0.5, seed=1)
        keys = {
            result_key(circuit, DEVICE, device, mapper) for mapper in MAPPERS
        }
        assert len(keys) == len(MAPPERS)

    def test_key_is_a_pure_function_of_its_inputs(self):
        device = resolve_device(DEVICE)
        circuit = random_circuit(4, 20, 0.5, seed=1)
        clone = random_circuit(4, 20, 0.5, seed=1)
        assert result_key(circuit, DEVICE, device, "sabre") == result_key(
            clone, DEVICE, resolve_device(DEVICE), "sabre"
        )

    def test_calibration_version_is_stable(self):
        device = resolve_device(DEVICE)
        assert calibration_version(device.calibration) == calibration_version(
            resolve_device(DEVICE).calibration
        )


def _job(seq: int, priority: str, circuit) -> Job:
    request = CompileRequest(
        circuit=circuit, device=DEVICE, priority=priority
    )
    return Job(seq, request, _key(f"q{seq}"))


class TestJobQueue:
    def test_priority_order_then_fifo(self, corpus):
        queue = JobQueue()
        for seq, priority in enumerate(
            ["bulk", "batch", "interactive", "batch", "bulk"]
        ):
            queue.push(_job(seq, priority, corpus[0]))
        order = [queue.pop(timeout=0.1).seq for _ in range(5)]
        assert order == [2, 1, 3, 0, 4]
        assert queue.pop(timeout=0.01) is None

    def test_class_admission_limit(self, corpus):
        queue = JobQueue(class_limits={"interactive": 2})
        queue.push(_job(1, "interactive", corpus[0]))
        queue.push(_job(2, "interactive", corpus[0]))
        with pytest.raises(AdmissionError, match="interactive"):
            queue.push(_job(3, "interactive", corpus[0]))
        # Other classes are unaffected by one class being full.
        queue.push(_job(4, "bulk", corpus[0]))
        assert queue.depth("interactive") == 2
        assert queue.depth() == 3

    def test_max_depth_caps_the_whole_queue(self, corpus):
        queue = JobQueue(max_depth=2)
        queue.push(_job(1, "interactive", corpus[0]))
        queue.push(_job(2, "bulk", corpus[0]))
        with pytest.raises(AdmissionError, match="queue full"):
            queue.push(_job(3, "batch", corpus[0]))

    def test_closed_queue_rejects(self, corpus):
        queue = JobQueue()
        queue.close()
        with pytest.raises(AdmissionError, match="shut down"):
            queue.push(_job(1, "batch", corpus[0]))

    def test_unknown_class_limit_rejected(self):
        with pytest.raises(ValueError, match="unknown priority"):
            JobQueue(class_limits={"express": 1})


class TestRequestValidation:
    def test_unknown_priority(self, corpus):
        with pytest.raises(ServiceError, match="unknown priority"):
            CompileRequest(circuit=corpus[0], priority="express").validate()

    def test_unknown_mapper(self, corpus):
        with pytest.raises(ServiceError, match="unknown mapper"):
            CompileRequest(circuit=corpus[0], mapper="magic").validate()

    def test_unknown_device_rejected_at_submit(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            with pytest.raises(ServiceError, match="device"):
                service.submit(
                    CompileRequest(circuit=corpus[0], device="hexagon99")
                )

    def test_priority_classes_are_ranked_best_first(self):
        assert PRIORITY_CLASSES == ("interactive", "batch", "bulk")


class TestInlineService:
    def test_repeat_request_is_a_byte_identical_cache_hit(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            client = ServiceClient(service)
            first = client.compile(corpus[0], device=DEVICE)
            second = client.compile(corpus[0], device=DEVICE)
        assert not first.cached and first.served_by == "inline"
        assert second.cached and second.served_by == "cache"
        assert first.payload == second.payload
        assert service.cache.hits == 1
        assert service.cache.misses == 1

    def test_counters_are_exact_over_a_stream(self, corpus):
        requests = generate_requests(corpus, 24, seed=5, device=DEVICE)
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            report = drive(service, requests, wave_size=6)
        cache = report.stats["cache"]
        assert cache["hits"] + cache["misses"] == 24
        assert report.stats["requests"] == 24
        assert report.stats["failed"] == 0
        assert len(report.latencies_s) == 24

    def test_eviction_counter_under_a_tiny_cache(self, corpus):
        # Capacity 2 over 6 distinct circuits: evictions must happen and
        # be counted, and the cache never grows past its bound.
        with CompilationService(
            workers=0, devices=(DEVICE,), cache_capacity=2
        ) as service:
            client = ServiceClient(service)
            for circuit in corpus:
                client.compile(circuit, device=DEVICE)
            assert len(service.cache) <= 2
            assert service.cache.evictions == len(corpus) - 2

    def test_response_record_roundtrip(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            response = ServiceClient(service).compile(corpus[0], device=DEVICE)
        body = response.to_dict()
        record = response.record()
        assert body["swap_count"] == record.swap_count
        assert body["depth_after"] == record.depth_after
        assert body["key"]["device"] == DEVICE
        assert body["key"]["circuit"] == corpus[0].content_hash()

    def test_submit_after_stop_rejected(self, corpus):
        service = CompilationService(workers=0, devices=(DEVICE,))
        service.start()
        service.stop()
        with pytest.raises(ServiceError, match="not running"):
            service.submit(CompileRequest(circuit=corpus[0], device=DEVICE))


class TestWorkerPoolService:
    def test_workers_1_vs_4_byte_identical_payloads(self, corpus):
        requests = generate_requests(corpus, 12, seed=9, device=DEVICE)
        streams = {}
        for workers in (1, 4):
            with CompilationService(
                workers=workers, devices=(DEVICE,)
            ) as service:
                responses = ServiceClient(service).compile_many(
                    requests, timeout=120.0
                )
            streams[workers] = [response.payload for response in responses]
        assert streams[1] == streams[4]

    def test_pooled_matches_inline_payloads(self, corpus):
        requests = generate_requests(corpus, 8, seed=13, device=DEVICE)
        with CompilationService(workers=2, devices=(DEVICE,)) as service:
            pooled = [
                r.payload
                for r in ServiceClient(service).compile_many(
                    requests, timeout=120.0
                )
            ]
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            inline = [
                r.payload
                for r in ServiceClient(service).compile_many(
                    requests, timeout=120.0
                )
            ]
        assert pooled == inline

    def test_identical_inflight_requests_compute_once(self, corpus):
        # Two identical requests in one batch: the second either rides
        # the in-flight compute (coalesced) or hits the cache — either
        # way exactly one compute happens and the bytes match.
        with CompilationService(workers=1, devices=(DEVICE,)) as service:
            responses = ServiceClient(service).compile_many(
                [
                    CompileRequest(circuit=corpus[0], device=DEVICE),
                    CompileRequest(circuit=corpus[0], device=DEVICE),
                ],
                timeout=120.0,
            )
            assert responses[0].payload == responses[1].payload
            assert service.coalesced_total + service.cache.hits == 1
            assert service.cache.misses + service.cache.hits == 2

    def test_kill_fault_is_recovered_with_identical_bytes(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(corpus[1], device=DEVICE)
        with CompilationService(workers=1, devices=(DEVICE,)) as service:
            client = ServiceClient(service)
            faulted = client.compile(
                corpus[1],
                device=DEVICE,
                priority="interactive",
                faults="kill@0",
                timeout=120.0,
            )
            assert service.recovered_total == 1
            # The respawned worker serves follow-up requests.
            follow_up = client.compile(corpus[2], device=DEVICE, timeout=120.0)
        assert faulted.served_by == "recovery"
        assert faulted.payload == clean.payload
        assert follow_up.served_by.startswith("worker-")

    def test_raise_fault_retried_inside_the_worker(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(corpus[3], device=DEVICE)
        with CompilationService(workers=1, devices=(DEVICE,)) as service:
            faulted = ServiceClient(service).compile(
                corpus[3], device=DEVICE, faults="raise@0", timeout=120.0
            )
            # The retry happened inside the worker: no crash recovery.
            assert service.recovered_total == 0
        assert faulted.payload == clean.payload


class TestZeroCopyService:
    def test_zero_copy_matches_inline_payloads(self, corpus):
        requests = generate_requests(corpus, 8, seed=21, device=DEVICE)
        with CompilationService(
            workers=2, devices=(DEVICE,), zero_copy=True
        ) as service:
            pooled = [
                r.payload
                for r in ServiceClient(service).compile_many(
                    requests, timeout=120.0
                )
            ]
            stats = service.stats()
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            inline = [
                r.payload
                for r in ServiceClient(service).compile_many(
                    requests, timeout=120.0
                )
            ]
        assert pooled == inline
        assert stats["zero_copy"] is True
        assert stats["dispatch_bytes"] > 0
        # stop() released every prewarm segment the parent published.
        assert not shm.created_segments()

    def test_zero_copy_off_by_default_and_inline(self, corpus):
        with CompilationService(workers=1, devices=(DEVICE,)) as service:
            assert service.stats()["zero_copy"] is False
        with CompilationService(
            workers=0, devices=(DEVICE,), zero_copy=True
        ) as service:
            # No worker processes: nothing to prewarm over shm.
            assert service.stats()["zero_copy"] is False
            ServiceClient(service).compile(corpus[0], device=DEVICE)
        assert not shm.created_segments()

    def test_zero_copy_kill_fault_recovered(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(corpus[4], device=DEVICE)
        with CompilationService(
            workers=1, devices=(DEVICE,), zero_copy=True
        ) as service:
            faulted = ServiceClient(service).compile(
                corpus[4],
                device=DEVICE,
                faults="kill@0",
                timeout=120.0,
            )
            assert service.recovered_total == 1
        assert faulted.served_by == "recovery"
        assert faulted.payload == clean.payload
        assert not shm.created_segments()

    def test_prewarm_tables_roundtrip(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        device = resolve_device(DEVICE)
        tables, segments = publish_prewarm_tables({DEVICE: device})
        try:
            assert set(tables[DEVICE]) == {
                "hop", "noise", "incident", "calibration",
            }
            # The calibration blob shares the incident table's segment,
            # so the segment count stays at three.
            assert len(segments) == 3
            # A cold process would seed all three caches from the
            # attached views; simulate that by clearing ours first.
            clear_distance_cache()
            assert attach_prewarm_tables({DEVICE: device}, tables) == 1
            hop = SabreRouter()._distance_matrix(device)
            noise = NoiseAwareRouter()._distance_matrix(device)
            # The cache serves the seeded read-only shm views, not a
            # locally rebuilt table.
            assert not hop.flags.writeable and not hop.flags.owndata
            assert not noise.flags.writeable
            # First build wins: re-attaching leaves the cached views
            # in place instead of swapping tables mid-flight.
            assert attach_prewarm_tables({DEVICE: device}, tables) == 1
            assert SabreRouter()._distance_matrix(device) is hop
        finally:
            clear_distance_cache()  # drop views into soon-dead segments
            for name in segments:
                shm.release(name)
        assert not shm.created_segments()

    def test_attach_skips_vanished_segments(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        device = resolve_device(DEVICE)
        tables, segments = publish_prewarm_tables({DEVICE: device})
        for name in segments:
            shm.release(name)
        clear_distance_cache()
        # Every segment is gone: attach degrades to "seed nothing" and
        # the caller rebuilds locally — never an exception.
        assert attach_prewarm_tables({DEVICE: device}, tables) == 0
        assert SabreRouter()._distance_matrix(device).flags.owndata


class TestLoadgen:
    def test_streams_are_seeded_and_reproducible(self, corpus):
        first = generate_requests(corpus, 10, seed=21, device=DEVICE)
        second = generate_requests(corpus, 10, seed=21, device=DEVICE)
        assert [r.circuit.content_hash() for r in first] == [
            r.circuit.content_hash() for r in second
        ]
        assert [r.priority for r in first] == [r.priority for r in second]

    def test_faulted_request_is_pinned_interactive(self, corpus):
        requests = generate_requests(
            corpus, 10, seed=21, device=DEVICE, fault_at=4, fault="kill@0"
        )
        assert requests[4].faults == "kill@0"
        assert requests[4].priority == "interactive"
        assert all(not r.faults for i, r in enumerate(requests) if i != 4)
