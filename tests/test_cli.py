"""Tests for the command-line interface."""

import pytest

from repro.circuit import to_qasm
from repro.cli import build_parser, main
from repro.workloads import ghz_state, qft


@pytest.fixture()
def qasm_file(tmp_path):
    path = tmp_path / "ghz4.qasm"
    path.write_text(to_qasm(ghz_state(4)))
    return str(path)


class TestProfileCommand:
    def test_profile_output(self, qasm_file, capsys):
        assert main(["profile", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "ghz4" in out
        assert "difficulty" in out

    def test_multiple_files(self, qasm_file, tmp_path, capsys):
        other = tmp_path / "qft3.qasm"
        other.write_text(to_qasm(qft(3)))
        assert main(["profile", qasm_file, str(other)]) == 0
        out = capsys.readouterr().out
        assert "ghz4" in out and "qft3" in out

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["profile", "/does/not/exist.qasm"])


class TestMapCommand:
    def test_map_default(self, qasm_file, capsys):
        assert main(["map", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "mapper:" in out
        assert "swaps:" in out
        assert "fidelity:" in out

    def test_map_with_verify_and_draw(self, qasm_file, capsys):
        assert main(
            ["map", qasm_file, "--device", "surface7", "--verify", "--draw"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified:      True" in out
        assert "●" in out  # drawn circuit

    def test_map_trivial(self, qasm_file, capsys):
        assert main(["map", qasm_file, "--mapper", "trivial"]) == 0
        assert "trivial" in capsys.readouterr().out

    def test_map_advisor(self, qasm_file, capsys):
        assert main(["map", qasm_file, "--mapper", "advisor"]) == 0
        assert "advisor: difficulty" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "device", ["surface7", "surface100", "line:8", "grid:3x3", "surface:30"]
    )
    def test_device_specs(self, qasm_file, device, capsys):
        assert main(["map", qasm_file, "--device", device]) == 0

    def test_unknown_device(self, qasm_file):
        with pytest.raises(SystemExit, match="unknown device"):
            main(["map", qasm_file, "--device", "mystery"])


class TestSuiteCommand:
    def test_generate_corpus(self, tmp_path, capsys):
        target = tmp_path / "corpus"
        assert main(
            ["suite", str(target), "--num", "5", "--max-qubits", "8",
             "--max-gates", "60"]
        ) == 0
        assert "wrote 5 circuits" in capsys.readouterr().out
        from repro.workloads import load_suite

        assert len(load_suite(target)) == 5

    def test_workers_flag_matches_serial(self, tmp_path, capsys):
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        base = ["--num", "4", "--max-qubits", "6", "--max-gates", "40"]
        assert main(["suite", str(serial)] + base + ["--workers", "1"]) == 0
        assert main(["suite", str(pooled)] + base + ["--workers", "2"]) == 0
        serial_files = sorted(p.name for p in serial.iterdir())
        assert serial_files == sorted(p.name for p in pooled.iterdir())
        for name in serial_files:
            assert (serial / name).read_bytes() == (pooled / name).read_bytes()


class TestFuzzCommand:
    def test_green_block_exits_zero(self, tmp_path, capsys):
        assert main(
            ["fuzz", "--samples", "16", "--seed", "2022",
             "--out", str(tmp_path / "fuzz")]
        ) == 0
        out = capsys.readouterr().out
        assert "16 samples, 0 failure(s)" in out
        assert "sabre_twin" in out
        # Green runs leave no reproducer directory behind.
        assert not (tmp_path / "fuzz").exists()

    def test_self_test_flag(self, capsys):
        assert main(
            ["fuzz", "--samples", "4", "--self-test"]
        ) == 0
        out = capsys.readouterr().out
        assert "planted bug found and shrunk" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_flag(self):
        args = build_parser().parse_args(["reproduce", "--full"])
        assert args.full is True


class TestReportCommand:
    def test_corpus_to_report(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(
            ["suite", str(corpus), "--num", "4", "--max-qubits", "8",
             "--max-gates", "50"]
        ) == 0
        output = tmp_path / "report.md"
        csv_path = tmp_path / "records.csv"
        assert main(
            [
                "report",
                str(corpus),
                "--device",
                "surface17",
                "-o",
                str(output),
                "--csv",
                str(csv_path),
            ]
        ) == 0
        text = output.read_text()
        assert text.startswith("# Mapping report")
        assert "## Headline" in text
        assert "## Per benchmark family" in text
        assert csv_path.is_file()

    def test_report_to_stdout(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["suite", str(corpus), "--num", "3", "--max-qubits", "6",
              "--max-gates", "40"])
        capsys.readouterr()
        assert main(["report", str(corpus), "--device", "surface17"]) == 0
        out = capsys.readouterr().out
        assert "# Mapping report" in out
