"""Unit tests for layouts and placement passes."""

import pytest

from repro.circuit import Circuit
from repro.compiler import (
    GraphSimilarityPlacement,
    Layout,
    LayoutError,
    NoiseAwarePlacement,
    RandomPlacement,
    TrivialPlacement,
)
from repro.hardware import line_device, surface7_device


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3, 5)
        assert layout.as_dict() == {0: 0, 1: 1, 2: 2}
        assert layout.virtual(0) == 0
        assert layout.is_free(4)

    def test_explicit_mapping(self):
        layout = Layout(2, 4, {0: 3, 1: 1})
        assert layout.physical(0) == 3
        assert layout.virtual(3) == 0
        assert layout.virtual(0) is None

    def test_too_many_virtual(self):
        with pytest.raises(LayoutError, match="do not fit"):
            Layout(5, 3)

    def test_non_injective_rejected(self):
        with pytest.raises(LayoutError, match="injective"):
            Layout(2, 4, {0: 1, 1: 1})

    def test_incomplete_assignment_rejected(self):
        with pytest.raises(LayoutError):
            Layout(2, 4, {0: 1})

    def test_physical_out_of_range_rejected(self):
        with pytest.raises(LayoutError):
            Layout(1, 2, {0: 5})

    def test_swap_physical_assigned_pair(self):
        layout = Layout.trivial(2, 3)
        layout.swap_physical(0, 1)
        assert layout.as_dict() == {0: 1, 1: 0}

    def test_swap_physical_with_free(self):
        layout = Layout.trivial(1, 3)
        layout.swap_physical(0, 2)
        assert layout.physical(0) == 2
        assert layout.is_free(0)

    def test_swap_is_involution(self):
        layout = Layout.trivial(3, 5)
        layout.swap_physical(1, 4)
        layout.swap_physical(1, 4)
        assert layout == Layout.trivial(3, 5)

    def test_copy_independent(self):
        layout = Layout.trivial(2, 3)
        clone = layout.copy()
        clone.swap_physical(0, 1)
        assert layout.physical(0) == 0

    def test_lookup_bounds(self):
        layout = Layout.trivial(2, 3)
        with pytest.raises(LayoutError):
            layout.physical(7)
        with pytest.raises(LayoutError):
            layout.virtual(7)
        with pytest.raises(LayoutError):
            layout.swap_physical(0, 9)


class TestTrivialPlacement:
    def test_identity(self, dev7):
        circuit = Circuit(4).cx(0, 1)
        layout = TrivialPlacement().place(circuit, dev7)
        assert layout.as_dict() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_does_not_fit(self, dev7):
        with pytest.raises(LayoutError, match="does not fit"):
            TrivialPlacement().place(Circuit(9), dev7)


class TestRandomPlacement:
    def test_valid_and_seeded(self, dev7):
        circuit = Circuit(5)
        a = RandomPlacement(seed=3).place(circuit, dev7)
        b = RandomPlacement(seed=3).place(circuit, dev7)
        assert a.as_dict() == b.as_dict()
        images = list(a.as_dict().values())
        assert len(set(images)) == 5

    def test_different_seeds_usually_differ(self, dev7):
        a = RandomPlacement(seed=1).place(Circuit(6), dev7)
        b = RandomPlacement(seed=2).place(Circuit(6), dev7)
        assert a.as_dict() != b.as_dict()


class TestGraphSimilarityPlacement:
    def test_heavy_pair_placed_adjacent(self, dev7):
        # One dominating interaction: its endpoints must share an edge.
        circuit = Circuit(4)
        for _ in range(10):
            circuit.cx(0, 1)
        circuit.cx(2, 3)
        layout = GraphSimilarityPlacement().place(circuit, dev7)
        assert dev7.coupling.are_adjacent(layout.physical(0), layout.physical(1))

    def test_chain_on_line_needs_no_swaps(self):
        device = line_device(5)
        circuit = Circuit(5)
        for q in range(4):
            circuit.cx(q, q + 1)
        layout = GraphSimilarityPlacement().place(circuit, device)
        # Chain neighbours end up adjacent on the line.
        for q in range(4):
            assert device.coupling.distance(
                layout.physical(q), layout.physical(q + 1)
            ) <= 2

    def test_seed_lands_on_max_degree(self, dev7):
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        layout = GraphSimilarityPlacement().place(circuit, dev7)
        # Virtual 0 (heaviest) sits on the best-connected physical qubit (3).
        assert dev7.coupling.degree(layout.physical(0)) == 4

    def test_no_interactions_still_valid(self, dev7):
        layout = GraphSimilarityPlacement().place(Circuit(3).h(0), dev7)
        images = list(layout.as_dict().values())
        assert len(set(images)) == 3


class TestNoiseAwarePlacement:
    def test_avoids_bad_edges(self):
        device = line_device(4)
        # Poison the (0,1) edge; a single heavy interaction should avoid it.
        bad_cal = device.calibration.with_edge_error(0, 1, 0.4)
        from repro.hardware import Device

        noisy = Device(device.coupling, bad_cal, device.gate_set)
        circuit = Circuit(2)
        for _ in range(5):
            circuit.cx(0, 1)
        layout = NoiseAwarePlacement().place(circuit, noisy)
        placed_edge = frozenset(
            (layout.physical(0), layout.physical(1))
        )
        assert placed_edge != frozenset((0, 1))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            NoiseAwarePlacement(error_weight=-1)
