"""Tests for the Trotter workloads, the ASCII drawer and suite I/O."""

import math

import numpy as np
import pytest
import scipy.linalg as sla

from repro.circuit import Circuit, draw
from repro.core import InteractionGraph
from repro.sim import circuit_unitary
from repro.workloads import (
    heisenberg_chain,
    ising_chain,
    ising_grid,
    ising_ring,
    load_suite,
    save_suite,
    small_suite,
    two_local_trotter,
)

_Z = np.diag([1.0, -1.0]).astype(complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]])


def _embed(op, position, n):
    out = np.eye(1)
    for q in range(n):
        out = np.kron(out, op if q == position else np.eye(2))
    return out


def _embed2(op_a, a, op_b, b, n):
    out = np.eye(1)
    for q in range(n):
        if q == a:
            out = np.kron(out, op_a)
        elif q == b:
            out = np.kron(out, op_b)
        else:
            out = np.kron(out, np.eye(2))
    return out


class TestTrotterSemantics:
    def test_ising_single_step_approximates_exponential(self):
        n, j, h = 3, 0.08, 0.05
        circuit = ising_chain(n, steps=1, coupling=j, field=h)
        hamiltonian = sum(
            j * _embed2(_Z, q, _Z, q + 1, n) for q in range(n - 1)
        ) + sum(h * _embed(_X, q, n) for q in range(n))
        exact = sla.expm(-1j * hamiltonian)
        actual = circuit_unitary(circuit)
        overlap = np.trace(exact.conj().T @ actual)
        phase = overlap / abs(overlap)
        assert np.linalg.norm(actual - phase * exact) < 0.05

    def test_more_steps_reduce_trotter_error(self):
        n, j, h = 3, 0.3, 0.2
        hamiltonian = sum(
            j * _embed2(_Z, q, _Z, q + 1, n) for q in range(n - 1)
        ) + sum(h * _embed(_X, q, n) for q in range(n))
        exact = sla.expm(-1j * hamiltonian)

        def error(steps):
            circuit = ising_chain(n, steps=steps, coupling=j / steps, field=h / steps)
            actual = circuit_unitary(circuit)
            overlap = np.trace(exact.conj().T @ actual)
            phase = overlap / abs(overlap)
            return np.linalg.norm(actual - phase * exact)

        assert error(8) < error(1)

    def test_heisenberg_two_qubit_exact(self):
        # All three bond terms commute on a single bond: one step is exact.
        j = 0.07
        circuit = heisenberg_chain(2, steps=1, coupling=j, field=0.0)
        hamiltonian = j * (
            _embed2(_X, 0, _X, 1, 2)
            + _embed2(_Y, 0, _Y, 1, 2)
            + _embed2(_Z, 0, _Z, 1, 2)
        )
        exact = sla.expm(-1j * hamiltonian)
        actual = circuit_unitary(circuit)
        overlap = np.trace(exact.conj().T @ actual)
        phase = overlap / abs(overlap)
        assert np.linalg.norm(actual - phase * exact) < 1e-9


class TestTrotterStructure:
    def test_chain_interaction_graph(self):
        graph = InteractionGraph.from_circuit(ising_chain(6, steps=4))
        assert graph.num_edges == 5
        assert all(b - a == 1 for a, b, _ in graph.edges())
        assert all(w == 4 for _, _, w in graph.edges())

    def test_ring_interaction_graph(self):
        graph = InteractionGraph.from_circuit(ising_ring(6, steps=2))
        assert graph.num_edges == 6
        assert all(graph.degree(q) == 2 for q in range(6))

    def test_grid_interaction_graph(self):
        graph = InteractionGraph.from_circuit(ising_grid(3, 3, steps=1))
        assert graph.num_edges == 12
        assert graph.is_connected()

    def test_two_local_validation(self):
        with pytest.raises(ValueError):
            two_local_trotter(3, [(0, 0)])
        with pytest.raises(ValueError):
            two_local_trotter(3, [(0, 5)])
        with pytest.raises(ValueError):
            two_local_trotter(3, [(0, 1)], steps=0)
        with pytest.raises(ValueError):
            ising_ring(2)

    def test_z_field_emits_rz(self):
        circuit = two_local_trotter(2, [(0, 1)], z_angle=0.1)
        assert "rz" in circuit.count_ops()


class TestDrawer:
    def test_gate_labels_present(self):
        diagram = draw(Circuit(2).h(0).cx(0, 1).rz(0.5, 1).measure_all())
        assert "H" in diagram
        assert "●" in diagram and "X" in diagram
        assert "Rz(0.5)" in diagram
        assert "M" in diagram

    def test_one_line_per_wire(self):
        diagram = draw(Circuit(3).h(0))
        assert diagram.count("q0:") == 1
        assert len(diagram.splitlines()) == 5  # 3 wires + 2 gaps

    def test_connector_crosses_intermediate_wire(self):
        diagram = draw(Circuit(3).cx(0, 2))
        assert "┼" in diagram

    def test_swap_symbols(self):
        assert draw(Circuit(2).swap(0, 1)).count("x") == 2

    def test_barrier_column(self):
        assert "░" in draw(Circuit(2).h(0).barrier())

    def test_empty_register(self):
        assert draw(Circuit(0)) == "(empty register)"

    def test_wrap(self):
        circuit = Circuit(2)
        for _ in range(40):
            circuit.h(0).cx(0, 1)
        wrapped = draw(circuit, max_width=60)
        assert max(len(line) for line in wrapped.splitlines()) <= 60

    def test_moment_count_matches_columns(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1)
        diagram = draw(circuit)
        # Two moments -> the q0 wire contains exactly two cells: H then dot.
        top = diagram.splitlines()[0]
        assert "H" in top and "●" in top


class TestSuiteIo:
    def test_roundtrip(self, tmp_path):
        suite = small_suite(5)
        paths = save_suite(suite, tmp_path)
        assert len(paths) == 5
        loaded = load_suite(tmp_path)
        assert len(loaded) == 5
        for original, reloaded in zip(suite, loaded):
            assert reloaded.family == original.family
            assert reloaded.source == original.source
            assert len(reloaded.circuit) == len(original.circuit)
            assert reloaded.circuit.num_qubits == original.circuit.num_qubits

    def test_semantic_roundtrip(self, tmp_path):
        from repro.sim import circuits_equivalent

        suite = [s for s in small_suite(8) if s.circuit.num_qubits <= 6][:2]
        save_suite(suite, tmp_path)
        loaded = load_suite(tmp_path)
        for original, reloaded in zip(suite, loaded):
            assert circuits_equivalent(
                original.circuit.without_directives(),
                reloaded.circuit.without_directives(),
            )

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suite(tmp_path)

    def test_malformed_manifest(self, tmp_path):
        save_suite(small_suite(2), tmp_path)
        manifest = tmp_path / "manifest.tsv"
        manifest.write_text(manifest.read_text() + "garbage row\n")
        with pytest.raises(ValueError, match="malformed"):
            load_suite(tmp_path)

    def test_unknown_family_rejected(self, tmp_path):
        save_suite(small_suite(1), tmp_path)
        manifest = tmp_path / "manifest.tsv"
        text = manifest.read_text().replace("\trandom\t", "\tquantum\t")
        text = text.replace("\treversible\t", "\tquantum\t").replace(
            "\treal\t", "\tquantum\t"
        )
        manifest.write_text(text)
        with pytest.raises(ValueError, match="unknown family"):
            load_suite(tmp_path)

    def test_overwrite(self, tmp_path):
        save_suite(small_suite(2), tmp_path)
        save_suite(small_suite(2), tmp_path)
        assert len(load_suite(tmp_path)) == 2

    def test_parallel_save_byte_identical(self, tmp_path):
        suite = small_suite(5)
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        save_suite(suite, serial_dir, workers=1)
        save_suite(suite, pooled_dir, workers=2)
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        pooled_files = sorted(p.name for p in pooled_dir.iterdir())
        assert serial_files == pooled_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                pooled_dir / name
            ).read_bytes()
