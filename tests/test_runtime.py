"""The parallel runtime: deterministic fan-out, timing, crash recovery.

``parallel_map`` and ``run_suite_parallel`` promise byte-identical
results for ``workers=1`` and ``workers=N``, per-item error capture
that leaves the rest of the batch intact, and a serial fallback that
still returns a complete result list when a worker process is killed.
"""

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.compiler import sabre_mapper, trivial_mapper
from repro.experiments.common import run_suite
from repro.hardware import surface17_device
from repro.runtime import parallel_map, run_suite_parallel, workers_from_env
from repro.runtime import shm
from repro.runtime.batching import pack_batches
from repro.workloads import small_suite
from repro.workloads.suite import BenchmarkCircuit


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("bad payload")
    return x + 100


def _kill_worker_on_two(x):
    # Only die when running inside a pool worker — the parent-side
    # serial fallback must be able to recompute this item safely.
    if x == 2 and multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _hang_in_pool_on_one(x):
    # Unresponsive (not dead) worker: sleeps far past the hard timeout,
    # but only inside a pool worker so the parent-side recompute returns.
    if x == 1 and multiprocessing.parent_process() is not None:
        time.sleep(60)
    return x + 7


class TestParallelMap:
    def test_results_in_submission_order(self):
        result = parallel_map(_square, list(range(8)), workers=3)
        assert [o.index for o in result.outcomes] == list(range(8))
        assert result.values() == [x * x for x in range(8)]
        assert not result.fell_back

    def test_workers_one_matches_pool(self):
        serial = parallel_map(_square, list(range(6)), workers=1)
        pooled = parallel_map(_square, list(range(6)), workers=3)
        assert serial.values() == pooled.values()
        assert serial.workers == 1 and pooled.workers == 3

    def test_empty_payloads(self):
        result = parallel_map(_square, [], workers=4)
        assert result.outcomes == [] and result.values() == []

    def test_workers_clamped_to_payload_count(self):
        result = parallel_map(_square, [1, 2], workers=16)
        assert result.workers == 2

    def test_per_item_error_capture(self):
        result = parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2)
        by_index = {o.index: o for o in result.outcomes}
        assert not by_index[2].ok
        assert by_index[2].error == "ValueError: bad payload"
        assert "bad payload" in by_index[2].traceback
        assert by_index[2].value is None
        # Every other item is unaffected.
        assert result.values() == [101, 102, 104]

    def test_timings_recorded(self):
        result = parallel_map(_square, [1, 2, 3], workers=1)
        assert all(o.elapsed_s >= 0.0 for o in result.outcomes)

    def test_progress_callback(self):
        seen = []
        parallel_map(_square, [5, 6, 7], workers=1, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_killed_worker_falls_back_serially(self):
        result = parallel_map(_kill_worker_on_two, [0, 1, 2, 3, 4], workers=2)
        assert result.fell_back
        # The fallback recomputes lost items in the parent, where the
        # kill guard is inert, so the result list is still complete.
        assert result.values() == [0, 10, 20, 30, 40]
        assert [o.index for o in result.outcomes] == [0, 1, 2, 3, 4]


class TestAttemptAccounting:
    def test_direct_path_counts_one_attempt(self):
        result = parallel_map(_square, [1, 2, 3], workers=1)
        assert [o.attempts for o in result.outcomes] == [1, 1, 1]
        assert all(o.duration_s >= 0.0 for o in result.outcomes)
        assert result.recomputed == 0
        assert result.total_attempts == 3

    def test_recomputed_item_counts_lost_pool_attempt(self):
        result = parallel_map(_kill_worker_on_two, [0, 1, 2, 3], workers=2)
        by_index = {o.index: o for o in result.outcomes}
        assert by_index[2].attempts == 2
        assert result.recomputed >= 1
        assert result.total_attempts == len(result.outcomes) + result.recomputed

    def test_hard_timeout_kills_unresponsive_worker(self):
        # The hung worker never raises and never dies on its own; only
        # the item_timeout_s kill-and-recompute backstop can rescue it.
        result = parallel_map(
            _hang_in_pool_on_one, [0, 1, 2], workers=2, item_timeout_s=1.5
        )
        assert result.fell_back and result.recomputed >= 1
        assert result.values() == [7, 8, 9]
        by_index = {o.index: o for o in result.outcomes}
        assert by_index[1].attempts == 2

    def test_on_result_fires_in_submission_order(self):
        seen = []
        parallel_map(
            _kill_worker_on_two,
            [0, 1, 2, 3],
            workers=2,
            on_result=lambda o: seen.append((o.index, o.value)),
        )
        assert seen == [(0, 0), (1, 10), (2, 20), (3, 30)]


class TestWorkersFromEnv:
    def test_negative_value_warns_once(self, monkeypatch):
        from repro.runtime.parallel import _WARNED_VALUES

        monkeypatch.setenv("REPRO_WORKERS", "-7")
        _WARNED_VALUES.discard(("REPRO_WORKERS", "-7"))
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert workers_from_env(default=3) == 3
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: no warning
            assert workers_from_env(default=3) == 3

    def test_zero_value_warns_and_falls_back(self, monkeypatch):
        from repro.runtime.parallel import _WARNED_VALUES

        monkeypatch.setenv("REPRO_WORKERS", "0")
        _WARNED_VALUES.discard(("REPRO_WORKERS", "0"))
        with pytest.warns(RuntimeWarning, match="positive integer"):
            assert workers_from_env(default=5) == 5

    def test_unparsable_value_warns(self, monkeypatch):
        from repro.runtime.parallel import _WARNED_VALUES

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        _WARNED_VALUES.discard(("REPRO_WORKERS", "lots"))
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert workers_from_env() is None

    def test_valid_value_does_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert workers_from_env() == 4

    def test_parallel_map_zero_workers_warns_and_uses_default(self):
        # workers=0 used to be silently clamped to 1 (serial); it must
        # instead warn and behave exactly like workers=None.
        from repro.runtime.parallel import _WARNED_VALUES

        _WARNED_VALUES.discard(("workers", "0"))
        with pytest.warns(RuntimeWarning, match="positive integer"):
            result = parallel_map(_square, list(range(6)), workers=0)
        assert result.values() == [x * x for x in range(6)]
        # Fell back to the default (cpu count), clamped to the payload
        # count — never the silent serial clamp.
        expected = max(1, min(os.cpu_count() or 1, 6))
        assert result.workers == expected
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # warn-once: second call clean
            parallel_map(_square, [1, 2], workers=0)

    def test_parallel_map_negative_workers_warns_and_uses_default(self):
        from repro.runtime.parallel import _WARNED_VALUES

        _WARNED_VALUES.discard(("workers", "-3"))
        with pytest.warns(RuntimeWarning, match="workers='-3'"):
            result = parallel_map(_square, [1, 2, 3], workers=-3)
        assert result.values() == [1, 4, 9]


class TestSuiteRunner:
    def test_workers_one_vs_n_byte_identical(self):
        suite = small_suite(6)
        device = surface17_device()
        serial = run_suite_parallel(
            suite, device, sabre_mapper(), workers=1
        )
        pooled = run_suite_parallel(
            suite, device, sabre_mapper(), workers=3
        )
        assert pickle.dumps(serial.records) == pickle.dumps(pooled.records)
        assert not serial.fell_back and not pooled.fell_back

    def test_seeded_fuzz_suite_workers_one_vs_four_byte_identical(self):
        # Regression gate for the determinism contract on adversarial
        # inputs: a fuzz-generated suite (fixed seed block) must map to
        # byte-identical records at workers=1 and workers=4.
        from repro.fuzz import sample_block

        suite = [
            BenchmarkCircuit(s.circuit, "random", s.describe())
            for s in sample_block(2022, 16)
            if len(s.circuit) > 0
        ][:8]
        device = surface17_device()
        serial = run_suite_parallel(suite, device, sabre_mapper(), workers=1)
        pooled = run_suite_parallel(suite, device, sabre_mapper(), workers=4)
        assert pickle.dumps(serial.records) == pickle.dumps(pooled.records)
        assert serial.skipped == pooled.skipped
        assert [f.name for f in serial.failures] == [
            f.name for f in pooled.failures
        ]

    def test_report_contents(self):
        suite = small_suite(4)
        report = run_suite_parallel(
            suite, surface17_device(), trivial_mapper(), workers=2
        )
        assert len(report.records) == 4
        assert [t.name for t in report.timings] == [b.source for b in suite]
        assert report.total_circuit_time_s > 0.0
        assert report.wall_time_s > 0.0
        assert report.failures == [] and report.skipped == []

    def test_too_wide_benchmarks_skipped(self):
        device = surface17_device()
        wide = BenchmarkCircuit(Circuit(40).h(0), "random", "wide_40q")
        suite = [wide] + list(small_suite(3))
        report = run_suite_parallel(suite, device, trivial_mapper(), workers=2)
        assert report.skipped == ["wide_40q"]
        assert len(report.records) == 3

    def test_run_suite_workers_matches_serial_for_stateless_mapper(self):
        suite = small_suite(5)
        device = surface17_device()
        serial = run_suite(suite, device, trivial_mapper())
        pooled = run_suite(suite, device, trivial_mapper(), workers=2)
        assert serial == pooled

    def test_progress_reports_names(self):
        suite = small_suite(3)
        seen = []
        run_suite_parallel(
            suite,
            surface17_device(),
            trivial_mapper(),
            workers=1,
            progress=lambda i, t, name: seen.append((i, t, name)),
        )
        assert all(total == 3 for _, total, _ in seen)
        assert all(name for _, _, name in seen)


# Exits with status 7 after unlinking iff the publisher-side atexit
# sweep (shm.cleanup_all) removed exactly the one live segment, so a
# crashing publisher never strands segments in /dev/shm.
_PUBLISHER_EXIT_SCRIPT = """
import sys
from repro.runtime import shm

name, refs = shm.publish_bytes([b"payload-that-dies-with-me"])
print(name, refs[0].offset, refs[0].length, flush=True)
sys.exit(7)
"""


class TestSharedMemoryPlane:
    def test_publish_read_roundtrip(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        blobs = [b"alpha", b"", b"gamma" * 100]
        name, refs = shm.publish_bytes(blobs)
        try:
            assert [r.segment for r in refs] == [name] * 3
            # Back-to-back layout in submission order.
            assert [r.offset for r in refs] == [0, 5, 5]
            assert [shm.read_bytes(r) for r in refs] == blobs
            assert bytes(shm.read_view(refs[2])) == blobs[2]
        finally:
            assert shm.release(name)
        assert name not in shm.created_segments()

    def test_publish_array_attach_is_read_only_view(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        source = np.arange(24, dtype=np.float64).reshape(4, 6)
        ref = shm.publish_array(source)
        try:
            view = shm.attach_array(ref)
            assert view.shape == (4, 6) and view.dtype == np.float64
            assert np.array_equal(view, source)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 42.0
        finally:
            shm.release(ref.segment)

    def test_double_unlink_is_a_safe_noop(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        name, _ = shm.publish_bytes([b"once"])
        assert shm.unlink(name) is True
        assert shm.unlink(name) is False  # second unlink: no raise
        assert shm.unlink("repro-shm-never-created") is False

    def test_retain_release_refcount(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        name, _ = shm.publish_bytes([b"counted"])
        shm.retain(name)
        assert shm.release(name) is False  # one ref still held
        assert name in shm.created_segments()
        assert shm.release(name) is True  # last ref unlinks
        assert name not in shm.created_segments()
        with pytest.raises(KeyError):
            shm.retain(name)

    def test_attach_after_unlink_raises_unavailable(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        name, refs = shm.publish_bytes([b"gone soon"])
        shm.release(name)
        with pytest.raises(shm.ShmUnavailable):
            shm.read_bytes(refs[0])

    def test_cleanup_all_sweeps_owned_segments(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        before = set(shm.created_segments())
        shm.publish_bytes([b"a"])
        shm.publish_bytes([b"b"])
        assert shm.cleanup_all() >= 2
        assert set(shm.created_segments()) <= before

    def test_attach_after_publisher_death_raises(self, tmp_path):
        # A publisher process that exits without releasing relies on the
        # atexit sweep: its segment must be gone, and a later attach in
        # another process must fail cleanly with ShmUnavailable.
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        script = tmp_path / "publisher_exits.py"
        script.write_text(_PUBLISHER_EXIT_SCRIPT)
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 7, proc.stderr
        name, offset, length = proc.stdout.split()
        ref = shm.SegmentRef(name, int(offset), int(length))
        with pytest.raises(shm.ShmUnavailable):
            shm.read_bytes(ref)

    def test_zero_copy_matrix_matches_by_value(self):
        # The determinism contract across transports: identical values
        # at every worker count x batch size, zero-copy or by-value.
        payloads = list(range(12))
        baseline = parallel_map(_square, payloads, workers=1)
        for workers in (1, 4):
            for batch_size in (1, 4, 32):
                result = parallel_map(
                    _square,
                    payloads,
                    workers=workers,
                    batch_size=batch_size,
                    zero_copy=True,
                )
                assert result.values() == baseline.values(), (
                    f"workers={workers} batch_size={batch_size}"
                )
        assert not shm.created_segments()

    def test_zero_copy_pooled_run_reports_descriptor_bytes(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")
        payloads = [b"x" * 4096 + bytes([i]) for i in range(8)]
        result = parallel_map(
            len, payloads, workers=2, batch_size=4, zero_copy=True
        )
        assert result.values() == [4097] * 8
        assert result.zero_copy
        assert result.batches == 2
        # Descriptors through the pipe, payload bytes through the
        # segment: shipped is the per-item (offset, length) tuples only.
        assert 0 < result.shipped_bytes < result.serialized_bytes

    def test_zero_copy_killed_worker_recovers_without_leaks(self):
        result = parallel_map(
            _kill_worker_on_two,
            [0, 1, 2, 3, 4],
            workers=2,
            batch_size=2,
            zero_copy=True,
        )
        assert result.fell_back
        assert result.values() == [0, 10, 20, 30, 40]
        # The parent recovered from its own pickled copies and still
        # released the shared segment on the way out.
        assert not shm.created_segments()

    def test_inline_clone_false_skips_serialization(self):
        marker = object()  # unpicklable-by-round-trip identity probe
        seen = []
        result = parallel_map(
            seen.append, [marker, marker], workers=1, clone=False
        )
        assert result.serialized_bytes == 0
        assert result.shipped_bytes == 0
        # The worker saw the caller's live objects, not clones.
        assert seen[0] is marker and seen[1] is marker

    def test_inline_clone_true_counts_serialized_bytes(self):
        result = parallel_map(_square, [1, 2, 3], workers=1, clone=True)
        expected = sum(len(pickle.dumps(p)) for p in [1, 2, 3])
        assert result.serialized_bytes == expected


class TestFusedBatching:
    def test_batches_are_contiguous_and_complete(self):
        for batch_size in (1, 2, 3, 5, 100):
            batches = pack_batches([10] * 7, batch_size)
            flattened = [index for batch in batches for index in batch]
            assert flattened == list(range(7))
            assert all(len(batch) <= max(1, batch_size) for batch in batches)

    def test_size_cap(self):
        assert pack_batches([1] * 7, 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert pack_batches([1] * 4, 1) == [[0], [1], [2], [3]]
        assert pack_batches([], 4) == []

    def test_byte_budget_closes_batches_early(self):
        batches = pack_batches([10, 10, 10, 10], 4, max_batch_bytes=25)
        assert batches == [[0, 1], [2, 3]]

    def test_oversized_single_item_still_ships(self):
        batches = pack_batches([100, 5, 5], 4, max_batch_bytes=10)
        assert batches == [[0], [1, 2]]
        # Oversized in the middle: closes the open batch first.
        assert pack_batches([5, 100, 5], 4, max_batch_bytes=10) == [
            [0],
            [1],
            [2],
        ]

    def test_suite_records_identical_across_transports(self):
        suite = small_suite(6)
        device = surface17_device()
        baseline = run_suite_parallel(
            suite, device, sabre_mapper(), workers=1, batch_size=1
        )
        reference = pickle.dumps(baseline.records)
        for workers, batch_size, zero_copy in (
            (4, 4, True),
            (4, 32, False),
            (1, 4, True),
        ):
            report = run_suite_parallel(
                suite,
                device,
                sabre_mapper(),
                workers=workers,
                batch_size=batch_size,
                zero_copy=zero_copy,
            )
            assert pickle.dumps(report.records) == reference, (
                f"workers={workers} batch_size={batch_size} "
                f"zero_copy={zero_copy}"
            )
        assert not shm.created_segments()

    def test_suite_report_carries_transport_fields(self):
        suite = small_suite(4)
        report = run_suite_parallel(
            suite,
            surface17_device(),
            sabre_mapper(),
            workers=2,
            batch_size=2,
            zero_copy=shm.is_available(),
        )
        assert report.batches == 2
        assert report.serialized_bytes > 0
        if shm.is_available():
            assert report.zero_copy
            assert report.shipped_bytes < report.serialized_bytes
