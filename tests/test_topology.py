"""Unit tests for coupling graphs (repro.hardware.topology)."""

import numpy as np
import pytest

from repro.hardware import CouplingGraph, TopologyError


def path4():
    return CouplingGraph(4, [(0, 1), (1, 2), (2, 3)], name="p4")


class TestConstruction:
    def test_basics(self):
        graph = path4()
        assert graph.num_qubits == 4
        assert graph.num_edges == 3
        assert graph.edges == ((0, 1), (1, 2), (2, 3))

    def test_duplicate_edges_merged(self):
        graph = CouplingGraph(2, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            CouplingGraph(2, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError, match="leaves register"):
            CouplingGraph(2, [(0, 2)])

    def test_negative_count_rejected(self):
        with pytest.raises(TopologyError):
            CouplingGraph(-1, [])

    def test_equality_and_hash(self):
        assert path4() == CouplingGraph(4, [(2, 3), (0, 1), (1, 2)])
        assert hash(path4()) == hash(CouplingGraph(4, [(2, 3), (0, 1), (1, 2)]))
        assert path4() != CouplingGraph(4, [(0, 1)])


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = path4()
        assert graph.neighbors(1) == frozenset({0, 2})
        assert graph.degree(0) == 1
        assert graph.max_degree() == 2

    def test_has_edge(self):
        graph = path4()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert graph.are_adjacent(2, 3)

    def test_qubit_range_checked(self):
        with pytest.raises(TopologyError):
            path4().degree(9)


class TestDistances:
    def test_distance(self):
        graph = path4()
        assert graph.distance(0, 3) == 3
        assert graph.distance(2, 2) == 0

    def test_distance_matrix_symmetric(self):
        matrix = path4().distance_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert matrix[0, 3] == 3

    def test_distance_matrix_readonly(self):
        matrix = path4().distance_matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 9

    def test_shortest_path_endpoints(self):
        path = path4().shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4
        graph = path4()
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_shortest_path_trivial(self):
        assert path4().shortest_path(2, 2) == [2]

    def test_disconnected_distance_raises(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError, match="disconnected"):
            graph.distance(0, 3)

    def test_diameter_and_average(self):
        graph = path4()
        assert graph.diameter() == 3
        # distances: 1,2,3,1,2,1 -> mean 10/6 over ordered pairs same.
        assert graph.average_distance() == pytest.approx(10 / 6)

    def test_diameter_disconnected_raises(self):
        with pytest.raises(TopologyError):
            CouplingGraph(3, [(0, 1)]).diameter()


class TestConnectivity:
    def test_connected(self):
        assert path4().is_connected()
        assert not CouplingGraph(3, [(0, 1)]).is_connected()
        assert CouplingGraph(0, []).is_connected()

    def test_truncate_connected_prefix(self):
        graph = path4().truncate_connected(3)
        assert graph.num_qubits == 3
        assert graph.is_connected()

    def test_truncate_bfs_relabels(self):
        # star: 0 connected to 1,2,3; truncating to 2 keeps 0 and 1.
        star = CouplingGraph(4, [(0, 1), (0, 2), (0, 3)])
        cut = star.truncate_connected(2)
        assert cut.edges == ((0, 1),)

    def test_truncate_too_large(self):
        with pytest.raises(TopologyError):
            path4().truncate_connected(9)

    def test_truncate_zero(self):
        assert path4().truncate_connected(0).num_qubits == 0

    def test_truncate_preserves_positions(self):
        graph = CouplingGraph(
            3, [(0, 1), (1, 2)], positions={0: (0, 0), 1: (1, 0), 2: (2, 0)}
        )
        cut = graph.truncate_connected(2)
        assert cut.positions == {0: (0, 0), 1: (1, 0)}


class TestExport:
    def test_to_networkx(self):
        nxg = path4().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3
