"""Incremental SABRE scoring path vs the verbatim legacy path.

The optimised router (``incremental=True``, the default) must be
bit-for-bit equivalent to the pre-optimisation implementation kept
behind ``incremental=False``: same routed circuit, same swap count,
same final layout, for any circuit/device/seed combination.  These
tests pin that equivalence on ring, grid and Surface-17 topologies,
plus regression pins for the stall-fallback and decay-reset behaviour
and for the distance-matrix caching layer.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.compiler import (
    Layout,
    NoiseAwareRouter,
    SabreRouter,
    decompose_circuit,
)
from repro.compiler.routing import (
    _DISTANCE_CACHE,
    clear_distance_cache,
)
from repro.hardware import (
    CNOT_GATESET,
    CouplingGraph,
    Device,
    SURFACE17_CALIBRATION,
    grid_device,
    line_device,
    ring,
    surface17_device,
)
from repro.sim import verify_mapping
from repro.workloads import qft, random_circuit

RING8 = Device(ring(8), SURFACE17_CALIBRATION, CNOT_GATESET, name="ring-8")

DEVICES = [RING8, grid_device(4, 4), surface17_device()]


def _route_both(router_cls, circuit, device, seed, **kwargs):
    layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
    fast = router_cls(seed=seed, incremental=True, **kwargs).route(
        circuit, device, layout
    )
    slow = router_cls(seed=seed, incremental=False, **kwargs).route(
        circuit, device, layout
    )
    return fast, slow


def _assert_identical(fast, slow):
    assert fast.circuit == slow.circuit
    assert fast.swap_count == slow.swap_count
    assert fast.initial_layout == slow.initial_layout
    assert fast.final_layout == slow.final_layout


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name or "grid")
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_circuits_identical(self, device, seed):
        circuit = random_circuit(
            min(8, device.num_qubits), 120, 0.5, seed=seed
        )
        fast, slow = _route_both(SabreRouter, circuit, device, seed=seed + 7)
        _assert_identical(fast, slow)
        assert verify_mapping(
            circuit, fast.circuit, fast.initial_layout, fast.final_layout
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_noise_aware_identical(self, seed):
        device = surface17_device()
        circuit = random_circuit(10, 100, 0.5, seed=seed)
        fast, slow = _route_both(NoiseAwareRouter, circuit, device, seed=seed)
        _assert_identical(fast, slow)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_noise_aware_nonuniform_calibration_identical(self, seed):
        calibration = SURFACE17_CALIBRATION.with_edge_error(
            0, 1, 0.03
        ).with_edge_error(2, 5, 0.002)
        device = surface17_device(calibration=calibration)
        circuit = random_circuit(10, 80, 0.5, seed=seed)
        fast, slow = _route_both(NoiseAwareRouter, circuit, device, seed=seed)
        _assert_identical(fast, slow)

    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        num_gates=st.integers(min_value=1, max_value=80),
        frac=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence_on_ring(self, seed, num_gates, frac):
        circuit = random_circuit(8, num_gates, frac, seed=seed)
        fast, slow = _route_both(SabreRouter, circuit, RING8, seed=seed % 97)
        _assert_identical(fast, slow)

    def test_qft_on_surface17_identical(self):
        device = surface17_device()
        circuit = decompose_circuit(qft(8), device.gate_set)
        fast, slow = _route_both(SabreRouter, circuit, device, seed=11)
        _assert_identical(fast, slow)
        assert fast.swap_count > 0


class TestStallFallback:
    """``stall_limit`` exhaustion falls back to shortest-path insertion."""

    def test_stall_fallback_pinned(self):
        circuit = Circuit(8).cx(0, 4)
        result = SabreRouter(seed=3, stall_limit=0).route(
            circuit, RING8, Layout.trivial(8, 8)
        )
        assert result.swap_count == 3
        swaps = [g.qubits for g in result.circuit if g.name == "swap"]
        assert swaps == [(4, 5), (0, 7), (7, 6)]
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    def test_stall_fallback_identical_across_paths(self):
        circuit = Circuit(8).cx(0, 4).cx(1, 5).cx(2, 6)
        fast, slow = _route_both(
            SabreRouter, circuit, RING8, seed=3, stall_limit=0
        )
        _assert_identical(fast, slow)


class TestDecayReset:
    """Decay bookkeeping is deterministic under a fixed seed."""

    def test_decay_reset_swap_sequence_pinned(self):
        device = line_device(5)
        circuit = decompose_circuit(qft(5), device.gate_set)
        result = SabreRouter(seed=13).route(
            circuit, device, Layout.trivial(5, 5)
        )
        assert result.swap_count == 9
        swaps = [g.qubits for g in result.circuit if g.name == "swap"]
        assert swaps[:6] == [(0, 1), (1, 2), (2, 3), (1, 2), (3, 4), (2, 3)]

    def test_decay_reset_interval_identical_across_paths(self):
        device = line_device(5)
        circuit = decompose_circuit(qft(5), device.gate_set)
        for interval in (1, 5, 1000):
            fast, slow = _route_both(
                SabreRouter,
                circuit,
                device,
                seed=13,
                decay_reset_interval=interval,
            )
            _assert_identical(fast, slow)


class TestDistanceMatrix:
    def test_unreachable_pairs_are_infinite(self):
        """-1 sentinels from CouplingGraph become +inf, never negative."""
        disconnected = CouplingGraph(4, [(0, 1), (2, 3)])
        device = Device(disconnected, SURFACE17_CALIBRATION, CNOT_GATESET)
        dist = SabreRouter()._build_distance_matrix(device)
        assert math.isinf(dist[0, 2]) and dist[0, 2] > 0
        assert math.isinf(dist[1, 3])
        assert dist[0, 1] == 1.0 and dist[2, 3] == 1.0
        assert not (dist < 0).any()

    def test_distance_matrix_memoised(self):
        clear_distance_cache()
        device = surface17_device()
        first = SabreRouter()._distance_matrix(device)
        second = SabreRouter()._distance_matrix(device)
        assert first is second

    def test_cached_matrix_is_read_only(self):
        clear_distance_cache()
        dist = SabreRouter()._distance_matrix(surface17_device())
        with pytest.raises(ValueError):
            dist[0, 0] = 42.0

    def test_noise_cache_keyed_on_calibration_version(self):
        clear_distance_cache()
        base = surface17_device()
        bumped = surface17_device(
            calibration=SURFACE17_CALIBRATION.with_edge_error(0, 2, 0.2)
        )
        router = NoiseAwareRouter()
        d_base = router._distance_matrix(base)
        d_bumped = router._distance_matrix(bumped)
        assert d_base is not d_bumped
        assert not np.array_equal(d_base, d_bumped)
        # Same coupling + same calibration shares a single cached table.
        assert router._distance_matrix(surface17_device()) is d_base

    def test_hop_and_noise_tables_do_not_collide(self):
        clear_distance_cache()
        device = surface17_device()
        hops = SabreRouter()._distance_matrix(device)
        noise = NoiseAwareRouter()._distance_matrix(device)
        assert hops is not noise

    def test_clear_distance_cache(self):
        device = surface17_device()
        first = SabreRouter()._distance_matrix(device)
        clear_distance_cache()
        assert len(_DISTANCE_CACHE) == 0
        assert SabreRouter()._distance_matrix(device) is not first

    def test_cache_is_bounded(self):
        clear_distance_cache()
        router = SabreRouter()
        for n in range(3, 40):
            router._distance_matrix(line_device(n))
        assert len(_DISTANCE_CACHE) <= 32


class TestWorkspaceScoring:
    """Preallocated-buffer candidate scoring vs the allocating path.

    ``use_workspace=True`` must be pure plumbing: identical swap
    choices, routed circuits and final layouts on every topology, with
    the scratch buffers dropped from pickles so pooled dispatch never
    ships them.
    """

    @staticmethod
    def _route_workspace_pair(circuit, device, seed, **kwargs):
        layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
        fast = SabreRouter(seed=seed, use_workspace=True, **kwargs).route(
            circuit, device, layout
        )
        slow = SabreRouter(seed=seed, use_workspace=False, **kwargs).route(
            circuit, device, layout
        )
        return fast, slow

    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name or "grid")
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuits_identical(self, device, seed):
        circuit = random_circuit(
            min(8, device.num_qubits), 120, 0.5, seed=seed
        )
        fast, slow = self._route_workspace_pair(
            circuit, device, seed=seed + 3
        )
        _assert_identical(fast, slow)
        assert verify_mapping(
            circuit, fast.circuit, fast.initial_layout, fast.final_layout
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_noise_aware_workspace_identical(self, seed):
        device = surface17_device()
        circuit = random_circuit(10, 80, 0.5, seed=seed)
        layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
        fast = NoiseAwareRouter(seed=seed, use_workspace=True).route(
            circuit, device, layout
        )
        slow = NoiseAwareRouter(seed=seed, use_workspace=False).route(
            circuit, device, layout
        )
        _assert_identical(fast, slow)

    def test_workspace_composes_with_legacy_scoring(self):
        # All four (incremental, use_workspace) combinations route the
        # same circuit identically.
        circuit = decompose_circuit(qft(6), RING8.gate_set)
        layout = Layout.trivial(6, 8)
        results = [
            SabreRouter(
                seed=5, incremental=incremental, use_workspace=use_workspace
            ).route(circuit, RING8, layout)
            for incremental in (True, False)
            for use_workspace in (True, False)
        ]
        for other in results[1:]:
            _assert_identical(results[0], other)

    def test_workspace_twin_flips_only_the_transport(self):
        router = SabreRouter(seed=42, incremental=False, use_workspace=True)
        twin = router.workspace_twin()
        assert twin.use_workspace is False
        assert twin.seed == router.seed
        assert twin.incremental is router.incremental
        assert twin.workspace_twin().use_workspace is True

    def test_pickled_router_drops_scratch_buffers(self):
        import pickle

        circuit = random_circuit(8, 60, 0.5, seed=2)
        router = SabreRouter(seed=9, use_workspace=True)
        routed = router.route(circuit, RING8, Layout.trivial(8, 8))
        assert router._score_ws is not None  # scratch was allocated
        clone = pickle.loads(pickle.dumps(router))
        assert clone._score_ws is None
        # A fresh clone (fresh RNG) still routes identically to a fresh
        # router — the buffers carry no routing state.
        fresh = pickle.loads(pickle.dumps(SabreRouter(seed=9, use_workspace=True)))
        assert fresh._score_ws is None
        rerouted = fresh.route(circuit, RING8, Layout.trivial(8, 8))
        _assert_identical(routed, rerouted)


class TestStatelessChooseSwap:
    """The public one-off ``_choose_swap`` agrees across both paths."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_choose_swap_matches_naive(self, seed):
        device = surface17_device()
        circuit = random_circuit(10, 60, 0.6, seed=seed)
        fast, slow = _route_both(SabreRouter, circuit, device, seed=seed)
        _assert_identical(fast, slow)
