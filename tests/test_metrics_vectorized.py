"""Vectorised Table I metrics vs the reference path, and the metrics cache."""

import numpy as np
import pytest

from repro.core.interaction import InteractionGraph, interaction_graph
from repro.core.metrics import (
    METRIC_NAMES,
    circuit_graph_metrics,
    clear_metrics_cache,
    compute_metrics,
    metrics_cache_info,
)
from repro.workloads.qaoa import qaoa_maxcut, random_maxcut_instance
from repro.workloads.random_circuits import random_circuit

#: Relative tolerance for the betweenness pair — the vectorised path
#: accumulates the dependency sums in a different float order than the
#: reference stack walk.  Every other metric must match bit for bit.
BETWEENNESS_RTOL = 1e-12


def random_graph(num_qubits, edge_probability, seed):
    rng = np.random.default_rng(seed)
    graph = InteractionGraph(num_qubits)
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            if rng.random() < edge_probability:
                graph.add_interaction(a, b, float(rng.integers(1, 5)))
    return graph


def ring_graph(num_qubits):
    graph = InteractionGraph(num_qubits)
    for i in range(num_qubits):
        graph.add_interaction(i, (i + 1) % num_qubits)
    return graph


def grid_graph(rows, cols):
    graph = InteractionGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_interaction(node, node + 1)
            if r + 1 < rows:
                graph.add_interaction(node, node + cols)
    return graph


def assert_paths_agree(graph):
    reference = compute_metrics(graph, vectorized=False).as_dict()
    vectorized = compute_metrics(graph, vectorized=True).as_dict()
    for name in METRIC_NAMES:
        ref, vec = reference[name], vectorized[name]
        if name.startswith("betweenness"):
            assert abs(ref - vec) <= BETWEENNESS_RTOL * max(1.0, abs(ref)), (
                name,
                ref,
                vec,
            )
        else:
            assert ref == vec, (name, ref, vec)


class TestEquivalenceOnGraphFamilies:
    @pytest.mark.parametrize(
        "num_qubits,edge_probability,seed",
        [(6, 0.5, 0), (12, 0.3, 1), (20, 0.2, 2), (28, 0.12, 3), (16, 0.05, 4)],
    )
    def test_random_graphs(self, num_qubits, edge_probability, seed):
        assert_paths_agree(random_graph(num_qubits, edge_probability, seed))

    @pytest.mark.parametrize("num_nodes,num_edges,seed", [(10, 18, 5), (20, 40, 6)])
    def test_qaoa_graphs(self, num_nodes, num_edges, seed):
        edges = random_maxcut_instance(num_nodes, num_edges, seed=seed)
        circuit = qaoa_maxcut(num_nodes, edges, num_layers=2)
        assert_paths_agree(interaction_graph(circuit))

    @pytest.mark.parametrize("num_qubits", [5, 12, 21])
    def test_ring_graphs(self, num_qubits):
        assert_paths_agree(ring_graph(num_qubits))

    @pytest.mark.parametrize("rows,cols", [(2, 3), (4, 4), (5, 6)])
    def test_grid_graphs(self, rows, cols):
        assert_paths_agree(grid_graph(rows, cols))


class TestEquivalenceOnEdgeCases:
    def test_empty_graph(self):
        assert_paths_agree(InteractionGraph(0))

    def test_single_node(self):
        assert_paths_agree(InteractionGraph(1))

    def test_no_edges(self):
        assert_paths_agree(InteractionGraph(7))

    def test_isolated_nodes(self):
        graph = random_graph(10, 0.4, 7)
        padded = InteractionGraph(14)  # 4 qubits never interact
        for a, b, w in graph.edges():
            padded.add_interaction(a, b, w)
        assert_paths_agree(padded)
        assert compute_metrics(padded).connected == 0.0

    def test_disconnected_components(self):
        graph = InteractionGraph(9)
        for a, b in [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7), (7, 8)]:
            graph.add_interaction(a, b)
        assert_paths_agree(graph)
        assert compute_metrics(graph).connected == 0.0

    def test_two_nodes_one_edge(self):
        graph = InteractionGraph(2)
        graph.add_interaction(0, 1, 3.0)
        assert_paths_agree(graph)


class TestShortestPathLengths:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matrix_exactly_matches_per_source_bfs(self, seed):
        graph = random_graph(18, 0.15, seed)
        assert np.array_equal(
            graph.shortest_path_lengths(vectorized=True),
            graph.shortest_path_lengths(vectorized=False),
        )

    def test_unreachable_pairs_are_minus_one(self):
        graph = InteractionGraph(4)
        graph.add_interaction(0, 1)
        dist = graph.shortest_path_lengths()
        assert dist[0, 1] == 1 and dist[0, 2] == -1 and dist[3, 3] == 0


class TestMetricsCache:
    def setup_method(self):
        clear_metrics_cache()

    def teardown_method(self):
        clear_metrics_cache()

    def test_repeat_call_returns_same_instance(self):
        circuit = random_circuit(6, 30, 0.5, seed=3)
        first = circuit_graph_metrics(circuit)
        second = circuit_graph_metrics(circuit)
        assert first is second
        assert metrics_cache_info() == {"size": 1, "hits": 1, "misses": 1}

    def test_matches_uncached_computation(self):
        circuit = random_circuit(5, 25, 0.4, seed=4)
        cached = circuit_graph_metrics(circuit)
        direct = compute_metrics(interaction_graph(circuit))
        assert cached == direct

    def test_mutation_invalidates_via_content_hash(self):
        circuit = random_circuit(4, 10, 0.5, seed=5)
        before = circuit_graph_metrics(circuit)
        circuit.cx(0, 1)
        after = circuit_graph_metrics(circuit)
        assert after is not before
        assert after.num_edges >= before.num_edges
        assert metrics_cache_info()["misses"] == 2

    def test_vectorized_flag_is_part_of_the_key(self):
        circuit = random_circuit(4, 10, 0.5, seed=6)
        circuit_graph_metrics(circuit, vectorized=True)
        circuit_graph_metrics(circuit, vectorized=False)
        assert metrics_cache_info() == {"size": 2, "hits": 0, "misses": 2}

    def test_cache_bypass(self):
        circuit = random_circuit(4, 10, 0.5, seed=7)
        first = circuit_graph_metrics(circuit, cache=False)
        second = circuit_graph_metrics(circuit, cache=False)
        assert first is not second
        assert first == second
        assert metrics_cache_info() == {"size": 0, "hits": 0, "misses": 0}

    def test_clear_resets_entries_and_stats(self):
        circuit = random_circuit(4, 10, 0.5, seed=8)
        circuit_graph_metrics(circuit)
        circuit_graph_metrics(circuit)
        clear_metrics_cache()
        assert metrics_cache_info() == {"size": 0, "hits": 0, "misses": 0}
