"""The fuzz sample generator: determinism, coverage, round-trips."""

import math

import pytest

from repro.circuit import parse_qasm, to_qasm
from repro.fuzz import (
    CIRCUIT_CLASSES,
    TOPOLOGY_CLASSES,
    FuzzSeed,
    generate_sample,
    minimal_device,
    sample_block,
)
from repro.fuzz.generator import MAX_CIRCUIT_QUBITS


class TestDeterminism:
    def test_same_seed_same_sample(self):
        a = generate_sample(FuzzSeed(7, 3))
        b = generate_sample(FuzzSeed(7, 3))
        assert a.circuit == b.circuit
        assert a.device.name == b.device.name
        assert a.device.coupling.edges == b.device.coupling.edges

    def test_different_indices_differ(self):
        # Same class pairing, different RNG stream: indices 0 and 16.
        a = generate_sample(FuzzSeed(7, 0))
        b = generate_sample(FuzzSeed(7, 16))
        assert (a.circuit_class, a.topology_class) == (
            b.circuit_class,
            b.topology_class,
        )
        assert a.circuit != b.circuit

    def test_salted_rngs_are_independent(self):
        seed = FuzzSeed(3, 1)
        assert seed.rng(salt=0).integers(2**30) != seed.rng(salt=1).integers(
            2**30
        )


class TestCoverage:
    def test_block_of_16_covers_every_pairing(self):
        pairings = {
            (s.circuit_class, s.topology_class)
            for s in sample_block(2022, 16)
        }
        assert pairings == {
            (c, t) for c in CIRCUIT_CLASSES for t in TOPOLOGY_CLASSES
        }

    def test_pathological_class_produces_edge_cases(self):
        # Over a long block the pathological generator must emit at
        # least one empty circuit and one with zero 2q gates.
        pathological = [
            s.circuit
            for s in sample_block(2022, 200)
            if s.circuit_class == "pathological"
        ]
        assert any(len(c) == 0 for c in pathological)
        assert any(
            len(c) > 0 and not any(g.is_two_qubit for g in c)
            for c in pathological
        )

    def test_width_capped(self):
        for sample in sample_block(5, 64):
            assert sample.circuit.num_qubits <= MAX_CIRCUIT_QUBITS

    def test_device_fits_circuit(self):
        for sample in sample_block(9, 64):
            assert sample.device.num_qubits >= sample.circuit.num_qubits
            assert sample.device.coupling.is_connected()

    def test_describe_mentions_coordinates(self):
        text = generate_sample(FuzzSeed(4, 2)).describe()
        assert "seed=4" in text and "index=2" in text


class TestMinimalDevice:
    @pytest.mark.parametrize("topology_class", TOPOLOGY_CLASSES)
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 7])
    def test_fits_and_connected(self, topology_class, width):
        device = minimal_device(topology_class, width)
        assert device.num_qubits >= width
        assert device.coupling.is_connected()

    def test_deterministic(self):
        a = minimal_device("random", 5)
        b = minimal_device("random", 5)
        assert a.coupling.edges == b.coupling.edges

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown topology class"):
            minimal_device("torus", 4)


class TestQasmRoundTripProperty:
    """Satellite: ``parse(dump(c))`` is the identity on every generated
    class — gates, parameters and qubit order all survive."""

    @pytest.mark.parametrize("index", range(32))
    def test_round_trip(self, index):
        circuit = generate_sample(FuzzSeed(2022, index)).circuit
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert len(parsed) == len(circuit)
        for original, reread in zip(circuit, parsed):
            assert reread.name == original.name
            assert reread.qubits == original.qubits
            assert len(reread.params) == len(original.params)
            for p, q in zip(original.params, reread.params):
                assert math.isclose(p, q, rel_tol=0, abs_tol=1e-12)
