"""Streaming calibration drift through the serving layer.

Pins the epoch semantics of ``CompilationService.apply_drift``: jobs
admitted at epoch N resolve with epoch-N payload bytes even when drift
lands mid-flight, the next identical request misses the cache and
recompiles under the N+1 calibration, hit/miss counters stay exact,
worker counts stay byte-identical across a drifting request stream, and
the zero-copy prewarm segments are republished (old ones unlinked)
without ever leaking or serving a stale view — including when a worker
is SIGKILLed while the republish happens.
"""

import pytest

from repro.hardware import resolve_device
from repro.hardware.drift import CalibrationDelta
from repro.runtime import shm
from repro.service import (
    CompilationService,
    CompileRequest,
    ResultKey,
    ServiceClient,
    ServiceError,
    build_corpus,
    calibration_version,
    result_key,
)

DEVICE = "surface7"
# (0, 2) is a coupling edge of surface7; a modest increase keeps the
# cheapest edge (and hence the cost scale) unchanged, so the parent's
# table refresh can stay incremental.
DELTA = CalibrationDelta.of(edge_errors={(0, 2): 0.03})
SECOND_DELTA = CalibrationDelta.of(edge_errors={(1, 4): 0.04})


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(6, seed=3, min_qubits=4, max_qubits=6)


def _payload_calibration(response) -> str:
    return response.to_dict()["key"]["calibration"]


class TestEpochKeying:
    def test_epoch_defaults_to_zero(self):
        # Pre-drift call sites (and cached pickles) build 4-field keys;
        # they must keep meaning "epoch 0".
        key = ResultKey(circuit="c", device="d", calibration="v", mapper="m")
        assert key.epoch == 0

    def test_result_key_threads_epoch(self, corpus):
        device = resolve_device(DEVICE)
        base = result_key(corpus[0], DEVICE, device, "sabre")
        bumped = result_key(corpus[0], DEVICE, device, "sabre", epoch=3)
        assert base.epoch == 0 and bumped.epoch == 3
        # Same digest, different epoch: still distinct cache rows.
        assert base.calibration == bumped.calibration
        assert base != bumped

    def test_apply_drift_requires_running_service(self):
        service = CompilationService(workers=0, devices=(DEVICE,))
        with pytest.raises(ServiceError, match="not running"):
            service.apply_drift(DELTA, device=DEVICE)


class TestEpochPinning:
    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_drift_invalidates_cache_with_exact_counters(
        self, corpus, workers
    ):
        with CompilationService(workers=workers, devices=(DEVICE,)) as service:
            client = ServiceClient(service)
            first = client.compile(corpus[0], device=DEVICE, timeout=120.0)
            repeat = client.compile(corpus[0], device=DEVICE, timeout=120.0)
            epoch0_version = calibration_version(
                service._devices[DEVICE].calibration
            )
            diff = service.apply_drift(DELTA, device=DEVICE)
            assert diff.epoch == 1 and not diff.empty
            assert service.calibration_epoch(DEVICE) == 1
            # The identical request now *misses* (epoch is in the key)
            # and recompiles under the drifted calibration.
            drifted = client.compile(corpus[0], device=DEVICE, timeout=120.0)
            drifted_repeat = client.compile(
                corpus[0], device=DEVICE, timeout=120.0
            )
            drifted_version = calibration_version(
                service._devices[DEVICE].calibration
            )
            stats = service.stats()
        assert not first.cached and repeat.cached
        assert not drifted.cached and drifted_repeat.cached
        assert _payload_calibration(first) == epoch0_version
        assert _payload_calibration(drifted) == drifted_version
        assert drifted_version != epoch0_version
        assert drifted.payload != first.payload
        assert drifted_repeat.payload == drifted.payload
        assert service.cache.hits == 2 and service.cache.misses == 2
        assert stats["drift"]["epochs"][DEVICE] == 1
        assert stats["drift"]["updates"] == 1

    def test_mid_flight_drift_returns_admission_epoch_payload(self, corpus):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(
                corpus[1], device=DEVICE, timeout=120.0
            )
        with CompilationService(workers=1, devices=(DEVICE,)) as service:
            client = ServiceClient(service)
            # The kill fault takes the worker down mid-compute; the
            # drift lands while the job is in flight.  The recovery
            # compute must use the *pinned* epoch-0 device, not the
            # drifted live one.
            job = service.submit(
                CompileRequest(
                    circuit=corpus[1],
                    device=DEVICE,
                    priority="interactive",
                    faults="kill@0",
                )
            )
            service.apply_drift(DELTA, device=DEVICE)
            faulted = job.result(timeout=120.0)
            # The next identical request misses and compiles at N+1.
            follow_up = client.compile(corpus[1], device=DEVICE, timeout=120.0)
            drifted_version = calibration_version(
                service._devices[DEVICE].calibration
            )
        assert faulted.payload == clean.payload
        assert not follow_up.cached
        assert _payload_calibration(follow_up) == drifted_version
        assert follow_up.payload != clean.payload

    def test_worker_counts_byte_identical_across_drift(self, corpus):
        # Two request waves with a drift update between them: every
        # worker count (and the zero-copy path) must produce the same
        # payload bytes for both waves.
        wave = [
            CompileRequest(circuit=circuit, device=DEVICE)
            for circuit in corpus[:4]
        ]
        streams = {}
        for workers, zero_copy in ((0, False), (2, False), (2, True)):
            with CompilationService(
                workers=workers, devices=(DEVICE,), zero_copy=zero_copy
            ) as service:
                client = ServiceClient(service)
                before = [
                    r.payload
                    for r in client.compile_many(wave, timeout=120.0)
                ]
                service.apply_drift(DELTA, device=DEVICE)
                after = [
                    r.payload
                    for r in client.compile_many(wave, timeout=120.0)
                ]
            streams[(workers, zero_copy)] = (before, after)
        baseline = streams[(0, False)]
        assert baseline[0] != baseline[1]  # drift actually changed them
        for key, payloads in streams.items():
            assert payloads == baseline, f"divergence at {key}"
        assert not shm.created_segments()


class TestZeroCopyDrift:
    def _require_shm(self):
        if not shm.is_available():
            pytest.skip("no shared memory on this platform")

    def test_republish_retires_stale_segments(self, corpus):
        self._require_shm()
        with CompilationService(
            workers=1, devices=(DEVICE,), zero_copy=True
        ) as service:
            # hop + noise + incident (calibration shares incident's
            # segment) published at start.
            assert len(shm.created_segments()) == 3
            service.apply_drift(DELTA, device=DEVICE)
            # New noise + new calibration published; the old noise
            # segment is unlinked (the old calibration blob shares the
            # still-live incident segment): 3 - 1 + 2.
            assert len(shm.created_segments()) == 4
            service.apply_drift(SECOND_DELTA, device=DEVICE)
            # Steady state: each further drift retires the previous
            # noise + calibration segments and publishes two fresh ones.
            assert len(shm.created_segments()) == 4
            response = ServiceClient(service).compile(
                corpus[2], device=DEVICE, timeout=120.0
            )
            drifted_version = calibration_version(
                service._devices[DEVICE].calibration
            )
            assert _payload_calibration(response) == drifted_version
        # stop() released everything that was still published.
        assert not shm.created_segments()

    def test_respawned_worker_attaches_post_drift_tables(self, corpus):
        self._require_shm()
        with CompilationService(
            workers=1, devices=(DEVICE,), zero_copy=True
        ) as service:
            client = ServiceClient(service)
            service.apply_drift(DELTA, device=DEVICE)
            # Kill the worker *after* the drift: the respawn must attach
            # the republished tables (or rebuild locally) and then serve
            # post-drift requests with the drifted calibration.
            faulted = client.compile(
                corpus[3],
                device=DEVICE,
                priority="interactive",
                faults="kill@0",
                timeout=120.0,
            )
            assert service.recovered_total == 1
            follow_up = client.compile(corpus[4], device=DEVICE, timeout=120.0)
            drifted_version = calibration_version(
                service._devices[DEVICE].calibration
            )
        assert faulted.served_by == "recovery"
        assert follow_up.served_by.startswith("worker-")
        assert _payload_calibration(faulted) == drifted_version
        assert _payload_calibration(follow_up) == drifted_version
        assert not shm.created_segments()

    def test_kill_during_republish_recovers_with_pinned_epoch(self, corpus):
        self._require_shm()
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(
                corpus[5], device=DEVICE, timeout=120.0
            )
        with CompilationService(
            workers=1, devices=(DEVICE,), zero_copy=True
        ) as service:
            client = ServiceClient(service)
            # The worker dies on the job while the parent republishes
            # the prewarm tables; the respawned worker races the unlink
            # of the old noise segment and must fall back cleanly.
            job = service.submit(
                CompileRequest(
                    circuit=corpus[5],
                    device=DEVICE,
                    priority="interactive",
                    faults="kill@0",
                )
            )
            service.apply_drift(DELTA, device=DEVICE)
            faulted = job.result(timeout=120.0)
            follow_up = client.compile(corpus[0], device=DEVICE, timeout=120.0)
            drifted_version = calibration_version(
                service._devices[DEVICE].calibration
            )
        assert faulted.payload == clean.payload
        assert _payload_calibration(follow_up) == drifted_version
        assert not shm.created_segments()
