"""Unit tests for the OpenQASM 2.0 reader/writer (repro.circuit.qasm)."""

import math

import pytest

from repro.circuit import Circuit, QasmError, parse_qasm, to_qasm
from repro.sim import circuits_equivalent


HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestParsing:
    def test_minimal_program(self):
        circuit = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncx q[0], q[1];\n")
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit] == ["h", "cx"]

    def test_parameter_expressions(self):
        circuit = parse_qasm(
            HEADER + "qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\n"
            "ry(2*pi/3) q[0];\nu1(0.25) q[0];\n"
        )
        assert circuit[0].params == (math.pi / 2,)
        assert circuit[1].params == (-math.pi,)
        assert circuit[2].params == (2 * math.pi / 3,)
        assert circuit[3].name == "p"

    def test_expression_functions(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(cos(0)) q[0];\n")
        assert circuit[0].params == (1.0,)

    def test_power_operator(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(2^3) q[0];\n")
        assert circuit[0].params == (8.0,)

    def test_register_broadcast_single(self):
        circuit = parse_qasm(HEADER + "qreg q[3];\nh q;\n")
        assert len(circuit) == 3
        assert {g.qubits[0] for g in circuit} == {0, 1, 2}

    def test_register_broadcast_zip(self):
        circuit = parse_qasm(HEADER + "qreg a[2];\nqreg b[2];\ncx a, b;\n")
        assert [g.qubits for g in circuit] == [(0, 2), (1, 3)]

    def test_broadcast_scalar_against_register(self):
        circuit = parse_qasm(HEADER + "qreg a[1];\nqreg b[3];\ncx a[0], b;\n")
        assert [g.qubits for g in circuit] == [(0, 1), (0, 2), (0, 3)]

    def test_multiple_qregs_flattened(self):
        circuit = parse_qasm(HEADER + "qreg a[2];\nqreg b[1];\nx b[0];\n")
        assert circuit.num_qubits == 3
        assert circuit[0].qubits == (2,)

    def test_measure(self):
        circuit = parse_qasm(
            HEADER + "qreg q[2];\ncreg c[2];\nmeasure q[0] -> c[0];\nmeasure q -> c;\n"
        )
        assert [g.name for g in circuit] == ["measure"] * 3

    def test_barrier(self):
        circuit = parse_qasm(HEADER + "qreg q[3];\nbarrier q[0], q[2];\n")
        assert circuit[0].name == "barrier"
        assert circuit[0].qubits == (0, 2)

    def test_reset_and_id(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nreset q[0];\nid q[0];\n")
        assert [g.name for g in circuit] == ["reset", "i"]

    def test_comments_ignored(self):
        circuit = parse_qasm(
            HEADER + "// a comment\nqreg q[1];\nx q[0]; // trailing\n"
        )
        assert len(circuit) == 1

    def test_gate_macro(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate bell a, b { h a; cx a, b; }\n"
            "bell q[0], q[1];\n"
        )
        circuit = parse_qasm(source)
        assert [g.name for g in circuit] == ["h", "cx"]
        assert circuit[1].qubits == (0, 1)

    def test_parameterised_macro(self):
        source = HEADER + (
            "qreg q[1];\n"
            "gate wiggle(theta) a { rz(theta/2) a; rz(theta/2) a; }\n"
            "wiggle(pi) q[0];\n"
        )
        circuit = parse_qasm(source)
        assert len(circuit) == 2
        assert circuit[0].params == (math.pi / 2,)

    def test_nested_macro(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate inner a { h a; }\n"
            "gate outer a, b { inner a; cx a, b; }\n"
            "outer q[0], q[1];\n"
        )
        circuit = parse_qasm(source)
        assert [g.name for g in circuit] == ["h", "cx"]


class TestParserErrors:
    @pytest.mark.parametrize(
        "source,pattern",
        [
            ("qreg q[2];\nbogus q[0];", "unknown gate"),
            ("qreg q[2];\nh q[5];", "out of range"),
            ("qreg q[2];\nh r[0];", "unknown quantum register"),
            ("qreg q[2];\nrz() q[0];", "expects 1 params|bad expression"),
            ("qreg q[2];\nrz(pi q[0];", "malformed|unterminated|bad|missing"),
            ("qreg q[2];\nif (c==1) x q[0];", "unsupported"),
            ("qreg q[1];\nrz(1/0) q[0];", "division by zero"),
            ("qreg q[1];\nrz(foo) q[0];", "unknown identifier"),
            ("qreg q[2];\nqreg q[2];", "duplicate"),
            ("qreg q[2];\ncx q[0];", "expects 2"),
        ],
    )
    def test_error(self, source, pattern):
        with pytest.raises(QasmError, match=pattern):
            parse_qasm(HEADER + source)

    def test_error_reports_line(self):
        with pytest.raises(QasmError, match="line"):
            parse_qasm(HEADER + "qreg q[1];\n\n\nbogus q[0];\n")


class TestWriter:
    def test_roundtrip_structure(self):
        circuit = (
            Circuit(3)
            .h(0)
            .cx(0, 1)
            .rz(math.pi / 3, 1)
            .cp(0.5, 1, 2)
            .swap(0, 2)
            .barrier()
            .measure_all()
        )
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert [g.name for g in parsed] == [g.name for g in circuit]

    def test_roundtrip_semantics(self):
        circuit = Circuit(3).h(0).cx(0, 1).t(2).rzz(1.234, 0, 2).u3(0.1, 0.2, 0.3, 1)
        parsed = parse_qasm(to_qasm(circuit))
        assert circuits_equivalent(circuit, parsed)

    def test_pi_folding(self):
        text = to_qasm(Circuit(1).rz(math.pi / 2, 0))
        assert "pi/2" in text

    def test_negative_pi_folding(self):
        text = to_qasm(Circuit(1).rz(-math.pi, 0))
        assert "-pi" in text

    def test_non_pi_params_preserved_exactly(self):
        circuit = Circuit(1).rz(0.12345678901234567, 0)
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed[0].params[0] == pytest.approx(0.12345678901234567, abs=0)

    def test_measure_emits_creg(self):
        text = to_qasm(Circuit(2).measure(1))
        assert "creg" in text
        assert "measure q[1] -> c[1];" in text

    def test_no_creg_without_measure(self):
        assert "creg" not in to_qasm(Circuit(2).h(0))

    def test_id_and_u1_spellings(self):
        text = to_qasm(Circuit(1).i(0).p(0.3, 0))
        assert "id q[0];" in text
        assert "u1(" in text
