"""Worker health watchdog, poison-job quarantine and graceful drain.

Pins the chaos-hardening contracts of ``repro.service``: a worker that
wedges mid-compute (alive process, no heartbeat) is detected by the
watchdog within the heartbeat budget, killed, respawned and its job
recovered byte-identically; a job that keeps killing workers is
quarantined after ``max_job_attempts`` incidents instead of being fed
workers forever; ``drain()`` finishes in-flight work, journals queued
jobs to JSONL and rejects new submits with the typed
``ServiceDraining``; and the pool's ``stop()``/``respawn()`` never hang
on or leak wedged processes.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.service import (
    CompilationService,
    CompileRequest,
    ServiceClient,
    ServiceDraining,
    ServiceError,
    WarmWorkerPool,
    build_corpus,
    install_drain_handlers,
)

DEVICE = "surface7"

#: Far below the hang fault's 5 s sleep, so detection always wins.
BUDGET_S = 0.5


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(6, seed=3, min_qubits=4, max_qubits=6)


class TestHealthWatchdog:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_hung_worker_recovered_byte_identical(self, corpus, workers):
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(corpus[1], device=DEVICE)
        with CompilationService(
            workers=workers,
            devices=(DEVICE,),
            heartbeat_budget_s=BUDGET_S,
        ) as service:
            client = ServiceClient(service)
            hung = client.compile(
                corpus[1], device=DEVICE, faults="hang@0", timeout=120.0
            )
            # Exact incident accounting: one hang detected, one respawn
            # attributed to it, one job recovered, nothing failed.
            assert service.hangs_total == 1
            assert service.respawns_total == {"crash": 0, "hang": 1}
            assert service.recovered_total == 1
            assert service.failed_total == 0
            assert service.quarantined_total == 0
            follow_up = client.compile(corpus[2], device=DEVICE, timeout=120.0)
        assert hung.served_by == "recovery"
        assert hung.payload == clean.payload
        assert follow_up.served_by.startswith("worker-")

    def test_stats_expose_health_block(self, corpus):
        with CompilationService(
            workers=1, devices=(DEVICE,), heartbeat_budget_s=BUDGET_S
        ) as service:
            ServiceClient(service).compile(
                corpus[0], device=DEVICE, faults="hang@0", timeout=120.0
            )
            health = service.stats()["health"]
            assert health["heartbeat_budget_s"] == BUDGET_S
            assert health["hangs"] == 1
            assert health["respawns"] == {"crash": 0, "hang": 1}

    def test_watchdog_disabled_with_none_budget(self, corpus):
        # No heartbeat budget: a plain crash is still recovered through
        # the dead-worker sweep, and nothing is ever labelled a hang.
        with CompilationService(
            workers=1, devices=(DEVICE,), heartbeat_budget_s=None
        ) as service:
            response = ServiceClient(service).compile(
                corpus[3], device=DEVICE, faults="kill@0", timeout=120.0
            )
            assert service.hangs_total == 0
            assert service.respawns_total == {"crash": 1, "hang": 0}
        assert response.served_by == "recovery"


class TestQuarantine:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_repeat_killer_is_quarantined(self, corpus, workers):
        with CompilationService(
            workers=workers,
            devices=(DEVICE,),
            heartbeat_budget_s=BUDGET_S,
            max_job_attempts=2,
        ) as service:
            client = ServiceClient(service)
            job = service.submit(
                CompileRequest(
                    circuit=corpus[4], device=DEVICE, faults="kill@0x6"
                )
            )
            with pytest.raises(ServiceError, match="quarantined after 2"):
                job.result(timeout=120.0)
            assert job.quarantined
            # Exactly two worker-fatal incidents were spent, both crashes.
            assert [i["kind"] for i in job.attempt_history] == [
                "crash",
                "crash",
            ]
            assert service.quarantined_total == 1
            assert service.failed_total == 1
            assert service.respawns_total["crash"] == 2
            block = service.stats()["quarantine"]
            assert block["total"] == 1
            assert block["max_job_attempts"] == 2
            (entry,) = block["jobs"]
            assert entry["reason"].startswith("2 worker-fatal incidents")
            assert len(entry["attempts"]) == 2
            # The service keeps serving after quarantining the poison job.
            follow_up = client.compile(corpus[5], device=DEVICE, timeout=120.0)
            assert follow_up.payload
            assert service.failed_total == 1

    def test_quarantine_fails_coalesced_waiters_too(self, corpus):
        with CompilationService(
            workers=1,
            devices=(DEVICE,),
            heartbeat_budget_s=BUDGET_S,
            max_job_attempts=2,
        ) as service:
            request = CompileRequest(
                circuit=corpus[4], device=DEVICE, faults="kill@0x6"
            )
            first = service.submit(request)
            second = service.submit(request)  # coalesces onto first
            for job in (first, second):
                with pytest.raises(ServiceError, match="quarantined"):
                    job.result(timeout=120.0)
                assert job.quarantined
            assert service.quarantined_total == 1
            assert service.failed_total == 2

    def test_single_kill_still_recovers_below_threshold(self, corpus):
        # One incident < max_job_attempts: the job must recover, not
        # quarantine, and the payload must match a fault-free twin.
        with CompilationService(workers=0, devices=(DEVICE,)) as service:
            clean = ServiceClient(service).compile(corpus[0], device=DEVICE)
        with CompilationService(
            workers=1,
            devices=(DEVICE,),
            heartbeat_budget_s=BUDGET_S,
            max_job_attempts=3,
        ) as service:
            response = ServiceClient(service).compile(
                corpus[0], device=DEVICE, faults="kill@0", timeout=120.0
            )
            assert service.quarantined_total == 0
            assert service.recovered_total == 1
        assert response.served_by == "recovery"
        assert response.payload == clean.payload


class TestPoolLifecycle:
    def test_stop_returns_under_budget_with_hung_worker(self, corpus):
        pool = WarmWorkerPool(1, (DEVICE,))
        pool.start()
        try:
            request = CompileRequest(
                circuit=corpus[0], device=DEVICE, faults="hang@0"
            )
            (worker_id,) = pool.worker_ids()
            pool.submit(worker_id, 0, request)
            time.sleep(0.3)  # let the worker pick the job up and wedge
        finally:
            start = time.monotonic()
            pool.stop(timeout_s=3.0)
            elapsed = time.monotonic() - start
        assert elapsed < 6.0
        assert pool.alive_count() == 0

    def test_respawn_reaps_the_dead_process(self):
        pool = WarmWorkerPool(1, (DEVICE,))
        pool.start()
        try:
            (worker_id,) = pool.worker_ids()
            old_pid = pool.pid(worker_id)
            assert pool.kill(worker_id)
            new_id = pool.respawn(worker_id)
            assert pool.is_alive(new_id)
            assert pool.pid(new_id) != old_pid
            # The old process must be reaped, not left a zombie.
            if os.path.exists(f"/proc/{old_pid}/stat"):
                with open(f"/proc/{old_pid}/stat") as handle:
                    state = handle.read().rsplit(")", 1)[1].split()[0]
                assert state != "Z", f"pid {old_pid} left as a zombie"
        finally:
            pool.stop()
        assert not pool._stragglers


class TestGracefulDrain:
    def test_drain_journals_queued_and_rejects_typed(self, corpus, tmp_path):
        journal = tmp_path / "drain.jsonl"
        service = CompilationService(workers=1, devices=(DEVICE,))
        service.start()
        jobs = [
            service.submit(CompileRequest(circuit=c, device=DEVICE))
            for c in corpus
        ]
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.update(
                report=service.drain(deadline_s=30.0, journal=journal)
            )
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.stats()["draining"]:
                break
            time.sleep(0.005)
        else:
            pytest.fail("service never reported draining")
        with pytest.raises(ServiceDraining):
            service.submit(CompileRequest(circuit=corpus[0], device=DEVICE))
        thread.join(timeout=60.0)
        report = holder["report"]
        resolved = 0
        journaled_failures = 0
        for job in jobs:
            try:
                job.result(timeout=1.0)
                resolved += 1
            except ServiceError as exc:
                assert "journaled" in str(exc)
                journaled_failures += 1
        assert resolved + journaled_failures == len(jobs)
        assert journaled_failures == report.journaled
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line
        ]
        assert len(lines) == report.journaled
        for line in lines:
            assert line["device"] == DEVICE
            assert "OPENQASM" in line["qasm"]
        assert report.journal_path == str(journal)
        assert not service._running

    def test_drain_idle_service_is_clean(self, corpus, tmp_path):
        service = CompilationService(workers=0, devices=(DEVICE,))
        service.start()
        ServiceClient(service).compile(corpus[0], device=DEVICE)
        report = service.drain(
            deadline_s=5.0, journal=tmp_path / "idle.jsonl"
        )
        assert report.journaled == 0
        assert report.failed_inflight == 0
        assert not report.deadline_hit

    def test_sigterm_triggers_drain(self, corpus, tmp_path):
        service = CompilationService(workers=0, devices=(DEVICE,))
        service.start()
        previous = install_drain_handlers(
            service, journal=tmp_path / "sig.jsonl"
        )
        try:
            with pytest.raises(SystemExit):
                os.kill(os.getpid(), signal.SIGTERM)
                # The signal is delivered between bytecodes; give the
                # interpreter a beat to run the handler.
                for _ in range(100):
                    time.sleep(0.01)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        assert not service._running
