"""The invariant bank: green on healthy code, red on planted bugs."""

import pytest

from repro.circuit import Circuit
from repro.compiler import SabreRouter
from repro.fuzz import (
    FuzzSeed,
    INVARIANT_NAMES,
    check_sample,
    default_bank,
    generate_sample,
    parallel_determinism_failure,
    sample_block,
)
from repro.fuzz.invariants import (
    MetricsTwinInvariant,
    QasmRoundTripInvariant,
    RelabelMetricsInvariant,
    SabreTwinInvariant,
    SkipInvariant,
    WorkspaceRoutingTwinInvariant,
    WorkspaceSimTwinInvariant,
)
from repro.workloads.suite import BenchmarkCircuit


class TestBankShape:
    def test_every_invariant_named_once(self):
        names = [i.name for i in default_bank()]
        assert names == list(INVARIANT_NAMES)
        assert len(set(names)) == len(names)

    def test_differential_and_metamorphic_families_present(self):
        assert {"sabre_twin", "oracle_twin", "metrics_twin"} <= set(
            INVARIANT_NAMES
        )
        assert {
            "mapping_semantics",
            "relabel_metrics",
            "commutation_fidelity",
            "qasm_roundtrip",
        } <= set(INVARIANT_NAMES)


class TestBankOnHealthyCode:
    def test_block_is_green(self):
        # One full class-pairing rotation through the whole bank.
        for sample in sample_block(2022, 16):
            for outcome in check_sample(sample):
                assert outcome.status in ("ok", "skipped"), (
                    f"{sample.describe()}: {outcome!r}"
                )

    def test_outcomes_cover_the_bank(self):
        outcomes = check_sample(generate_sample(FuzzSeed(2022, 0)))
        assert [o.invariant for o in outcomes] == list(INVARIANT_NAMES)

    def test_skip_is_reported_not_failed(self):
        # An empty circuit has no commuting pair to exchange.
        empties = [
            s
            for s in sample_block(2022, 64)
            if s.circuit_class == "pathological" and len(s.circuit) == 0
        ]
        assert empties, "generator produced no empty circuit in 64 samples"
        outcomes = {
            o.invariant: o for o in check_sample(empties[0])
        }
        assert outcomes["commutation_fidelity"].status == "skipped"


class TestDifferentialDetection:
    def test_sabre_twin_catches_divergent_router(self):
        class OffByOne(SabreRouter):
            def _select(self, scores):
                draw = super()._select(scores)
                # Shift the chosen index by one whenever possible.
                return (draw + 1) % max(1, len(list(scores)))

        def buggy(seed, incremental):
            cls = OffByOne if incremental else SabreRouter
            return cls(seed=seed, incremental=incremental)

        invariant = SabreTwinInvariant(buggy)
        messages = [
            invariant.check(s)
            for s in sample_block(2022, 16)
        ]
        assert any(m is not None for m in messages)

    def test_sabre_twin_green_with_stock_router(self):
        invariant = SabreTwinInvariant()
        for sample in sample_block(11, 8):
            assert invariant.check(sample) is None

    def test_metrics_twin_green(self):
        invariant = MetricsTwinInvariant()
        for sample in sample_block(13, 8):
            assert invariant.check(sample) is None

    def test_workspace_twins_in_bank(self):
        assert {"workspace_routing_twin", "workspace_sim_twin"} <= set(
            INVARIANT_NAMES
        )

    def test_workspace_routing_twin_green(self):
        invariant = WorkspaceRoutingTwinInvariant()
        for sample in sample_block(17, 8):
            try:
                assert invariant.check(sample) is None, sample.describe()
            except SkipInvariant:
                continue

    def test_workspace_sim_twin_green(self):
        invariant = WorkspaceSimTwinInvariant()
        checked = 0
        for sample in sample_block(19, 12):
            try:
                assert invariant.check(sample) is None, sample.describe()
            except SkipInvariant:
                continue
            checked += 1
        assert checked > 0, "every sample skipped the dense twin"

    def test_workspace_routing_twin_catches_divergent_router(self):
        # A router whose workspace path draws differently must trip the
        # twin, proving the invariant actually compares the transports.
        class Shifted(SabreRouter):
            def _select(self, scores):
                draw = super()._select(scores)
                if self.use_workspace:
                    return (draw + 1) % max(1, len(list(scores)))
                return draw

        def buggy(seed, incremental):
            return Shifted(seed=seed, incremental=incremental)

        invariant = WorkspaceRoutingTwinInvariant(buggy)
        messages = []
        for sample in sample_block(2022, 16):
            try:
                messages.append(invariant.check(sample))
            except SkipInvariant:
                continue
        assert any(m is not None for m in messages)


class TestMetamorphicDetection:
    def test_relabel_skips_single_qubit(self):
        sample = generate_sample(FuzzSeed(1, 0))
        narrowed = type(sample)(
            seed=sample.seed,
            circuit_class=sample.circuit_class,
            topology_class=sample.topology_class,
            circuit=Circuit(1).h(0),
            device=sample.device,
        )
        with pytest.raises(SkipInvariant):
            RelabelMetricsInvariant().check(narrowed)

    def test_roundtrip_green_on_directives(self):
        circuit = Circuit(3)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        circuit.measure(2)
        sample = generate_sample(FuzzSeed(1, 0))
        doctored = type(sample)(
            seed=sample.seed,
            circuit_class="pathological",
            topology_class=sample.topology_class,
            circuit=circuit,
            device=sample.device,
        )
        assert QasmRoundTripInvariant().check(doctored) is None


class TestParallelDeterminism:
    def test_suite_records_identical_across_worker_counts(self):
        benchmarks = [
            BenchmarkCircuit(s.circuit, "random", s.describe())
            for s in sample_block(2022, 8)
            if len(s.circuit) > 0
        ][:4]
        assert parallel_determinism_failure(benchmarks, (1, 2)) is None
