"""Unit tests for the dependency DAG (repro.circuit.dag)."""

import pytest

from repro.circuit import Circuit, CircuitDag, ExecutionFrontier


def chain():
    return Circuit(3).h(0).cx(0, 1).cx(1, 2)


class TestCircuitDag:
    def test_chain_dependencies(self):
        dag = CircuitDag(chain())
        assert dag.predecessors(0) == ()
        assert dag.predecessors(1) == (0,)
        assert dag.predecessors(2) == (1,)
        assert dag.successors(0) == (1,)

    def test_parallel_gates_independent(self):
        dag = CircuitDag(Circuit(4).h(0).h(1).cx(2, 3))
        assert dag.front_layer() == [0, 1, 2]

    def test_single_dependency_per_qubit(self):
        # Both qubits of gate 2 were last written by gate 1 -> one pred edge.
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        dag = CircuitDag(circuit)
        assert dag.predecessors(1) == (0,)

    def test_barrier_synchronises(self):
        circuit = Circuit(2).h(0).barrier(0, 1).h(1)
        dag = CircuitDag(circuit)
        assert dag.predecessors(1) == (0,)
        assert dag.predecessors(2) == (1,)

    def test_topological_order_respects_deps(self):
        circuit = Circuit(3).h(2).cx(0, 1).cx(1, 2).h(0)
        dag = CircuitDag(circuit)
        position = {node: i for i, node in enumerate(dag.topological_order())}
        for node in range(dag.num_nodes):
            for pred in dag.predecessors(node):
                assert position[pred] < position[node]

    def test_layers_partition_all_nodes(self):
        dag = CircuitDag(chain())
        layers = dag.layers()
        assert sorted(n for layer in layers for n in layer) == [0, 1, 2]
        assert layers == [[0], [1], [2]]

    def test_longest_path(self):
        assert CircuitDag(chain()).longest_path_length() == 3
        wide = Circuit(4).h(0).h(1).h(2).h(3)
        assert CircuitDag(wide).longest_path_length() == 1

    def test_descendants(self):
        dag = CircuitDag(chain())
        assert dag.descendants(0) == {1, 2}
        assert dag.descendants(2) == set()

    def test_empty_circuit(self):
        dag = CircuitDag(Circuit(2))
        assert dag.num_nodes == 0
        assert dag.layers() == []
        assert dag.front_layer() == []


class TestExecutionFrontier:
    def test_progression(self):
        dag = CircuitDag(chain())
        frontier = ExecutionFrontier(dag)
        assert frontier.ready == {0}
        assert frontier.complete(0) == [1]
        assert frontier.ready == {1}
        frontier.complete(1)
        frontier.complete(2)
        assert frontier.exhausted

    def test_complete_not_ready_rejected(self):
        frontier = ExecutionFrontier(CircuitDag(chain()))
        with pytest.raises(ValueError, match="not ready"):
            frontier.complete(2)

    def test_diamond(self):
        # gate0 on q0, then two independent gates, then a joining gate.
        circuit = Circuit(2).h(0).x(0).y(1).cx(0, 1)
        frontier = ExecutionFrontier(CircuitDag(circuit))
        assert frontier.ready == {0, 2}
        frontier.complete(0)
        assert frontier.ready == {1, 2}
        frontier.complete(1)
        frontier.complete(2)
        assert frontier.ready == {3}

    def test_exhausted_on_empty(self):
        frontier = ExecutionFrontier(CircuitDag(Circuit(1)))
        assert frontier.exhausted
