"""Unit tests for the topology generators (repro.hardware.library)."""

import math

import pytest

from repro.hardware import (
    TOPOLOGY_GENERATORS,
    TopologyError,
    fully_connected,
    grid,
    heavy_hex,
    line,
    ring,
    rotated_surface_code,
    square_grid,
    star,
    surface7,
    surface17,
    surface_code_grid,
)


class TestSurfaceLattices:
    def test_surface7_shape(self):
        graph = surface7()
        assert graph.num_qubits == 7
        assert graph.num_edges == 8
        assert graph.is_connected()
        assert graph.max_degree() == 4
        # The central qubit (3) has full degree.
        assert graph.degree(3) == 4

    def test_surface17_shape(self):
        graph = surface17()
        assert graph.num_qubits == 17
        assert graph.is_connected()
        assert graph.max_degree() == 4
        # distance-3 rotated code: 24 data-ancilla couplings.
        assert graph.num_edges == 24

    @pytest.mark.parametrize("distance", [2, 3, 4, 5, 6])
    def test_rotated_surface_code_counts(self, distance):
        graph = rotated_surface_code(distance)
        assert graph.num_qubits == 2 * distance * distance - 1
        assert graph.is_connected()
        assert graph.max_degree() <= 4

    def test_rotated_surface_code_bipartite_structure(self):
        # Data qubits sit at even/even positions, ancillas at odd/odd; every
        # edge joins one of each, so the graph is bipartite.
        graph = rotated_surface_code(3)
        positions = graph.positions
        for a, b in graph.edges:
            xa = positions[a][0]
            xb = positions[b][0]
            assert (xa % 2 == 0) != (xb % 2 == 0)

    def test_rotated_surface_code_min_distance(self):
        with pytest.raises(TopologyError):
            rotated_surface_code(1)

    @pytest.mark.parametrize("n", [1, 5, 7, 17, 50, 100])
    def test_surface_code_grid_exact_size(self, n):
        graph = surface_code_grid(n)
        assert graph.num_qubits == n
        assert graph.is_connected()
        assert graph.max_degree() <= 4

    def test_surface_code_grid_100_is_paper_device(self):
        graph = surface_code_grid(100)
        assert graph.num_qubits == 100
        # Planar lattice: diameter grows like sqrt(n).
        assert 10 <= graph.diameter() <= 25

    def test_surface_code_grid_rejects_zero(self):
        with pytest.raises(TopologyError):
            surface_code_grid(0)


class TestRegularTopologies:
    def test_grid(self):
        graph = grid(3, 4)
        assert graph.num_qubits == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.is_connected()
        assert graph.max_degree() == 4

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(TopologyError):
            grid(0, 3)

    @pytest.mark.parametrize("n", [1, 4, 9, 10, 23])
    def test_square_grid_exact(self, n):
        graph = square_grid(n)
        assert graph.num_qubits == n
        assert graph.is_connected()

    def test_line(self):
        graph = line(5)
        assert graph.num_edges == 4
        assert graph.diameter() == 4
        assert graph.max_degree() == 2

    def test_ring(self):
        graph = ring(6)
        assert graph.num_edges == 6
        assert graph.diameter() == 3
        assert all(graph.degree(q) == 2 for q in range(6))

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_fully_connected(self):
        graph = fully_connected(5)
        assert graph.num_edges == 10
        assert graph.diameter() == 1

    def test_star(self):
        graph = star(5)
        assert graph.degree(0) == 4
        assert all(graph.degree(q) == 1 for q in range(1, 5))
        assert graph.diameter() == 2

    def test_heavy_hex(self):
        graph = heavy_hex(2, 2)
        assert graph.is_connected()
        assert graph.max_degree() == 3
        # Subdividing every edge doubles path parity: no triangles.
        for a, b in graph.edges:
            shared = graph.neighbors(a) & graph.neighbors(b)
            assert not shared


class TestGeneratorRegistry:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_GENERATORS))
    def test_generators_produce_requested_size(self, name):
        generator = TOPOLOGY_GENERATORS[name]
        graph = generator(8)
        assert graph.num_qubits == 8
        assert graph.is_connected()
