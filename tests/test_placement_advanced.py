"""Unit tests for the advanced placement passes (isomorphism / SABRE)."""

import pytest

from repro.circuit import Circuit
from repro.compiler import (
    IsomorphismPlacement,
    Layout,
    QuantumMapper,
    SabrePlacement,
    SabreRouter,
    TrivialPlacement,
    TrivialRouter,
)
from repro.core import InteractionGraph
from repro.hardware import line_device, surface17_device, surface7_device
from repro.workloads import ghz_state, ising_ring, qft, random_circuit


class TestIsomorphismPlacement:
    def test_chain_embeds_on_line_with_zero_swaps(self):
        device = line_device(6)
        circuit = ghz_state(6)
        mapper = QuantumMapper(IsomorphismPlacement(), TrivialRouter())
        result = mapper.map(circuit, device)
        assert result.swap_count == 0
        assert result.verify()

    def test_ring_embeds_on_surface(self, dev17):
        # An 8-cycle is a subgraph of the Surface-17 lattice.
        circuit = ising_ring(8, steps=1)
        placement = IsomorphismPlacement()
        layout = placement.place(circuit, dev17)
        graph = InteractionGraph.from_circuit(circuit)
        for a, b, _ in graph.edges():
            assert dev17.coupling.are_adjacent(layout.physical(a), layout.physical(b))

    def test_embedding_is_exact_or_none(self, dev7):
        placement = IsomorphismPlacement()
        graph = InteractionGraph.from_circuit(ghz_state(4))
        embedding = placement.find_embedding(graph, dev7)
        assert embedding is not None
        for a, b, _ in graph.edges():
            assert dev7.coupling.are_adjacent(embedding[a], embedding[b])

    def test_dense_graph_returns_none(self, dev7):
        # K5 needs degree 4 everywhere; surface-7 has only one degree-4 node.
        circuit = Circuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                circuit.cz(a, b)
        placement = IsomorphismPlacement()
        graph = InteractionGraph.from_circuit(circuit)
        assert placement.find_embedding(graph, dev7) is None

    def test_falls_back_gracefully(self, dev7):
        circuit = Circuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                circuit.cz(a, b)
        layout = IsomorphismPlacement().place(circuit, dev7)
        images = [layout.physical(v) for v in range(5)]
        assert len(set(images)) == 5

    def test_degree_prefilter(self, dev7):
        # A star with 5 leaves needs a degree-5 hub; surface-7 max is 4.
        circuit = Circuit(6)
        for leaf in range(1, 6):
            circuit.cz(0, leaf)
        graph = InteractionGraph.from_circuit(circuit)
        assert IsomorphismPlacement().find_embedding(graph, dev7) is None

    def test_isolated_qubits_parked(self, dev7):
        circuit = Circuit(5).cz(0, 1)  # qubits 2-4 never interact
        layout = IsomorphismPlacement().place(circuit, dev7)
        images = [layout.physical(v) for v in range(5)]
        assert len(set(images)) == 5
        assert dev7.coupling.are_adjacent(layout.physical(0), layout.physical(1))

    def test_empty_interaction_graph(self, dev7):
        layout = IsomorphismPlacement().place(Circuit(3).h(0), dev7)
        assert layout.num_virtual == 3

    def test_budget_exhaustion_falls_back(self, dev17):
        placement = IsomorphismPlacement(max_nodes=1)
        circuit = ising_ring(8, steps=1)
        layout = placement.place(circuit, dev17)  # must not raise
        assert layout.num_virtual == circuit.num_qubits

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            IsomorphismPlacement(max_nodes=0)


class TestSabrePlacement:
    def test_valid_layout(self, dev17):
        circuit = random_circuit(10, 80, 0.5, seed=1)
        layout = SabrePlacement(seed=0).place(circuit, dev17)
        images = [layout.physical(v) for v in range(10)]
        assert len(set(images)) == 10

    def test_beats_trivial_placement(self, dev17):
        circuit = qft(10, do_swaps=False)
        router = SabreRouter(seed=0)
        trivial_layout = TrivialPlacement().place(circuit, dev17)
        sabre_layout = SabrePlacement(iterations=2, seed=0).place(circuit, dev17)
        base = router.route(circuit, dev17, trivial_layout).swap_count
        refined = router.route(circuit, dev17, sabre_layout).swap_count
        assert refined <= base

    def test_end_to_end_verified(self, dev7):
        mapper = QuantumMapper(SabrePlacement(seed=3), SabreRouter(seed=3))
        result = mapper.map(random_circuit(6, 40, 0.4, seed=2), dev7)
        assert result.verify()

    def test_handles_directives(self, dev7):
        circuit = Circuit(4).h(0).cx(0, 1).barrier().measure_all()
        layout = SabrePlacement(seed=0).place(circuit, dev7)
        assert layout.num_virtual == 4

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            SabrePlacement(iterations=0)
