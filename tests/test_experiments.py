"""Integration tests for the figure/table experiment harnesses.

These run the paper's pipeline on a reduced suite (fast) and assert the
*shapes* the paper reports; the full 200-circuit runs live in
benchmarks/.
"""

import pytest

from repro.experiments import (
    GATE_LIMIT_A_C,
    MappingRecord,
    fig3_data,
    fig3_summary,
    fig5_data,
    fig5_summary,
    format_fig3,
    format_fig4,
    format_fig5,
    format_table1,
    paper_configuration,
    run_fig4,
    run_suite,
    run_table1,
)
from repro.compiler import sabre_mapper
from repro.hardware import surface17_device
from repro.workloads import evaluation_suite


@pytest.fixture(scope="module")
def records():
    suite = evaluation_suite(
        num_circuits=24, seed=5, max_qubits=16, max_gates=300
    )
    return run_suite(suite, device=surface17_device())


class TestRunSuite:
    def test_one_record_per_benchmark(self, records):
        assert len(records) == 24

    def test_record_consistency(self, records):
        for record in records:
            assert record.gates_after >= record.gates_before
            assert record.fidelity_after <= record.fidelity_before + 1e-12
            assert 0.0 <= record.fidelity_decrease <= 1.0
            assert record.gate_overhead_percent >= 0.0
            assert record.family in ("random", "reversible", "real")

    def test_wider_than_device_skipped(self):
        suite = evaluation_suite(
            num_circuits=6, seed=2, max_qubits=40, max_gates=50
        )
        records = run_suite(suite, device=surface17_device())
        assert all(r.size.num_qubits <= 17 for r in records)

    def test_custom_mapper(self):
        suite = evaluation_suite(num_circuits=3, seed=1, max_qubits=8, max_gates=60)
        trivial_records = run_suite(suite, device=surface17_device())
        sabre_records = run_suite(
            suite, device=surface17_device(), mapper=sabre_mapper()
        )
        assert sum(r.swap_count for r in sabre_records) <= sum(
            r.swap_count for r in trivial_records
        )

    def test_progress_callback(self):
        suite = evaluation_suite(num_circuits=3, seed=1, max_qubits=8, max_gates=40)
        seen = []
        run_suite(
            suite,
            device=surface17_device(),
            progress=lambda i, n, name: seen.append((i, n)),
        )
        assert len(seen) == 3

    def test_paper_configuration(self):
        device = paper_configuration()
        assert device.num_qubits == 100
        assert device.calibration.two_qubit_error == pytest.approx(0.01)

    def test_record_as_dict(self, records):
        record = records[0].as_dict()
        assert "gate_overhead_percent" in record
        assert "metric_adjacency_std" in record


class TestFig3:
    def test_panel_a_gate_limit(self, records):
        data = fig3_data(records)
        assert all(p.x < GATE_LIMIT_A_C for p in data.panel_a)

    def test_panel_b_includes_everything(self, records):
        data = fig3_data(records)
        assert len(data.panel_b) == len(records)

    def test_paper_shapes(self, records):
        summary = fig3_summary(fig3_data(records))
        # (a) fidelity decays with gate count.
        assert summary["a_spearman"] < -0.5
        # (b) overhead grows with 2q%.
        assert summary["b_spearman"] > 0.0
        # (c) fidelity decrease grows with overhead.
        assert summary["c_spearman"] > 0.0
        # synthetic circuits pay more than real algorithms on average.
        assert (
            summary["b_mean_overhead_synthetic"] > summary["b_mean_overhead_real"]
        )

    def test_format(self, records):
        text = format_fig3(fig3_data(records))
        assert "Fig. 3(a)" in text and "Fig. 3(b)" in text and "Fig. 3(c)" in text
        assert "Summary statistics" in text


class TestFig4:
    def test_premise_and_contrast(self):
        result = run_fig4()
        assert result.size_parameters_match()
        contrast = result.structural_contrast()
        # Random side denser, QAOA side more weight-dispersed.
        assert contrast["num_edges"][1] > contrast["num_edges"][0]
        assert contrast["density"][1] > contrast["density"][0]
        assert contrast["avg_shortest_path"][0] > contrast["avg_shortest_path"][1]

    def test_format(self):
        text = format_fig4(run_fig4())
        assert "Fig. 4" in text
        assert "QAOA" in text and "Random" in text


class TestFig5:
    def test_series_lengths(self, records):
        data = fig5_data(records)
        assert len(data.series) == 3
        for series in data.series:
            assert len(series.x) == len(records)

    def test_paper_signs(self, records):
        summary = fig5_summary(fig5_data(records))
        assert summary["sign_ok_adjacency_std"] == 1.0
        assert summary["sign_ok_max_degree"] == 1.0

    def test_panel_lookup(self, records):
        data = fig5_data(records)
        assert data.panel("max_degree").metric == "max_degree"
        with pytest.raises(KeyError):
            data.panel("nonsense")

    def test_format(self, records):
        text = format_fig5(fig5_data(records))
        assert "Spearman" in text


class TestTable1:
    def test_reduction_keeps_paper_metrics(self, records):
        result = run_table1(records)
        assert "avg_shortest_path" in result.retained
        assert "adjacency_std" in result.retained
        assert len(result.paper_metrics_retained) >= 3

    def test_format(self, records):
        text = format_table1(run_table1(records))
        assert "Table I" in text
        assert "retained:" in text


class TestStratifiedSpearman:
    def test_controls_for_width(self, records):
        from repro.experiments import stratified_spearman

        value = stratified_spearman(
            records,
            lambda r: r.metrics.max_degree,
            bands=((2, 8), (9, 16)),
            min_band_size=3,
        )
        assert -1.0 <= value <= 1.0

    def test_custom_target(self, records):
        from repro.experiments import stratified_spearman

        value = stratified_spearman(
            records,
            lambda r: r.size.num_gates,
            target_fn=lambda r: r.gates_after,
            bands=((2, 16),),
            min_band_size=3,
        )
        # More input gates means more output gates, within any band.
        assert value > 0.8

    def test_no_valid_band_raises(self, records):
        from repro.experiments import stratified_spearman

        with pytest.raises(ValueError, match="no band"):
            stratified_spearman(
                records, lambda r: r.metrics.max_degree, bands=((1000, 2000),)
            )


class TestFig5DecileContrast:
    def test_contrast_structure(self, records):
        from repro.experiments import fig5_decile_contrast

        contrast = fig5_decile_contrast(fig5_data(records))
        assert set(contrast) == {
            "adjacency_std",
            "avg_shortest_path",
            "max_degree",
        }
        for top, rest, ok in contrast.values():
            assert isinstance(ok, bool)

    def test_decile_validated(self, records):
        from repro.experiments import fig5_decile_contrast

        with pytest.raises(ValueError):
            fig5_decile_contrast(fig5_data(records), decile=0.0)


class TestFig2:
    def test_caption_facts(self):
        from repro.experiments import run_fig2

        result = run_fig2()
        assert result.device.num_qubits == 7
        assert result.swap_count == 1
        assert result.verified()

    def test_weighted_interaction_graph(self):
        from repro.experiments import run_fig2

        result = run_fig2()
        weights = [w for _, _, w in result.interaction.edges()]
        assert max(weights) > 1  # the figure shows a weighted graph

    def test_format(self):
        from repro.experiments import format_fig2, run_fig2

        text = format_fig2(run_fig2())
        assert "Fig. 2" in text
        assert "SWAP" in text
        assert "Q0 -- Q2" in text


class TestRecordsCsv:
    def test_roundtrippable_csv(self, records, tmp_path):
        import csv

        from repro.experiments import records_to_csv

        path = records_to_csv(records, tmp_path / "records.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(records)
        assert float(rows[0]["gate_overhead_percent"]) == pytest.approx(
            records[0].gate_overhead_percent
        )
        assert "metric_adjacency_std" in rows[0]

    def test_empty_rejected(self, tmp_path):
        from repro.experiments import records_to_csv

        with pytest.raises(ValueError):
            records_to_csv([], tmp_path / "nothing.csv")


class TestGenerateReport:
    def test_markdown_structure(self, records):
        from repro.experiments import generate_report

        report = generate_report(
            records, title="Test sweep", device_name="surface-17",
            mapper_name="trivial",
        )
        assert report.startswith("# Test sweep")
        assert "## Headline" in report
        assert "## Per benchmark family" in report
        assert "## Highest-overhead circuits" in report
        assert "## Interaction-graph metrics vs overhead" in report
        # One family row per family present.
        for family in {r.family for r in records}:
            assert f"| {family} |" in report

    def test_worst_limit(self, records):
        from repro.experiments import generate_report

        report = generate_report(records, worst=3)
        section = report.split("## Highest-overhead circuits")[1]
        section = section.split("##")[0]  # cut at the next heading
        table_rows = [
            line for line in section.splitlines()
            if line.startswith("|") and "---" not in line and "circuit |" not in line
        ]
        assert len(table_rows) == 3

    def test_empty_rejected(self):
        from repro.experiments import generate_report

        with pytest.raises(ValueError):
            generate_report([])
