"""Unit tests for the instrumented pass manager."""

import pytest

from repro.circuit import Circuit
from repro.compiler import PassManager, decompose_circuit, optimize_circuit
from repro.hardware import SURFACE17_GATESET
from repro.workloads import qft


def _decompose(circuit):
    return decompose_circuit(circuit, SURFACE17_GATESET)


class TestPassManager:
    def test_runs_in_order(self):
        manager = (
            PassManager()
            .append("decompose", _decompose)
            .append("optimize", optimize_circuit)
        )
        transcript = manager.run(qft(4, do_swaps=False))
        assert [r.name for r in transcript.records] == ["decompose", "optimize"]
        # The optimiser consumes the decomposer's output.
        assert (
            transcript.records[1].gates_before
            == transcript.records[0].gates_after
        )
        assert transcript.circuit.num_gates == transcript.records[-1].gates_after

    def test_output_in_gate_set(self):
        manager = PassManager([("decompose", _decompose)])
        transcript = manager.run(qft(3))
        assert all(SURFACE17_GATESET.supports(g) for g in transcript.circuit)

    def test_records_timing(self):
        transcript = PassManager([("decompose", _decompose)]).run(qft(5))
        assert transcript.records[0].seconds >= 0.0
        assert transcript.total_seconds >= transcript.records[0].seconds

    def test_stage_lookup(self):
        transcript = PassManager([("decompose", _decompose)]).run(qft(3))
        assert transcript.stage("decompose").name == "decompose"
        with pytest.raises(KeyError):
            transcript.stage("missing")

    def test_gate_delta(self):
        transcript = PassManager([("decompose", _decompose)]).run(qft(3))
        record = transcript.records[0]
        assert record.gate_delta == record.gates_after - record.gates_before
        assert record.gate_delta > 0  # cp gates expand

    def test_format(self):
        transcript = (
            PassManager()
            .append("decompose", _decompose)
            .append("optimize", optimize_circuit)
            .run(qft(3))
        )
        text = transcript.format()
        assert "decompose" in text and "optimize" in text
        assert "total:" in text

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            PassManager().append("broken", 42)

    def test_non_circuit_return_rejected(self):
        manager = PassManager([("broken", lambda c: "oops")])
        with pytest.raises(TypeError, match="expected Circuit"):
            manager.run(Circuit(1).h(0))

    def test_validation_catches_bad_pass(self):
        def corrupting(circuit):
            out = circuit.copy()
            out.x(0)
            return out

        manager = PassManager([("corrupt", corrupting)], validate=True)
        with pytest.raises(RuntimeError, match="changed the circuit"):
            manager.run(Circuit(2).h(0))

    def test_validation_passes_good_pipeline(self):
        manager = PassManager(
            [("decompose", _decompose), ("optimize", optimize_circuit)],
            validate=True,
        )
        transcript = manager.run(qft(3, do_swaps=False))
        assert transcript.circuit.num_gates > 0

    def test_empty_manager(self):
        circuit = Circuit(2).h(0)
        transcript = PassManager().run(circuit)
        assert transcript.records == []
        assert transcript.circuit == circuit
        assert len(PassManager()) == 0


class TestTranscriptExport:
    def _transcript(self):
        return (
            PassManager()
            .append("decompose", _decompose)
            .append("optimize", optimize_circuit)
            .run(qft(4, do_swaps=False))
        )

    def test_to_dict_carries_deltas(self):
        payload = self._transcript().to_dict()
        assert [p["name"] for p in payload["passes"]] == [
            "decompose",
            "optimize",
        ]
        for stage in payload["passes"]:
            assert stage["gate_delta"] == (
                stage["gates_after"] - stage["gates_before"]
            )
            assert stage["depth_delta"] == (
                stage["depth_after"] - stage["depth_before"]
            )
        # Decomposition expands cp gates; optimisation never grows.
        assert payload["passes"][0]["gate_delta"] > 0
        assert payload["passes"][1]["gate_delta"] <= 0

    def test_to_dict_final_sizes_match_circuit(self):
        transcript = self._transcript()
        payload = transcript.to_dict()
        assert payload["final_num_gates"] == transcript.circuit.num_gates
        assert payload["final_depth"] == transcript.circuit.depth()
        assert payload["final_num_qubits"] == transcript.circuit.num_qubits
        assert payload["total_seconds"] == pytest.approx(
            transcript.total_seconds
        )

    def test_to_json_round_trips(self):
        import json

        transcript = self._transcript()
        assert json.loads(transcript.to_json()) == transcript.to_dict()
        assert json.loads(transcript.to_json(indent=2)) == transcript.to_dict()

    def test_mid_pipeline_failure_propagates(self):
        # A pass blowing up mid-pipeline must surface its own error, not
        # a partial transcript: later passes never run.
        ran = []

        def exploding(circuit):
            raise ValueError("stage two is broken")

        def recording(circuit):
            ran.append(True)
            return circuit

        manager = (
            PassManager()
            .append("decompose", _decompose)
            .append("explode", exploding)
            .append("after", recording)
        )
        with pytest.raises(ValueError, match="stage two is broken"):
            manager.run(qft(3))
        assert ran == []
