"""Semantic tests for the reversible-logic workloads (classical oracle)."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.sim import Simulator, basis_state
from repro.workloads import (
    cuccaro_adder,
    increment_circuit,
    majority_vote_circuit,
    parity_circuit,
    random_reversible_circuit,
)


def run_classical(circuit: Circuit, bits):
    """Run a reversible circuit on a basis state; return the output bits."""
    state = basis_state(circuit.num_qubits, bits)
    out = Simulator(0).run(circuit.without_directives(), initial_state=state)
    amplitudes = out.state.reshape(-1)
    index = int(np.argmax(np.abs(amplitudes)))
    assert abs(amplitudes[index]) == pytest.approx(1.0)
    n = circuit.num_qubits
    return [(index >> (n - 1 - q)) & 1 for q in range(n)]


class TestCuccaroAdder:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exhaustive_addition(self, n):
        adder = cuccaro_adder(n)
        for a in range(2 ** n):
            for b in range(2 ** n):
                bits = [0] * (2 * n + 2)
                for i in range(n):
                    bits[1 + i] = (b >> i) & 1
                    bits[n + 1 + i] = (a >> i) & 1
                out = run_classical(adder, bits)
                total = sum(out[1 + i] << i for i in range(n))
                total += out[2 * n + 1] << n
                assert total == a + b, (a, b)
                # The a register is restored.
                restored = sum(out[n + 1 + i] << i for i in range(n))
                assert restored == a

    def test_carry_in(self):
        adder = cuccaro_adder(2)
        bits = [1, 1, 0, 1, 0, 0]  # c=1, b=1, a=1
        out = run_classical(adder, bits)
        total = out[1] + (out[2] << 1) + (out[5] << 2)
        assert total == 3  # 1 + 1 + carry-in 1

    def test_gate_vocabulary(self):
        assert set(cuccaro_adder(3).count_ops()) <= {"x", "cx", "ccx"}

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            cuccaro_adder(0)


class TestParity:
    @pytest.mark.parametrize(
        "bits", [[0, 0, 0], [1, 0, 0], [1, 1, 0], [1, 1, 1]]
    )
    def test_parity(self, bits):
        circuit = parity_circuit(3)
        out = run_classical(circuit, bits + [0])
        assert out[3] == sum(bits) % 2


class TestIncrement:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive(self, n):
        circuit = increment_circuit(n)
        ancillas = circuit.num_qubits - n
        for value in range(2 ** n):
            bits = [(value >> i) & 1 for i in range(n)] + [0] * ancillas
            out = run_classical(circuit, bits)
            result = sum(out[i] << i for i in range(n))
            assert result == (value + 1) % 2 ** n
            # Ancillas restored.
            assert all(out[n + i] == 0 for i in range(ancillas))


class TestMajorityVote:
    @pytest.mark.parametrize(
        "votes,expected",
        [
            ([0, 0, 0], 0),
            ([1, 0, 0], 0),
            ([1, 1, 0], 1),
            ([1, 1, 1], 1),
        ],
    )
    def test_majority_of_three(self, votes, expected):
        circuit = majority_vote_circuit(3)
        out = run_classical(circuit, votes + [0])
        assert out[3] == expected

    def test_rejects_even_voters(self):
        with pytest.raises(ValueError):
            majority_vote_circuit(4)


class TestRandomReversible:
    def test_gate_vocabulary(self):
        circuit = random_reversible_circuit(6, 100, seed=0)
        assert set(circuit.count_ops()) <= {"x", "cx", "ccx"}

    def test_size_and_determinism(self):
        a = random_reversible_circuit(5, 64, seed=1)
        assert len(a) == 64
        assert a == random_reversible_circuit(5, 64, seed=1)

    def test_is_classical_permutation(self):
        # On any basis state the output is a single basis state.
        circuit = random_reversible_circuit(4, 30, seed=2)
        out = run_classical(circuit, [1, 0, 1, 0])
        assert all(bit in (0, 1) for bit in out)

    def test_degrades_gracefully_on_small_registers(self):
        circuit = random_reversible_circuit(2, 50, seed=3)
        assert set(circuit.count_ops()) <= {"x", "cx"}
        single = random_reversible_circuit(1, 20, seed=4)
        assert set(single.count_ops()) <= {"x"}

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            random_reversible_circuit(4, 10, toffoli_fraction=0.8, cnot_fraction=0.5)
