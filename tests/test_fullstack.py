"""Unit tests for the QISA, control model and full-stack pipeline."""

import pytest

from repro.circuit import Circuit
from repro.compiler import asap_schedule, trivial_mapper
from repro.core import MapperAdvisor
from repro.fullstack import (
    ControlModel,
    FullStack,
    IsaProgram,
    compile_to_isa,
)
from repro.hardware import surface7_device
from repro.workloads import ghz_state


class TestIsa:
    def test_bundles_group_parallel_ops(self):
        schedule = asap_schedule(Circuit(4).h(0).h(1).h(2).h(3))
        program = compile_to_isa(schedule)
        assert len(program.bundles) == 1
        assert len(program.bundles[0].instructions) == 4

    def test_qwait_between_bundles(self):
        # h (20ns) then measure (300ns) then h: cycle 0, 1, then 1+15=16.
        schedule = asap_schedule(Circuit(1).h(0).measure(0).h(0))
        program = compile_to_isa(schedule, cycle_ns=20.0)
        waits = [b.wait_cycles for b in program.bundles]
        assert waits[0] == 0
        assert waits[2] == 14  # 300ns / 20ns = 15 cycles, minus issue slot

    def test_mnemonics(self):
        schedule = asap_schedule(Circuit(2).h(0).cz(0, 1).measure(1))
        program = compile_to_isa(schedule)
        histogram = program.instruction_histogram()
        assert histogram == {"H": 1, "CZ": 1, "MEASZ": 1}

    def test_text_rendering(self):
        schedule = asap_schedule(Circuit(2).rz(0.5, 0).cz(0, 1))
        text = compile_to_isa(schedule).to_text()
        assert "RZ Q0, 0.500000" in text
        assert "CZ Q0, Q1" in text

    def test_barriers_dropped(self):
        schedule = asap_schedule(Circuit(2).h(0).barrier())
        program = compile_to_isa(schedule)
        assert program.num_instructions == 1

    def test_duration_cycles(self):
        schedule = asap_schedule(Circuit(1).h(0).h(0).h(0))
        program = compile_to_isa(schedule, cycle_ns=20.0)
        assert program.duration_cycles == 3

    def test_cycle_validation(self):
        schedule = asap_schedule(Circuit(1).h(0))
        with pytest.raises(ValueError):
            compile_to_isa(schedule, cycle_ns=0.0)


class TestControlModel:
    def test_violation_detection(self):
        schedule = asap_schedule(Circuit(4).cz(0, 1).cz(2, 3))
        strict = ControlModel(max_parallel_2q=1)
        violations = strict.violations(schedule)
        assert violations
        assert violations[0].kind == "two-qubit"
        assert violations[0].count == 2

    def test_satisfied_when_unconstrained(self):
        schedule = asap_schedule(Circuit(4).cz(0, 1).cz(2, 3))
        assert ControlModel().satisfies(schedule)

    def test_reschedule_fixes_violations(self):
        schedule = asap_schedule(Circuit(4).cz(0, 1).cz(2, 3))
        strict = ControlModel(max_parallel_2q=1)
        fixed = strict.reschedule(schedule)
        assert strict.satisfies(fixed)
        assert fixed.latency_ns > schedule.latency_ns

    def test_measurement_limit(self):
        schedule = asap_schedule(Circuit(3).measure(0).measure(1).measure(2))
        model = ControlModel(max_parallel_measure=2)
        assert not model.satisfies(schedule)

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            ControlModel(max_parallel_2q=0)


class TestFullStack:
    def test_end_to_end_ghz(self, dev7):
        stack = FullStack(dev7, mapper=trivial_mapper())
        report = stack.execute(ghz_state(3), shots=200, seed=0)
        assert report.mapping.verify()
        assert report.latency_ns > 0
        assert report.program.num_instructions > 0
        assert 0.0 < report.estimated_fidelity < 1.0
        # GHZ statistics survive mapping: only the two extremal outcomes.
        assert report.counts is not None
        assert sum(report.counts.values()) == 200
        top_two = sorted(report.counts.values(), reverse=True)[:2]
        assert sum(top_two) == 200

    def test_no_shots_no_counts(self, dev7):
        report = FullStack(dev7).execute(ghz_state(3))
        assert report.counts is None

    def test_control_constraint_stretches_latency(self, dev7):
        circuit = Circuit(4).cz(0, 3).cz(1, 4) if False else ghz_state(5)
        free = FullStack(dev7).execute(circuit)
        tight = FullStack(dev7, control=ControlModel(max_parallel_2q=1)).execute(
            circuit
        )
        assert tight.latency_ns >= free.latency_ns

    def test_advisor_stack(self, dev7):
        stack = FullStack(dev7, advisor=MapperAdvisor())
        report = stack.execute(ghz_state(4))
        assert report.mapping.mapper_name in ("light", "sabre")

    def test_mapper_and_advisor_exclusive(self, dev7):
        with pytest.raises(ValueError, match="not both"):
            FullStack(dev7, mapper=trivial_mapper(), advisor=MapperAdvisor())

    def test_compile_only(self, dev7):
        result = FullStack(dev7).compile(ghz_state(3))
        assert result.mapped.num_gates >= 3
