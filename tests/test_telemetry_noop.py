"""Disabled telemetry is a true no-op.

The instrumented stack must behave *bit for bit* like the
pre-instrumentation code when telemetry is off (the default): identical
routed circuits (the router's RNG stream is untouched), zero span
records, zero metric series — and the monotonic clock source is
surfaced wherever timings are reported.
"""

from repro.compiler import PassManager, decompose_circuit, sabre_mapper
from repro.compiler.layout import Layout
from repro.compiler.routing import SabreRouter
from repro.hardware import SURFACE17_GATESET, surface17_device
from repro.sim import verify_mapping
from repro.telemetry import metrics, tracing
from repro.telemetry.clock import CLOCK_SOURCE
from repro.workloads import qft


def _routed(enabled: bool):
    """Route the same circuit with telemetry on/off; fresh seeded router."""
    device = surface17_device()
    circuit = decompose_circuit(qft(6, do_swaps=False), device.gate_set)
    layout = Layout.trivial(circuit.num_qubits, device.num_qubits)
    with tracing.capture(enabled=enabled) as spans:
        router = SabreRouter(seed=11)
        result = router.route(circuit, device, layout)
    return result, spans


class TestNoopGuarantee:
    def test_disabled_routing_matches_enabled_bit_for_bit(self):
        off, off_spans = _routed(enabled=False)
        on, on_spans = _routed(enabled=True)
        # Instrumentation must not perturb the router: same RNG stream,
        # same swaps, same circuit, same layout either way.
        assert off.circuit == on.circuit
        assert off.swap_count == on.swap_count
        assert off.bridge_count == on.bridge_count
        assert off.final_layout == on.final_layout
        # ...and disabled telemetry records exactly nothing.
        assert off_spans == []
        assert [s.name for s in on_spans] == ["route.sabre"]

    def test_disabled_mapping_records_nothing(self):
        device = surface17_device()
        circuit = qft(5, do_swaps=False)
        with tracing.capture(enabled=False) as spans:
            with metrics.capture_registry() as registry:
                sabre_mapper(seed=3).map(circuit, device)
        assert spans == []
        assert registry.snapshot() == {}

    def test_disabled_oracle_matches_enabled_verdict(self):
        device = surface17_device()
        result = sabre_mapper(seed=3).map(qft(4, do_swaps=False), device)
        args = (
            result.decomposed,
            result.mapped,
            result.initial_layout,
            result.final_layout,
        )
        with tracing.capture(enabled=False) as spans:
            off = verify_mapping(*args)
        assert spans == []
        with tracing.capture(enabled=True) as spans:
            on = verify_mapping(*args)
        assert off is on is True
        assert [s.name for s in spans] == ["oracle.verify"]
        assert spans[0].attributes["verdict"] is True


class TestClockSource:
    def test_transcript_surfaces_clock_source(self):
        manager = PassManager(
            [("decompose", lambda c: decompose_circuit(c, SURFACE17_GATESET))]
        )
        transcript = manager.run(qft(3))
        payload = transcript.to_dict()
        assert payload["clock_source"] == CLOCK_SOURCE == "time.perf_counter"

    def test_pass_spans_recorded_when_enabled(self):
        manager = PassManager(
            [("decompose", lambda c: decompose_circuit(c, SURFACE17_GATESET))]
        )
        with tracing.capture() as spans:
            manager.run(qft(3))
        names = [s.name for s in spans]
        assert names == ["pass.decompose", "pipeline.run"]
