"""Tests for device-config JSON I/O, suite reporting and BRIDGE routing."""

import json

import pytest

from repro.circuit import Circuit
from repro.compiler import Layout, TrivialRouter
from repro.hardware import (
    Device,
    SURFACE17_CALIBRATION,
    device_from_json,
    device_to_json,
    line_device,
    load_device,
    save_device,
    surface17_device,
)
from repro.sim import verify_mapping
from repro.workloads import (
    format_suite_summary,
    small_suite,
    summarize_suite,
)


class TestDeviceConfig:
    def test_roundtrip_surface17(self):
        device = surface17_device()
        clone = device_from_json(device_to_json(device))
        assert clone.coupling == device.coupling
        assert clone.gate_set.gate_names == device.gate_set.gate_names
        assert clone.calibration.two_qubit_error == pytest.approx(
            device.calibration.two_qubit_error
        )
        assert clone.name == device.name

    def test_roundtrip_with_overrides(self):
        calibration = SURFACE17_CALIBRATION.with_qubit_error(2, 0.05)
        calibration = calibration.with_edge_error(0, 3, 0.08)
        device = Device(
            surface17_device().coupling, calibration, surface17_device().gate_set
        )
        clone = device_from_json(device_to_json(device))
        from repro.circuit import Gate

        assert clone.calibration.gate_error(Gate("x", (2,))) == 0.05
        assert clone.calibration.gate_error(Gate("cz", (3, 0))) == 0.08

    def test_positions_preserved(self):
        device = surface17_device()
        clone = device_from_json(device_to_json(device))
        assert clone.coupling.positions == device.coupling.positions

    def test_file_roundtrip(self, tmp_path):
        path = save_device(line_device(4), tmp_path / "line4.json")
        device = load_device(path)
        assert device.num_qubits == 4
        assert device.coupling.diameter() == 3

    def test_json_is_valid_and_readable(self):
        payload = json.loads(device_to_json(line_device(3)))
        assert payload["qubits"] == 3
        assert payload["edges"] == [[0, 1], [1, 2]]
        assert "calibration" in payload

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            device_from_json('{"qubits": 2}')

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="invalid device JSON"):
            device_from_json("not json at all {")

    def test_invalid_gate_name_rejected(self):
        broken = json.loads(device_to_json(line_device(2)))
        broken["gate_set"]["gates"] = ["teleport"]
        with pytest.raises(ValueError, match="unknown gate kinds"):
            device_from_json(json.dumps(broken))

    def test_loaded_device_is_usable(self, tmp_path):
        path = save_device(surface17_device(), tmp_path / "chip.json")
        device = load_device(path)
        from repro.compiler import trivial_mapper
        from repro.workloads import ghz_state

        result = trivial_mapper().map(ghz_state(4), device)
        assert result.verify()


class TestSuiteReporting:
    def test_summary_counts(self):
        suite = small_suite(9)
        summary = summarize_suite(suite)
        assert summary.num_circuits == 9
        assert sum(summary.family_counts.values()) == 9

    def test_stats_ordering(self):
        summary = summarize_suite(small_suite(12))
        for stats in (
            summary.qubit_stats,
            summary.gate_stats,
            summary.two_qubit_percent_stats,
        ):
            low, median, mean, high = stats
            assert low <= median <= high
            assert low <= mean <= high

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            summarize_suite([])

    def test_format(self):
        text = format_suite_summary(summarize_suite(small_suite(8)))
        assert "benchmark suite: 8 circuits" in text
        assert "qubits" in text and "2q-gate %" in text

    def test_covers(self):
        summary = summarize_suite(small_suite(12))
        assert summary.covers(
            min(summary.qubit_values), max(summary.qubit_values)
        )
        assert not summary.covers(0, 10 ** 6)


class TestBridgeRouting:
    def test_distance2_cx_bridged(self):
        device = line_device(3)
        circuit = Circuit(3).cx(0, 2)
        result = TrivialRouter(use_bridge=True).route(
            circuit, device, Layout.trivial(3, 3)
        )
        assert result.swap_count == 0
        assert result.bridge_count == 1
        assert result.initial_layout == result.final_layout
        assert [g.name for g in result.circuit] == ["cx"] * 4
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    def test_longer_distances_still_swap(self):
        device = line_device(4)
        circuit = Circuit(4).cx(0, 3)
        result = TrivialRouter(use_bridge=True).route(
            circuit, device, Layout.trivial(4, 4)
        )
        assert result.swap_count > 0
        assert result.bridge_count == 0
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    def test_non_cx_gates_not_bridged(self):
        device = line_device(3)
        circuit = Circuit(3).cz(0, 2)
        result = TrivialRouter(use_bridge=True).route(
            circuit, device, Layout.trivial(3, 3)
        )
        assert result.swap_count == 1
        assert result.bridge_count == 0
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    def test_bridge_off_by_default(self):
        device = line_device(3)
        result = TrivialRouter().route(
            Circuit(3).cx(0, 2), device, Layout.trivial(3, 3)
        )
        assert result.swap_count == 1
        assert result.bridge_count == 0

    def test_bridge_count_threaded_through_mapper(self):
        from repro.compiler import QuantumMapper, TrivialPlacement

        mapper = QuantumMapper(TrivialPlacement(), TrivialRouter(use_bridge=True))
        result = mapper.map(Circuit(3).cx(0, 2), line_device(3))
        assert result.bridge_count == 1
        assert result.overhead.bridge_count == 1
        assert result.overhead.as_dict()["bridge_count"] == 1
        assert result.verify()

    def test_bridge_count_zero_without_bridge(self):
        from repro.compiler import trivial_mapper

        result = trivial_mapper().map(Circuit(3).cx(0, 2), line_device(3))
        assert result.bridge_count == 0
        assert result.overhead.bridge_count == 0

    def test_bridge_sequence_semantics(self):
        device = line_device(3)
        circuit = Circuit(3).h(0).cx(0, 2).h(2).cx(0, 2)
        result = TrivialRouter(use_bridge=True).route(
            circuit, device, Layout.trivial(3, 3)
        )
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )
