"""Unit tests for interaction graphs (repro.core.interaction)."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import InteractionGraph, interaction_graph
from repro.workloads import ghz_state, qft, random_circuit


class TestConstruction:
    def test_from_circuit_weights(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 1).cz(1, 2).h(0)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.weight(0, 1) == 2.0
        assert graph.weight(1, 2) == 1.0
        assert graph.weight(0, 2) == 0.0
        assert graph.num_edges == 2

    def test_edge_direction_collapsed(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.weight(0, 1) == 2.0
        assert graph.num_edges == 1

    def test_directives_and_1q_ignored(self):
        circuit = Circuit(3).h(0).barrier(0, 1).measure(2)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.num_edges == 0

    def test_three_qubit_gates_ignored(self):
        graph = InteractionGraph.from_circuit(Circuit(3).ccx(0, 1, 2))
        assert graph.num_edges == 0

    def test_total_weight_equals_two_qubit_count(self):
        for seed in range(4):
            circuit = random_circuit(5, 50, 0.5, seed=seed)
            graph = InteractionGraph.from_circuit(circuit)
            assert graph.total_weight == circuit.num_two_qubit_gates

    def test_manual_construction_validation(self):
        graph = InteractionGraph(3)
        with pytest.raises(ValueError):
            graph.add_interaction(0, 0)
        with pytest.raises(ValueError):
            graph.add_interaction(0, 9)
        with pytest.raises(ValueError):
            graph.add_interaction(0, 1, weight=-2)

    def test_from_weights_dict(self):
        graph = InteractionGraph(3, {frozenset((0, 2)): 4.0})
        assert graph.weight(0, 2) == 4.0


class TestQueries:
    def test_degree_vs_weighted_degree(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 1).cx(0, 2)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.degree(0) == 2
        assert graph.weighted_degree(0) == 3.0

    def test_neighbors(self):
        graph = interaction_graph(ghz_state(4))
        assert graph.neighbors(1) == frozenset({0, 2})

    def test_adjacency_matrix_symmetric(self):
        graph = interaction_graph(random_circuit(6, 40, 0.6, seed=1))
        matrix = graph.adjacency_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        assert matrix.sum() == pytest.approx(2 * graph.total_weight)

    def test_edges_sorted(self):
        graph = interaction_graph(ghz_state(4))
        assert graph.edges() == [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]


class TestConnectivity:
    def test_connected_chain(self):
        assert interaction_graph(ghz_state(5)).is_connected()

    def test_isolated_qubit_disconnects(self):
        circuit = Circuit(3).cx(0, 1)  # qubit 2 never interacts
        graph = InteractionGraph.from_circuit(circuit)
        assert not graph.is_connected()
        assert len(graph.connected_components()) == 2

    def test_shortest_path_lengths(self):
        graph = interaction_graph(ghz_state(4))
        dist = graph.shortest_path_lengths()
        assert dist[0, 3] == 3
        assert dist[0, 0] == 0

    def test_unreachable_marked(self):
        graph = InteractionGraph.from_circuit(Circuit(3).cx(0, 1))
        assert graph.shortest_path_lengths()[0, 2] == -1

    def test_subgraph_without_isolated(self):
        circuit = Circuit(5).cx(1, 3)
        graph = InteractionGraph.from_circuit(circuit)
        compact = graph.subgraph_without_isolated()
        assert compact.num_qubits == 2
        assert compact.weight(0, 1) == 1.0


class TestExport:
    def test_networkx_weights(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 1).cz(1, 2)
        nxg = InteractionGraph.from_circuit(circuit).to_networkx()
        assert nxg[0][1]["weight"] == 2.0
        assert nxg.number_of_nodes() == 3
