"""Tests for QAOA workloads, the Fig. 4 pair and the evaluation suite."""

import pytest

from repro.circuit import size_parameters
from repro.core import InteractionGraph
from repro.workloads import (
    FAMILIES,
    FIG4_NUM_GATES,
    FIG4_NUM_QUBITS,
    evaluation_suite,
    fig4_qaoa_circuit,
    fig4_random_circuit,
    qaoa_maxcut,
    random_maxcut_instance,
    small_suite,
)


class TestMaxCutInstance:
    def test_connected_and_simple(self):
        edges = random_maxcut_instance(8, 12, seed=0)
        assert len(edges) == 12
        assert len(set(edges)) == 12
        assert all(a < b for a, b in edges)
        # connectivity via the interaction-graph helper
        graph = InteractionGraph(8)
        for a, b in edges:
            graph.add_interaction(a, b)
        assert graph.is_connected()

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            random_maxcut_instance(4, 2)  # below spanning tree
        with pytest.raises(ValueError):
            random_maxcut_instance(4, 7)  # above complete graph

    def test_deterministic(self):
        assert random_maxcut_instance(6, 9, seed=5) == random_maxcut_instance(
            6, 9, seed=5
        )


class TestQaoa:
    def test_interaction_graph_is_problem_graph(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        circuit = qaoa_maxcut(4, edges, num_layers=3, seed=0)
        graph = InteractionGraph.from_circuit(circuit)
        assert sorted((a, b) for a, b, _ in graph.edges()) == sorted(edges)
        # Every edge interacts once per layer.
        assert all(w == 3 for _, _, w in graph.edges())

    def test_cx_entangler_triples_gateprint(self):
        edges = [(0, 1)]
        rzz_form = qaoa_maxcut(2, edges, num_layers=1, entangler="rzz", seed=0)
        cx_form = qaoa_maxcut(2, edges, num_layers=1, entangler="cx", seed=0)
        assert rzz_form.count_ops()["rzz"] == 1
        assert cx_form.count_ops()["cx"] == 2

    def test_angle_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(3, [(0, 1)], num_layers=2, gammas=[0.1], betas=[0.1, 0.2])

    def test_mixer_rotations(self):
        base = qaoa_maxcut(3, [(0, 1)], num_layers=1, mixer_rotations=1, seed=0)
        rich = qaoa_maxcut(3, [(0, 1)], num_layers=1, mixer_rotations=3, seed=0)
        assert rich.num_gates == base.num_gates + 2 * 3

    def test_unknown_entangler(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(3, [(0, 1)], entangler="magic")


class TestFig4Pair:
    def test_size_parameters_match_paper(self):
        qaoa = size_parameters(fig4_qaoa_circuit())
        rand = size_parameters(fig4_random_circuit())
        assert qaoa.num_qubits == rand.num_qubits == FIG4_NUM_QUBITS
        assert qaoa.num_gates == rand.num_gates == FIG4_NUM_GATES
        assert abs(qaoa.two_qubit_fraction - 0.135) < 0.02
        assert abs(rand.two_qubit_fraction - 0.135) < 0.02

    def test_structural_contrast(self):
        """The figure's message: same size, different graph structure."""
        qaoa_graph = InteractionGraph.from_circuit(fig4_qaoa_circuit())
        rand_graph = InteractionGraph.from_circuit(fig4_random_circuit())
        # Random circuit approaches full connectivity (15 possible edges).
        assert rand_graph.num_edges > qaoa_graph.num_edges
        # QAOA edges carry heavy repeated weights (one per layer).
        qaoa_max_weight = max(w for _, _, w in qaoa_graph.edges())
        rand_max_weight = max(w for _, _, w in rand_graph.edges())
        assert qaoa_max_weight > rand_max_weight


class TestEvaluationSuite:
    def test_size_and_families(self):
        suite = evaluation_suite(num_circuits=12, seed=0, max_qubits=12, max_gates=100)
        assert len(suite) == 12
        assert {b.family for b in suite} == set(FAMILIES)

    def test_deterministic(self):
        a = evaluation_suite(num_circuits=9, seed=3, max_qubits=10, max_gates=50)
        b = evaluation_suite(num_circuits=9, seed=3, max_qubits=10, max_gates=50)
        assert [x.circuit for x in a] == [y.circuit for y in b]

    def test_respects_bounds(self):
        suite = evaluation_suite(num_circuits=30, seed=1, max_qubits=10, max_gates=80)
        for benchmark in suite:
            params = size_parameters(benchmark.circuit)
            if benchmark.family == "random":
                assert params.num_gates <= 80
                assert 0.05 <= params.two_qubit_fraction <= 0.95

    def test_family_filter(self):
        suite = evaluation_suite(
            num_circuits=6, seed=0, max_qubits=8, max_gates=40, families=("random",)
        )
        assert all(b.family == "random" for b in suite)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            evaluation_suite(num_circuits=3, families=("quantum",))

    def test_synthetic_flag(self):
        suite = small_suite(6)
        for benchmark in suite:
            assert benchmark.is_synthetic == (benchmark.family != "real")

    def test_small_suite_is_small(self):
        for benchmark in small_suite(9):
            assert benchmark.circuit.num_qubits <= 16
