"""Unit tests for the overhead and fidelity metrics."""

import math

import pytest

from repro.circuit import Circuit
from repro.compiler import asap_schedule
from repro.hardware import IDEAL_CALIBRATION, SURFACE17_CALIBRATION
from repro.metrics import (
    decoherence_fidelity,
    fidelity_decrease,
    fidelity_report,
    gate_overhead,
    log_fidelity,
    overhead_report,
    product_fidelity,
)


class TestOverhead:
    def test_gate_overhead(self):
        before = Circuit(2).h(0).cx(0, 1)
        after = Circuit(2).h(0).cx(0, 1).cx(0, 1).cx(0, 1)
        assert gate_overhead(before, after) == pytest.approx(1.0)

    def test_empty_before(self):
        assert gate_overhead(Circuit(1), Circuit(1).h(0)) == 0.0

    def test_report_fields(self):
        before = Circuit(2).h(0).cx(0, 1)
        after = before.copy().swap(0, 1)
        report = overhead_report(before, after, swap_count=1)
        assert report.gates_before == 2
        assert report.gates_after == 3
        assert report.added_gates == 1
        assert report.gate_overhead_percent == pytest.approx(50.0)
        assert report.swap_count == 1
        assert report.depth_overhead >= 0.0

    def test_report_excludes_directives(self):
        before = Circuit(2).h(0).measure_all()
        report = overhead_report(before, before)
        assert report.gates_before == 1
        assert report.gate_overhead == 0.0

    def test_as_dict(self):
        report = overhead_report(Circuit(1).h(0), Circuit(1).h(0).x(0))
        record = report.as_dict()
        assert record["gate_overhead_percent"] == pytest.approx(100.0)


class TestProductFidelity:
    def test_paper_model(self):
        # 2 single-qubit + 1 two-qubit gate with Versluis rates.
        circuit = Circuit(2).h(0).h(1).cz(0, 1)
        expected = (1 - 0.001) ** 2 * (1 - 0.01)
        assert product_fidelity(circuit) == pytest.approx(expected)

    def test_measurement_excluded_by_default(self):
        bare = Circuit(1).x(0)
        measured = Circuit(1).x(0).measure(0)
        assert product_fidelity(bare) == product_fidelity(measured)
        assert product_fidelity(measured, include_measurement=True) < product_fidelity(
            measured
        )

    def test_ideal_calibration(self):
        circuit = Circuit(2).h(0).cz(0, 1)
        assert product_fidelity(circuit, IDEAL_CALIBRATION) == 1.0

    def test_empty_circuit(self):
        assert product_fidelity(Circuit(3)) == 1.0

    def test_monotone_in_gate_count(self):
        short = Circuit(2).cz(0, 1)
        long = Circuit(2).cz(0, 1).cz(0, 1).cz(0, 1)
        assert product_fidelity(long) < product_fidelity(short)

    def test_log_fidelity_consistent(self):
        circuit = Circuit(2).h(0).cz(0, 1).h(1).cz(0, 1)
        assert math.exp(log_fidelity(circuit)) == pytest.approx(
            product_fidelity(circuit)
        )

    def test_log_fidelity_survives_huge_circuits(self):
        huge = Circuit(2)
        for _ in range(5000):
            huge.cz(0, 1)
        assert product_fidelity(huge) == pytest.approx(0.0, abs=1e-12)
        assert log_fidelity(huge) == pytest.approx(5000 * math.log(0.99))


class TestFidelityDecrease:
    def test_no_change(self):
        circuit = Circuit(2).cz(0, 1)
        assert fidelity_decrease(circuit, circuit) == pytest.approx(0.0)

    def test_added_gates_decrease(self):
        before = Circuit(2).cz(0, 1)
        after = Circuit(2).cz(0, 1).cz(0, 1)
        assert fidelity_decrease(before, after) == pytest.approx(0.01)

    def test_report(self):
        before = Circuit(2).cz(0, 1)
        after = Circuit(2).cz(0, 1).cz(0, 1).h(0)
        report = fidelity_report(before, after)
        assert report.fidelity_before > report.fidelity_after
        assert report.decrease_percent == pytest.approx(
            100 * (1 - (0.99 * 0.999)), rel=1e-6
        )

    def test_decrease_stable_for_deep_circuits(self):
        """The log-space path keeps Fig. 3(c) meaningful at 10^5 gates."""
        before = Circuit(2)
        for _ in range(20000):
            before.cz(0, 1)
        after = before.copy()
        for _ in range(100):
            after.cz(0, 1)
        value = fidelity_decrease(before, after)
        assert value == pytest.approx(1 - 0.99 ** 100)


class TestDecoherenceFidelity:
    def test_idle_qubits_penalised(self):
        # q1 idles ~ 40ns while q0 runs two gates before the CZ.
        busy = Circuit(2).h(1).h(0).h(0).cz(0, 1)
        tight = Circuit(2).h(0).h(0).h(1).cz(0, 1)
        sched_busy = asap_schedule(busy)
        sched_tight = asap_schedule(tight)
        f_busy = decoherence_fidelity(sched_busy)
        f_tight = decoherence_fidelity(sched_tight)
        assert f_busy <= f_tight

    def test_bounded_by_gate_product(self):
        circuit = Circuit(2).h(1).h(0).h(0).cz(0, 1)
        schedule = asap_schedule(circuit)
        assert decoherence_fidelity(schedule) <= product_fidelity(circuit)
