"""Unit tests for the schedulers (repro.compiler.scheduling)."""

import pytest

from repro.circuit import Circuit
from repro.compiler import alap_schedule, asap_schedule
from repro.hardware import SURFACE17_CALIBRATION


def overlapping(a, b):
    return a.start_ns < b.end_ns and b.start_ns < a.end_ns


class TestAsap:
    def test_serial_chain_times(self):
        circuit = Circuit(2).h(0).cz(0, 1).h(1)
        schedule = asap_schedule(circuit)
        starts = {
            (e.gate.name, e.gate.qubits): e.start_ns for e in schedule.entries
        }
        assert starts[("h", (0,))] == 0.0
        assert starts[("cz", (0, 1))] == 20.0
        assert starts[("h", (1,))] == 60.0
        assert schedule.latency_ns == 80.0

    def test_parallel_gates_start_together(self):
        schedule = asap_schedule(Circuit(4).h(0).h(1).h(2).h(3))
        assert {e.start_ns for e in schedule.entries} == {0.0}
        assert schedule.latency_ns == 20.0
        assert schedule.num_time_slots == 1

    def test_qubit_exclusivity(self):
        circuit = Circuit(3).cz(0, 1).cz(1, 2).h(0)
        schedule = asap_schedule(circuit)
        for i, a in enumerate(schedule.entries):
            for b in schedule.entries[i + 1 :]:
                if set(a.gate.qubits) & set(b.gate.qubits):
                    assert not overlapping(a, b), (a, b)

    def test_measurement_duration(self):
        schedule = asap_schedule(Circuit(1).measure(0))
        assert schedule.latency_ns == 300.0

    def test_barrier_takes_no_time(self):
        with_barrier = asap_schedule(Circuit(2).h(0).barrier().h(1))
        # barrier synchronises: h(1) cannot start before h(0) ends.
        h1 = [e for e in with_barrier.entries if e.gate.qubits == (1,)][0]
        assert h1.start_ns == 20.0

    def test_parallelism_metric(self):
        parallel = asap_schedule(Circuit(2).h(0).h(1))
        serial = asap_schedule(Circuit(1).h(0).h(0))
        assert parallel.parallelism() == pytest.approx(2.0)
        assert serial.parallelism() == pytest.approx(1.0)

    def test_empty_circuit(self):
        schedule = asap_schedule(Circuit(2))
        assert schedule.latency_ns == 0.0
        assert schedule.parallelism() == 0.0

    def test_gates_at(self):
        schedule = asap_schedule(Circuit(2).h(0).cz(0, 1))
        assert len(schedule.gates_at(0.0)) == 1
        assert schedule.gates_at(25.0)[0].gate.name == "cz"

    def test_idle_time(self):
        # q1 idles while q0 runs two H gates before the CZ.
        circuit = Circuit(2).h(1).h(0).h(0).cz(0, 1)
        schedule = asap_schedule(circuit)
        assert schedule.idle_time_ns(1) == pytest.approx(20.0)
        assert schedule.idle_time_ns(0) == pytest.approx(0.0)


class TestControlConstraint:
    def test_limit_defers_two_qubit_gates(self):
        circuit = Circuit(4).cz(0, 1).cz(2, 3)
        unconstrained = asap_schedule(circuit)
        constrained = asap_schedule(circuit, max_parallel_2q=1)
        assert unconstrained.latency_ns == 40.0
        assert constrained.latency_ns == 80.0

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            asap_schedule(Circuit(2).cz(0, 1), max_parallel_2q=0)

    def test_one_qubit_gates_unconstrained(self):
        schedule = asap_schedule(Circuit(3).h(0).h(1).h(2), max_parallel_2q=1)
        assert schedule.latency_ns == 20.0


class TestTimeSlotQuantisation:
    def test_float_noise_collapses_to_one_slot(self):
        # 0.1 + 0.2 != 0.3 in binary floats; on the 1e-6 ns grid the
        # two start times are the same slot.
        from repro.circuit import Gate
        from repro.compiler.scheduling import Schedule, ScheduledGate

        circuit = Circuit(2).h(0).h(1)
        entries = [
            ScheduledGate(Gate("h", (0,)), 0.1 + 0.2, 20.0),
            ScheduledGate(Gate("h", (1,)), 0.3, 20.0),
        ]
        assert (0.1 + 0.2) != 0.3
        assert Schedule(entries, circuit).num_time_slots == 1

    def test_distinct_starts_still_counted(self):
        from repro.circuit import Gate
        from repro.compiler.scheduling import Schedule, ScheduledGate

        circuit = Circuit(2).h(0).h(1)
        entries = [
            ScheduledGate(Gate("h", (0,)), 0.0, 20.0),
            ScheduledGate(Gate("h", (1,)), 20.0, 20.0),
        ]
        assert Schedule(entries, circuit).num_time_slots == 2


class TestAlap:
    def test_same_latency_as_asap(self):
        circuit = Circuit(3).h(0).cz(0, 1).h(2).cz(1, 2)
        assert alap_schedule(circuit).latency_ns == asap_schedule(circuit).latency_ns

    def test_gates_sink_late(self):
        # A lone H on q1 should sit at the end, not the beginning.
        circuit = Circuit(2).h(1).h(0).h(0).h(0)
        alap = alap_schedule(circuit)
        h1 = [e for e in alap.entries if e.gate.qubits == (1,)][0]
        assert h1.start_ns == pytest.approx(40.0)

    def test_dependencies_still_respected(self):
        circuit = Circuit(2).h(0).cz(0, 1).h(1)
        schedule = alap_schedule(circuit)
        by_gate = {
            (e.gate.name, e.gate.qubits): e for e in schedule.entries
        }
        assert by_gate[("h", (0,))].end_ns <= by_gate[("cz", (0, 1))].start_ns
        assert by_gate[("cz", (0, 1))].end_ns <= by_gate[("h", (1,))].start_ns
