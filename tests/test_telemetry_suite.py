"""Suite-runner telemetry: worker-count-independent trees, lossless shards.

The contract under test: running the same suite with ``workers=1`` and
``workers=4`` produces the *same* span tree after the parent merge —
same names, same parent paths, same deterministic attributes and the
same metric totals; only durations, timestamps and process/thread ids
may differ — and the per-worker JSONL shards merge into one event log
without losing a single event.
"""

from repro import telemetry
from repro.compiler import sabre_mapper
from repro.hardware import surface17_device
from repro.runtime import run_suite_parallel
from repro.telemetry import export, tracing
from repro.telemetry.merge import MERGED_FILENAME, WORKER_DIR_NAME
from repro.workloads import small_suite

#: suite.run carries the worker count; everything else is deterministic.
_VOLATILE_ATTRS = {"workers"}

#: Transport metrics describe *how* the run executed, not what work was
#: traced: the inline workers=1 path dispatches no pool batches and
#: times no pickle, so these families are worker-count-dependent by
#: design and excluded from the semantic-equality comparison.
_TRANSPORT_METRICS = {"batch_size", "serialization_seconds_total"}


def _semantic_metrics(snapshot):
    return {
        name: series
        for name, series in snapshot.items()
        if name not in _TRANSPORT_METRICS
    }


def _suite():
    return small_suite(num_circuits=6, seed=7)


def _traced_run(workers, export_dir=None):
    with telemetry.session(export_dir=export_dir) as tele:
        report = run_suite_parallel(
            _suite(),
            device=surface17_device(),
            mapper=sabre_mapper(seed=3),
            workers=workers,
        )
    return report, tele


def _tree(spans):
    """Comparable view: (path-to-root, stable attrs) per span, sorted."""
    by_id = {s.span_id: s for s in spans}
    shapes = []
    for record in spans:
        path = [record.name]
        parent = record.parent_id
        while parent is not None:
            path.append(by_id[parent].name)
            parent = by_id[parent].parent_id
        attrs = tuple(
            sorted(
                (k, v)
                for k, v in record.attributes.items()
                if k not in _VOLATILE_ATTRS
            )
        )
        shapes.append(("/".join(reversed(path)), attrs))
    return sorted(shapes)


class TestWorkerCountIndependence:
    def test_same_span_tree_and_metrics_for_1_and_4_workers(self):
        report1, tele1 = _traced_run(workers=1)
        report4, tele4 = _traced_run(workers=4)
        assert report1.records == report4.records
        assert _tree(tele1.spans) == _tree(tele4.spans)
        # Durations are real measurements, not copies of each other.
        assert all(s.end_s >= s.start_s for s in tele4.spans)
        # Counter/histogram totals match exactly: same work was traced.
        # (Transport metrics — batch counts, pickle timings — are the
        # one family that legitimately differs with the worker count.)
        assert _semantic_metrics(tele1.metrics_snapshot()) == _semantic_metrics(
            tele4.metrics_snapshot()
        )

    def test_stage_breakdown_per_circuit(self):
        report, _ = _traced_run(workers=2)
        assert report.wall_time_s > 0.0
        expected = {"decompose", "place", "route", "lower", "schedule"}
        for timing in report.timings:
            assert set(timing.stages) == expected
            assert all(s >= 0.0 for s in timing.stages.values())
            assert timing.elapsed_s >= 0.0
        totals = report.stage_totals()
        assert set(totals) == expected

    def test_untraced_run_has_no_stages_and_no_spans(self):
        with telemetry.capture(enabled=False) as captured:
            report = run_suite_parallel(
                _suite(),
                device=surface17_device(),
                mapper=sabre_mapper(seed=3),
                workers=2,
            )
        assert captured.spans == []
        assert captured.metrics_snapshot() == {}
        assert report.wall_time_s > 0.0  # timing survives without tracing
        assert all(timing.stages == {} for timing in report.timings)
        assert report.stage_totals() == {}


class TestWorkerShards:
    def test_shards_merge_without_loss(self, tmp_path):
        report, tele = _traced_run(workers=4, export_dir=tmp_path)
        worker_dir = tmp_path / WORKER_DIR_NAME
        shards = sorted(worker_dir.glob("worker-*.jsonl"))
        assert shards  # at least one worker wrote a shard
        shard_union = [
            event for path in shards for event in export.read_jsonl(path)
        ]
        merged = export.read_jsonl(worker_dir / MERGED_FILENAME)
        # Lossless: the merge is a pure reorder of the shard union.
        assert len(merged) == len(shard_union)
        assert sorted(
            (e["batch"], e["seq"], e["name"]) for e in merged
        ) == sorted((e["batch"], e["seq"], e["name"]) for e in shard_union)
        # Deterministically ordered by suite position.
        assert [
            (e["batch"], e["seq"]) for e in merged
        ] == sorted((e["batch"], e["seq"]) for e in merged)
        # Every mapped circuit contributed a batch.
        assert {e["batch"] for e in merged} == set(range(len(report.records)))

    def test_merged_log_independent_of_worker_count(self, tmp_path):
        _, tele1 = _traced_run(workers=1, export_dir=tmp_path / "w1")
        _, tele4 = _traced_run(workers=4, export_dir=tmp_path / "w4")

        def stable(path):
            return [
                {
                    k: v
                    for k, v in event.items()
                    if k
                    not in (
                        "start_s",
                        "end_s",
                        "duration_s",
                        "process_id",
                        "thread_id",
                    )
                }
                for event in export.read_jsonl(path)
            ]

        assert stable(
            tmp_path / "w1" / WORKER_DIR_NAME / MERGED_FILENAME
        ) == stable(tmp_path / "w4" / WORKER_DIR_NAME / MERGED_FILENAME)

    def test_parent_events_cover_suite_spans(self, tmp_path):
        _, tele = _traced_run(workers=2, export_dir=tmp_path)
        names = {e["name"] for e in export.read_jsonl(tele.paths["events"])}
        assert {
            "suite.run",
            "suite.circuit",
            "map.run",
            "map.decompose",
            "map.place",
            "map.route",
            "map.lower",
            "map.schedule",
            "route.sabre",
        } <= names
