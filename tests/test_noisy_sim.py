"""Unit tests for the Monte-Carlo noisy simulator."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.hardware import IDEAL_CALIBRATION, SURFACE17_CALIBRATION, Calibration
from repro.metrics import product_fidelity
from repro.sim import (
    NoisySimulator,
    estimate_success_rate,
    statevector,
)
from repro.workloads import ghz_state, random_circuit


class TestNoisySimulator:
    def test_noise_free_calibration_is_exact(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        noisy = NoisySimulator(IDEAL_CALIBRATION, seed=0).run(circuit)
        assert np.allclose(noisy, statevector(circuit))

    def test_trajectories_stay_normalised(self):
        circuit = random_circuit(4, 40, 0.5, seed=0)
        simulator = NoisySimulator(SURFACE17_CALIBRATION.scaled(10), seed=1)
        state = simulator.run(circuit)
        assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0)

    def test_high_noise_degrades_state(self):
        circuit = random_circuit(4, 60, 0.5, seed=2)
        ideal = statevector(circuit).reshape(-1)
        noisy_cal = Calibration(
            single_qubit_error=0.3, two_qubit_error=0.5, crosstalk_error=0.0
        )
        simulator = NoisySimulator(noisy_cal, seed=5)
        overlaps = [
            abs(np.vdot(ideal, simulator.run(circuit).reshape(-1))) ** 2
            for _ in range(20)
        ]
        assert np.mean(overlaps) < 0.5

    def test_measurements_rejected(self):
        with pytest.raises(ValueError, match="strip measurements"):
            NoisySimulator(seed=0).run(Circuit(1).measure(0))

    def test_seeded_determinism(self):
        circuit = random_circuit(3, 30, 0.4, seed=3)
        cal = SURFACE17_CALIBRATION.scaled(20)
        a = NoisySimulator(cal, seed=9).run(circuit)
        b = NoisySimulator(cal, seed=9).run(circuit)
        assert np.allclose(a, b)


class TestSuccessRateEstimate:
    def test_ideal_circuit_rate_is_one(self):
        estimate = estimate_success_rate(
            ghz_state(3), IDEAL_CALIBRATION, trajectories=10
        )
        assert estimate.mean == pytest.approx(1.0)
        assert estimate.std_error == pytest.approx(0.0)

    def test_model_agrees_with_monte_carlo(self):
        """The paper's fidelity product approximates the MC ground truth."""
        calibration = SURFACE17_CALIBRATION.scaled(3.0)
        for circuit in (ghz_state(4), random_circuit(5, 50, 0.4, seed=1)):
            estimate = estimate_success_rate(
                circuit, calibration, trajectories=250, seed=2
            )
            model = product_fidelity(circuit.without_directives(), calibration)
            assert estimate.agrees_with(model), (circuit.name, estimate, model)

    def test_rate_decreases_with_depth(self):
        calibration = SURFACE17_CALIBRATION.scaled(5.0)
        shallow = estimate_success_rate(
            random_circuit(4, 20, 0.5, seed=4), calibration, trajectories=150
        )
        deep = estimate_success_rate(
            random_circuit(4, 120, 0.5, seed=4), calibration, trajectories=150
        )
        assert deep.mean < shallow.mean

    def test_measurements_stripped_automatically(self):
        estimate = estimate_success_rate(
            ghz_state(3).measure_all(), trajectories=5
        )
        assert 0.0 <= estimate.mean <= 1.0

    def test_trajectory_count_validated(self):
        with pytest.raises(ValueError):
            estimate_success_rate(ghz_state(2), trajectories=0)

    def test_agreement_tolerance(self):
        from repro.sim import SuccessRateEstimate

        estimate = SuccessRateEstimate(mean=0.5, std_error=0.01, trajectories=100)
        assert estimate.agrees_with(0.52)
        assert not estimate.agrees_with(0.9)
