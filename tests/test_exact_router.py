"""Unit tests for the exact (optimal) A* router."""

import pytest

from repro.circuit import Circuit
from repro.compiler import (
    ExactRouter,
    Layout,
    RoutingError,
    SabreRouter,
    TrivialRouter,
    optimal_swap_count,
)
from repro.hardware import all_to_all_device, line_device, surface7_device
from repro.sim import verify_mapping
from repro.workloads import random_circuit


class TestExactRouterCorrectness:
    def test_single_far_gate_on_line(self):
        device = line_device(5)
        circuit = Circuit(5).cx(0, 4)
        result = ExactRouter().route(circuit, device, Layout.trivial(5, 5))
        assert result.swap_count == 3  # distance 4 -> 3 swaps
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    def test_crossing_pairs(self):
        # cx(0,3) and cx(1,2) on a line: 2 swaps suffice (not 3).
        device = line_device(4)
        circuit = Circuit(4).cx(0, 3).cx(1, 2)
        assert optimal_swap_count(circuit, device) == 2

    def test_adjacent_gates_cost_zero(self):
        device = line_device(3)
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        assert optimal_swap_count(circuit, device) == 0

    def test_all_to_all_cost_zero(self):
        device = all_to_all_device(5)
        circuit = random_circuit(5, 20, 0.6, seed=0)
        assert optimal_swap_count(circuit, device) == 0

    def test_one_qubit_gates_pass_through(self):
        device = line_device(3)
        circuit = Circuit(3).h(0).cx(0, 2).x(1)
        result = ExactRouter().route(circuit, device, Layout.trivial(3, 3))
        assert verify_mapping(
            circuit, result.circuit, result.initial_layout, result.final_layout
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_heuristics(self, seed, dev7):
        circuit = random_circuit(5, 10, 0.6, seed=seed, two_qubit_gates=("cx",))
        layout = Layout.trivial(5, 7)
        optimal = ExactRouter().route(circuit, dev7, layout)
        sabre = SabreRouter(seed=0).route(circuit, dev7, layout)
        trivial = TrivialRouter().route(circuit, dev7, layout)
        assert optimal.swap_count <= sabre.swap_count
        assert optimal.swap_count <= trivial.swap_count
        assert verify_mapping(
            circuit,
            optimal.circuit,
            optimal.initial_layout,
            optimal.final_layout,
        )

    def test_respects_custom_initial_layout(self):
        device = line_device(4)
        layout = Layout(2, 4, {0: 0, 1: 3})
        circuit = Circuit(2).cx(0, 1)
        result = ExactRouter().route(circuit, device, layout)
        assert result.swap_count == 2
        assert result.initial_layout == {0: 0, 1: 3}


class TestExactRouterLimits:
    def test_state_budget_raises(self):
        device = line_device(6)
        circuit = random_circuit(6, 30, 0.7, seed=1, two_qubit_gates=("cx",))
        with pytest.raises(RoutingError, match="exceeded"):
            ExactRouter(max_states=3).route(
                circuit, device, Layout.trivial(6, 6)
            )

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            ExactRouter(max_states=0)

    def test_rejects_three_qubit_gates(self):
        device = line_device(3)
        with pytest.raises(RoutingError, match="arity"):
            ExactRouter().route(
                Circuit(3).ccx(0, 1, 2), device, Layout.trivial(3, 3)
            )


class TestOptimalityGapKnownCases:
    def test_line_reversal_lower_bound(self):
        """Fully reversing qubits on a line: known n(n-1)/2 SWAP bound
        when every distant pair must interact once in reverse order."""
        device = line_device(4)
        circuit = Circuit(4).cx(0, 3).cx(1, 3).cx(0, 2)
        optimal = optimal_swap_count(circuit, device)
        assert 2 <= optimal <= 3

    def test_zero_swap_placement_exists(self, dev7):
        # The same chain needs 0 swaps if the initial layout matches.
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        layout = Layout(3, 7, {0: 0, 1: 3, 2: 5})  # 0-3-5 is a path on s7
        assert (
            ExactRouter().route(circuit, dev7, layout).swap_count == 0
        )
