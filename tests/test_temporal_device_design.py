"""Tests for temporal profiling and application-driven device exploration."""

import pytest

from repro.circuit import Circuit
from repro.core import (
    TemporalProfile,
    TopologyReport,
    best_topology_for,
    explore_topologies,
    temporal_profile,
    time_sliced_graphs,
)
from repro.workloads import ghz_state, ising_chain, qaoa_maxcut, random_circuit


class TestTimeSlicedGraphs:
    def test_slice_count_and_width(self):
        circuit = random_circuit(4, 40, 0.5, seed=0)
        graphs = time_sliced_graphs(circuit, 4)
        assert len(graphs) == 4
        assert all(g.num_qubits == 4 for g in graphs)

    def test_total_weight_conserved(self):
        circuit = random_circuit(5, 60, 0.5, seed=1)
        graphs = time_sliced_graphs(circuit, 5)
        assert sum(g.total_weight for g in graphs) == circuit.num_two_qubit_gates

    def test_empty_circuit(self):
        graphs = time_sliced_graphs(Circuit(3), 3)
        assert len(graphs) == 3
        assert all(g.num_edges == 0 for g in graphs)

    def test_single_slice_equals_static_graph(self):
        from repro.core import InteractionGraph

        circuit = random_circuit(4, 30, 0.5, seed=2)
        sliced = time_sliced_graphs(circuit, 1)[0]
        static = InteractionGraph.from_circuit(circuit)
        assert sliced.edges() == static.edges()

    def test_slice_count_validated(self):
        with pytest.raises(ValueError):
            time_sliced_graphs(Circuit(2), 0)


class TestTemporalProfile:
    def test_layered_ansatz_is_local(self):
        # Ising Trotter repeats the same bonds every step: locality ~ 1.
        circuit = ising_chain(6, steps=8)
        profile = temporal_profile(circuit, num_slices=4)
        assert profile.locality > 0.9
        assert profile.persistence > 0.9

    def test_random_circuit_less_local_than_ansatz(self):
        ansatz = temporal_profile(ising_chain(6, steps=8), num_slices=4)
        random_p = temporal_profile(
            random_circuit(6, 100, 0.3, seed=3), num_slices=4
        )
        assert ansatz.locality >= random_p.locality

    def test_bounds(self):
        for seed in range(3):
            profile = temporal_profile(
                random_circuit(5, 50, 0.5, seed=seed), num_slices=4
            )
            assert 0.0 <= profile.locality <= 1.0
            assert 0.0 <= profile.persistence <= 1.0
            assert profile.burstiness >= 0.0

    def test_bursty_circuit_detected(self):
        # All 2q gates bunched at the start.
        circuit = Circuit(4)
        for _ in range(10):
            circuit.cx(0, 1)
        for _ in range(30):
            circuit.h(2)
        bursty = temporal_profile(circuit, num_slices=4)
        even = temporal_profile(ising_chain(4, steps=8), num_slices=4)
        assert bursty.burstiness > even.burstiness

    def test_no_interactions(self):
        profile = temporal_profile(Circuit(3).h(0).h(1), num_slices=2)
        assert profile.persistence == 0.0
        assert profile.burstiness == 0.0

    def test_as_dict(self):
        record = temporal_profile(ghz_state(4)).as_dict()
        assert set(record) == {
            "temporal_locality",
            "temporal_persistence",
            "temporal_burstiness",
        }


class TestDeviceExploration:
    def test_reports_sorted_by_cost(self):
        workload = ising_chain(8, steps=2)
        reports = explore_topologies(workload, 10)
        swaps = [r.total_swaps for r in reports]
        assert swaps == sorted(swaps)

    def test_chain_workload_prefers_cheap_topology(self):
        """A 1D algorithm should not need a dense chip: the winner (all-
        to-all excluded) must route it with zero or near-zero SWAPs."""
        workload = ising_chain(8, steps=3)
        best = best_topology_for(workload, 8)
        assert best.total_swaps <= 2
        assert best.name != "full"

    def test_full_connectivity_wins_raw(self):
        workload = random_circuit(6, 60, 0.6, seed=1)
        reports = explore_topologies(workload, 8)
        assert reports[0].name == "full"
        assert reports[0].total_swaps == 0

    def test_workload_list(self):
        workload = [ghz_state(5), ising_chain(5, steps=1)]
        reports = explore_topologies(workload, 6)
        assert len(reports) == len(
            __import__("repro.hardware", fromlist=["TOPOLOGY_GENERATORS"]).TOPOLOGY_GENERATORS
        )

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            explore_topologies(ghz_state(8), 4)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            explore_topologies([], 4)

    def test_pareto_dominance(self):
        cheap_good = TopologyReport("a", 5, 10, 1.0, 0.9)
        pricey_bad = TopologyReport("b", 9, 20, 2.0, 0.8)
        assert cheap_good.dominates(pricey_bad)
        assert not pricey_bad.dominates(cheap_good)
        assert not cheap_good.dominates(cheap_good)

    def test_custom_generators(self):
        from repro.hardware import line, ring

        reports = explore_topologies(
            ghz_state(5),
            6,
            generators={"line": line, "ring": ring},
        )
        assert {r.name for r in reports} == {"line", "ring"}
