"""Unit tests for the telemetry core: spans, metrics, exporters, merge."""

import json

import pytest

from repro import telemetry
from repro.telemetry import export, merge, metrics, tracing
from repro.telemetry.clock import CLOCK_SOURCE
from repro.telemetry.tracing import _NOOP_SPAN, span, traced


class TestSpans:
    def test_nesting_and_attributes(self):
        with tracing.capture() as spans:
            with span("outer", kind="test") as outer:
                with span("inner"):
                    pass
                outer.set("late", 7)
        by_name = {s.name: s for s in spans}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].attributes == {"kind": "test", "late": 7}
        # Children finish before parents, so the buffer is inner-first.
        assert [s.name for s in spans] == ["inner", "outer"]

    def test_monotonic_durations(self):
        with tracing.capture() as spans:
            with span("timed"):
                sum(range(1000))
        (record,) = spans
        assert record.end_s >= record.start_s
        assert record.duration_s == record.end_s - record.start_s

    def test_exception_stamps_error_attribute(self):
        with tracing.capture() as spans:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert spans[0].attributes["error"] == "ValueError"

    def test_traced_decorator_named_and_bare(self):
        @traced("custom.name", fixed=1)
        def named():
            return 42

        @traced
        def bare():
            return 7

        with tracing.capture() as spans:
            assert named() == 42
            assert bare() == 7
        assert [s.name for s in spans] == ["custom.name", bare.__qualname__]
        assert spans[0].attributes == {"fixed": 1}

    def test_disabled_returns_shared_noop_and_records_nothing(self):
        assert not tracing.is_enabled()  # off by default
        handle = span("anything", qubits=3)
        assert handle is _NOOP_SPAN
        assert span("other") is handle  # one shared object, no allocation
        with tracing.capture(enabled=False) as spans:
            with span("invisible") as sp:
                sp.set("key", "value")
        assert spans == []

    def test_capture_isolates_and_restores(self):
        with tracing.capture() as outer:
            with span("outer.span"):
                pass
            with tracing.capture() as inner:
                with span("inner.span"):
                    pass
            # Inner capture neither sees nor leaks outer spans...
            assert [s.name for s in inner] == ["inner.span"]
            # ...and id allocation restarted from zero inside it.
            assert inner[0].span_id == 0
        assert [s.name for s in outer] == ["outer.span"]
        assert not tracing.is_enabled()

    def test_ingest_rebases_ids_under_parent(self):
        with tracing.capture() as batch:
            with span("root"):
                with span("child"):
                    pass
        events = [s.to_dict() for s in batch]
        with tracing.capture() as spans:
            with span("host") as host:
                ingested = tracing.ingest(events, parent_id=host.span_id)
        assert [s.name for s in ingested] == ["child", "root"]
        by_name = {s.name: s for s in spans}
        # The batch root hangs off the host; in-batch links are remapped.
        assert by_name["root"].parent_id == by_name["host"].span_id
        assert by_name["child"].parent_id == by_name["root"].span_id
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)

    def test_ingest_disabled_is_noop(self):
        with tracing.capture() as batch:
            with span("orphan"):
                pass
        events = [s.to_dict() for s in batch]
        with tracing.capture(enabled=False) as spans:
            assert tracing.ingest(events) == []
        assert spans == []

    def test_record_round_trips_through_dict(self):
        with tracing.capture() as spans:
            with span("round.trip", qubits=5):
                pass
        record = spans[0]
        clone = tracing.SpanRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone == record


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = metrics.MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(5)
        histogram = registry.histogram("sizes", buckets=(1, 10))
        histogram.observe(0.5)
        histogram.observe(7)
        histogram.observe(99)
        snap = registry.snapshot()
        assert snap["hits"]["series"][0]["value"] == 3
        assert snap["depth"]["series"][0]["value"] == 5
        assert snap["sizes"]["series"][0]["counts"] == [1, 1, 1]
        assert snap["sizes"]["series"][0]["count"] == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            metrics.MetricsRegistry().counter("down").inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = metrics.MetricsRegistry()
        registry.counter("swaps", router="sabre").inc(4)
        registry.counter("swaps", router="trivial").inc(1)
        series = registry.snapshot()["swaps"]["series"]
        assert [(s["labels"], s["value"]) for s in series] == [
            ({"router": "sabre"}, 4),
            ({"router": "trivial"}, 1),
        ]

    def test_kind_conflict_raises(self):
        registry = metrics.MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_merge_snapshot_accumulates(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 2)).observe(2)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["series"][0]["value"] == 5  # counters add
        assert snap["g"]["series"][0]["value"] == 9  # gauges: last write
        assert snap["h"]["series"][0]["counts"] == [1, 1, 0]

    def test_module_helpers_gated_on_switch(self):
        assert metrics.counter("off.counter") is metrics._NOOP_METRIC
        assert metrics.gauge("off.gauge") is metrics._NOOP_METRIC
        assert metrics.histogram("off.histogram") is metrics._NOOP_METRIC
        with telemetry.capture() as captured:
            metrics.counter("on.counter").inc()
        assert captured.metrics_snapshot()["on.counter"]["series"][0][
            "value"
        ] == 1
        # The capture registry swapped out: nothing leaked to the default.
        assert "on.counter" not in metrics.get_registry().snapshot()


class TestExporters:
    def _spans(self):
        with tracing.capture() as spans:
            with span("export.root", qubits=2):
                with span("export.child"):
                    pass
        return spans

    def test_jsonl_round_trip(self, tmp_path):
        spans = self._spans()
        path = export.write_jsonl(spans, tmp_path / "events.jsonl")
        events = export.read_jsonl(path)
        assert [e["name"] for e in events] == [s.name for s in spans]
        assert all(e["type"] == "span" for e in events)

    def test_chrome_trace_format(self, tmp_path):
        spans = self._spans()
        path = export.write_chrome_trace(spans, tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == len(spans)
        event = trace["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert trace["otherData"]["clock"] == CLOCK_SOURCE

    def test_prometheus_text(self):
        registry = metrics.MetricsRegistry()
        registry.counter("route_runs", router="sabre").inc(3)
        registry.histogram("swaps", buckets=(1, 2)).observe(2)
        text = export.prometheus_text(registry.snapshot())
        assert '# TYPE repro_route_runs counter' in text
        assert 'repro_route_runs{router="sabre"} 3' in text
        # Histogram buckets are cumulative and end with +Inf/_sum/_count.
        assert 'repro_swaps_bucket{le="1.0"} 0' in text
        assert 'repro_swaps_bucket{le="2.0"} 1' in text
        assert 'repro_swaps_bucket{le="+Inf"} 1' in text
        assert "repro_swaps_sum 2.0" in text
        assert "repro_swaps_count 1" in text

    def test_export_all_writes_three_files(self, tmp_path):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc()
        paths = export.export_all(tmp_path, self._spans(), registry)
        assert set(paths) == {"events", "trace", "metrics"}
        for path in paths.values():
            assert path.is_file()


class TestMerge:
    def _batch(self, batch):
        with tracing.capture() as spans:
            with span(f"circuit.{batch}"):
                with span("stage"):
                    pass
        return merge.annotate_events(
            [s.to_dict() for s in spans], batch=batch
        )

    def test_merge_is_lossless_and_ordered(self, tmp_path):
        # Two workers, interleaved batches — exactly the suite shape.
        merge.append_worker_events(tmp_path, self._batch(1), worker_id=111)
        merge.append_worker_events(tmp_path, self._batch(0), worker_id=222)
        merge.append_worker_events(tmp_path, self._batch(2), worker_id=111)
        output = merge.merge_worker_events(tmp_path)
        merged = export.read_jsonl(output)
        assert len(merged) == 6  # nothing dropped
        assert [e["batch"] for e in merged] == [0, 0, 1, 1, 2, 2]
        # Ids rebased globally, in-batch parent links preserved.
        assert [e["span_id"] for e in merged] == list(range(6))
        for stage in (e for e in merged if e["name"] == "stage"):
            parent = next(
                e
                for e in merged
                if e["span_id"] == stage["parent_id"]
            )
            assert parent["batch"] == stage["batch"]

    def test_merge_independent_of_worker_assignment(self, tmp_path):
        batches = [self._batch(i) for i in range(3)]
        one = tmp_path / "one"
        many = tmp_path / "many"
        for batch in batches:
            merge.append_worker_events(one, batch, worker_id=1)
        merge.append_worker_events(many, batches[2], worker_id=5)
        merge.append_worker_events(many, batches[0], worker_id=6)
        merge.append_worker_events(many, batches[1], worker_id=5)
        assert (
            merge.merge_worker_events(one).read_text()
            == merge.merge_worker_events(many).read_text()
        )


class TestSession:
    def test_session_exports_and_publishes_dir(self, tmp_path):
        with telemetry.session(export_dir=tmp_path / "tele") as tele:
            assert tracing.get_export_dir() == tmp_path / "tele"
            with span("session.span"):
                metrics.counter("session_counter").inc()
        assert tracing.get_export_dir() is None
        assert set(tele.paths) == {"events", "trace", "metrics"}
        events = export.read_jsonl(tele.paths["events"])
        assert [e["name"] for e in events] == ["session.span"]
        assert "repro_session_counter" in tele.paths["metrics"].read_text()

    def test_clock_source_is_monotonic(self):
        assert CLOCK_SOURCE == "time.perf_counter"
