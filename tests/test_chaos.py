"""Seeded chaos plans, the soak runner's invariants, and the self-test.

Pins the ``repro.chaos`` contracts: plans are deterministic pure data
(same seed, same schedule), event minimums always land, kills are never
scheduled on hang-decorated waves (a SIGKILL landing on the wedged but
alive hung worker would turn the hang into a crash and starve the
watchdog of its detection), a small composed soak runs with every
end-to-end invariant green, and the planted-violation self-test proves
the invariant checker is actually capable of failing.
"""

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    ChaosEvent,
    ChaosPlan,
    ChaosRunner,
    run_selftest,
)

DEVICE = "surface7"


class TestChaosPlan:
    def test_same_seed_same_schedule(self):
        kwargs = dict(device=DEVICE, seed=11, waves=8, wave_size=4)
        first = ChaosPlan.generate(**kwargs)
        second = ChaosPlan.generate(**kwargs)
        assert first.events == second.events
        assert first.describe() == second.describe()
        assert first.drift is not None and second.drift is not None
        assert first.drift.updates == second.drift.updates

    def test_different_seed_different_schedule(self):
        first = ChaosPlan.generate(device=DEVICE, seed=1, waves=10)
        second = ChaosPlan.generate(device=DEVICE, seed=2, waves=10)
        assert first.events != second.events

    def test_event_minimums_are_planned(self):
        plan = ChaosPlan.generate(
            device=DEVICE,
            seed=5,
            waves=10,
            kills=3,
            hangs=2,
            poisons=1,
            drifts=2,
            unlinks=2,
            pressures=1,
            drift_burst=3,
        )
        counts = plan.counts()
        assert counts["kill"] == 3
        assert counts["hang"] == 2
        assert counts["poison"] == 1
        assert counts["drift"] == 6  # two bursts of three deltas
        assert counts["unlink"] == 2
        assert counts["pressure"] == 1

    @pytest.mark.parametrize("seed", [0, 7, 42, 2022, 31337])
    def test_kills_never_share_a_wave_with_a_hang(self, seed):
        plan = ChaosPlan.generate(
            device=DEVICE, seed=seed, waves=6, kills=4, hangs=2
        )
        hang_waves = {e.wave for e in plan.events if e.kind == "hang"}
        kill_waves = {e.wave for e in plan.events if e.kind == "kill"}
        assert not hang_waves & kill_waves

    def test_one_decoration_per_wave(self):
        # hang/poison decorations claim distinct waves so incident
        # attribution stays unambiguous.
        plan = ChaosPlan.generate(
            device=DEVICE, seed=3, waves=6, hangs=3, poisons=3
        )
        decorated = [
            e.wave for e in plan.events if e.kind in ("hang", "poison")
        ]
        assert len(decorated) == len(set(decorated)) == 6

    def test_too_many_decorations_rejected(self):
        with pytest.raises(ValueError, match="distinct waves"):
            ChaosPlan.generate(device=DEVICE, waves=2, hangs=2, poisons=1)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent(0, "meteor")
        with pytest.raises(ValueError):
            ChaosEvent(-1, "kill")
        with pytest.raises(ValueError):
            ChaosEvent(0, "kill", count=0)
        assert all(
            kind in CHAOS_KINDS
            for kind in ("kill", "hang", "poison", "drift")
        )

    def test_plan_is_replayable_pure_data(self):
        plan = ChaosPlan.generate(device=DEVICE, seed=9, waves=4)
        assert plan.events_at(plan.events[0].wave)
        assert plan.describe()
        import pickle

        assert pickle.loads(pickle.dumps(plan)) == plan


class TestChaosRunner:
    def test_runner_rejects_bad_config(self):
        plan = ChaosPlan.generate(device=DEVICE, seed=1, waves=2, kills=0)
        with pytest.raises(ValueError, match="pooled service"):
            ChaosRunner(plan, device=DEVICE, workers=0)
        with pytest.raises(ValueError, match="poison_attempts"):
            ChaosRunner(plan, device=DEVICE, max_job_attempts=99)

    def test_small_composed_soak_all_invariants_green(self):
        plan = ChaosPlan.generate(
            device=DEVICE,
            seed=13,
            waves=5,
            wave_size=4,
            kills=1,
            hangs=1,
            poisons=1,
            drifts=1,
            unlinks=1,
            pressures=0,
        )
        report = ChaosRunner(
            plan, device=DEVICE, workers=2, raise_on_violation=False
        ).run()
        assert report.ok, "\n".join(report.violations)
        assert report.checks > 0
        assert report.kills_injected == 1
        assert report.hangs_detected == 1
        assert report.quarantined == report.expected_quarantined == 1
        assert report.drift_updates == 3
        assert sum(report.respawns.values()) >= 2  # the kill + the hang
        assert report.resolved + report.quarantined == report.admitted
        digest = report.to_dict()
        assert digest["violations"] == []
        assert "kills_injected" in digest
        assert "0 violations (OK)" in report.format()


class TestSelfTest:
    def test_planted_violation_is_caught(self):
        report = run_selftest(device=DEVICE, workers=1, seed=97)
        assert len(report.violations) == 1
        assert "byte-identical" in report.violations[0]
