"""Semantic tests for the real-algorithm workloads.

Each generator is validated against its mathematical specification using
the state-vector oracle, not just structurally.
"""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, size_parameters
from repro.sim import circuit_unitary, probabilities, sample_counts, statevector
from repro.workloads import (
    bernstein_vazirani,
    deutsch_jozsa,
    ghz_state,
    grover,
    inverse_qft,
    qft,
    quantum_phase_estimation,
    vqe_ansatz,
    w_state,
)


class TestGhz:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_state(self, n):
        probs = probabilities(ghz_state(n))
        assert probs[0] == pytest.approx(0.5 if n > 1 else 0.5, abs=0.01)
        assert probs[-1] == pytest.approx(0.5, abs=0.01)
        assert probs.sum() == pytest.approx(1.0)

    def test_interaction_graph_is_path(self):
        from repro.core import InteractionGraph

        graph = InteractionGraph.from_circuit(ghz_state(6))
        assert graph.num_edges == 5
        assert all(b - a == 1 for a, b, _ in graph.edges())


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_uniform_single_excitation(self, n):
        probs = probabilities(w_state(n))
        nonzero = np.nonzero(probs > 1e-9)[0]
        assert len(nonzero) == n
        for index in nonzero:
            assert bin(index).count("1") == 1
            assert probs[index] == pytest.approx(1.0 / n)


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        dim = 2 ** n
        omega = np.exp(2j * math.pi / dim)
        dft = np.array(
            [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
        ) / math.sqrt(dim)
        unitary = circuit_unitary(qft(n))
        # Allow global phase.
        phase = unitary[0, 0] / dft[0, 0]
        assert np.allclose(unitary, phase * dft, atol=1e-9)

    def test_inverse_qft_is_adjoint(self):
        identity = qft(3).compose(inverse_qft(3))
        unitary = circuit_unitary(identity)
        phase = unitary[0, 0]
        assert np.allclose(unitary, phase * np.eye(8), atol=1e-9)

    def test_no_swaps_variant(self):
        circuit = qft(4, do_swaps=False)
        assert "swap" not in circuit.count_ops()

    def test_gate_count(self):
        # n H gates + n(n-1)/2 controlled-phases + floor(n/2) swaps.
        circuit = qft(5)
        counts = circuit.count_ops()
        assert counts["h"] == 5
        assert counts["cp"] == 10
        assert counts["swap"] == 2


class TestQpe:
    @pytest.mark.parametrize("bits,phase", [(3, 1 / 8), (3, 3 / 8), (4, 5 / 16)])
    def test_exact_phase_readout(self, bits, phase):
        circuit = quantum_phase_estimation(bits, phase=phase)
        counts = sample_counts(circuit.without_directives(), shots=64, seed=0)
        best = max(counts, key=counts.get)
        measured = int(best[:bits], 2) / 2 ** bits
        assert measured == pytest.approx(phase)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [[1, 0, 1], [0, 0, 0], [1, 1, 1, 1]])
    def test_recovers_secret(self, secret):
        circuit = bernstein_vazirani(secret)
        counts = sample_counts(circuit.without_directives(), shots=16, seed=0)
        best = max(counts, key=counts.get)
        assert [int(b) for b in best[: len(secret)]] == secret
        assert counts[best] == 16  # BV is deterministic

    def test_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani([0, 2])
        with pytest.raises(ValueError):
            bernstein_vazirani([])


class TestDeutschJozsa:
    def test_balanced_oracle_never_reads_zero(self):
        circuit = deutsch_jozsa(3, balanced=True)
        counts = sample_counts(circuit.without_directives(), shots=32, seed=1)
        assert all(key[:3] != "000" for key in counts)

    def test_constant_oracle_reads_zero(self):
        circuit = deutsch_jozsa(3, balanced=False)
        counts = sample_counts(circuit.without_directives(), shots=32, seed=1)
        assert set(key[:3] for key in counts) == {"000"}


class TestGrover:
    @pytest.mark.parametrize("marked", [[1, 1], [1, 0, 1], [0, 1, 1, 0]])
    def test_amplifies_marked_state(self, marked):
        circuit = grover(len(marked), marked=marked)
        counts = sample_counts(circuit.without_directives(), shots=300, seed=2)
        best = max(counts, key=counts.get)
        assert [int(b) for b in best[: len(marked)]] == marked
        assert counts[best] / 300 > 0.5

    def test_iterations_default_near_optimal(self):
        circuit = grover(3)
        # pi/4 * sqrt(8) ~ 2.2 -> 2 iterations.
        assert "grover" in circuit.name

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            grover(1)

    def test_rejects_bad_marked(self):
        with pytest.raises(ValueError):
            grover(3, marked=[1, 0])


class TestVqeAnsatz:
    def test_linear_entanglement_structure(self):
        from repro.core import InteractionGraph

        circuit = vqe_ansatz(5, num_layers=2, entanglement="linear", seed=0)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.num_edges == 4
        assert all(b - a == 1 for a, b, _ in graph.edges())

    def test_circular_closes_ring(self):
        from repro.core import InteractionGraph

        circuit = vqe_ansatz(5, num_layers=1, entanglement="circular", seed=0)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.has_edge(0, 4)

    def test_full_entanglement(self):
        from repro.core import InteractionGraph

        circuit = vqe_ansatz(4, num_layers=1, entanglement="full", seed=0)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.num_edges == 6

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            vqe_ansatz(4, entanglement="stellar")

    def test_deterministic_with_seed(self):
        assert vqe_ansatz(4, seed=3) == vqe_ansatz(4, seed=3)


class TestQuantumVolume:
    def test_square_by_default(self):
        from repro.workloads import quantum_volume

        circuit = quantum_volume(4, seed=0)
        # depth layers, each with floor(n/2) blocks of 2 cx.
        assert circuit.count_ops()["cx"] == 4 * 2 * 2

    def test_normalised_output(self):
        import numpy as np

        from repro.sim import statevector
        from repro.workloads import quantum_volume

        state = statevector(quantum_volume(4, seed=2))
        assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0)

    def test_dense_interaction_graph(self):
        from repro.core import InteractionGraph
        from repro.workloads import quantum_volume

        graph = InteractionGraph.from_circuit(quantum_volume(6, depth=20, seed=1))
        assert graph.num_edges >= 12  # approaches the complete graph (15)

    def test_odd_width_leaves_one_idle_per_layer(self):
        from repro.workloads import quantum_volume

        circuit = quantum_volume(5, depth=1, seed=3)
        assert circuit.count_ops()["cx"] == 2 * 2

    def test_deterministic(self):
        from repro.workloads import quantum_volume

        assert quantum_volume(4, seed=9) == quantum_volume(4, seed=9)

    def test_validation(self):
        from repro.workloads import quantum_volume

        with pytest.raises(ValueError):
            quantum_volume(1)
        with pytest.raises(ValueError):
            quantum_volume(4, depth=0)
