"""The compilation service: queue, dispatcher, warm workers, cache.

:class:`CompilationService` is the long-lived serving path the batch
runner cannot be: requests are admitted into a priority
:class:`~repro.service.queue.JobQueue`, dispatched in priority order,
answered from the cross-request :class:`~repro.service.cache.
ResultCache` when possible, and otherwise compiled — inline
(``workers=0``) or on a :class:`~repro.service.workers.WarmWorkerPool`.

Determinism: the cache lookup happens exactly once per admitted job (at
dispatch), inline and pooled computes share one code path, and payload
bytes are canonical — so a ``workers=0`` and a ``workers=4`` service
given the same requests return byte-identical payloads, and the local
hit/miss/eviction counters are exact (``hits + misses == dispatched
requests``).  Concurrent requests for one key are *coalesced*: they
count as misses at lookup time but ride the single in-flight compute
instead of duplicating it.

Fault tolerance: each job compiles under the resilience engine
(deadline, seeded retries, degradation chain), and the parent watches
worker *health*, not just liveness: each worker stamps a shared
heartbeat timestamp on every loop turn (SIGKILL-safe, unlike a queue
message), so a watchdog catches hung workers — process alive, compute
wedged, stamp silent past ``heartbeat_budget_s`` — and SIGKILLs them
onto the same recovery path
a crashed worker takes.  Assignment is parent-side (one task queue per
worker), so when a worker dies mid-job (e.g. an injected ``kill``
fault) the parent's own books name the lost job; a bounded recovery
thread re-dispatches it with a fault-plan attempt offset (completions
are labelled ``served_by="recovery"``), and a job that keeps killing
or hanging workers is **quarantined** after ``max_job_attempts``
incidents — a terminal error carrying the attempt history — so one
poison request can never wedge the dispatcher or eat the pool.

Shutdown: :meth:`CompilationService.drain` closes admission (typed
:class:`~repro.service.jobs.ServiceDraining` rejections), finishes
in-flight work under a deadline, journals whatever was still queued to
a JSONL file a later process can resubmit from, and then stops —
``repro serve`` wires it to SIGTERM/SIGINT.
"""

from __future__ import annotations

import json
import pickle
import queue as stdlib_queue
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit, to_qasm
from ..compiler.routing import NoiseAwareRouter, refresh_distance_caches
from ..hardware import resolve_device
from ..hardware.device import Device
from ..hardware.drift import CalibrationDelta, CalibrationStream, DriftDiff
from ..runtime import shm
from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing
from .cache import ResultCache, ResultKey, calibration_version, result_key
from .jobs import (
    CompileRequest,
    CompileResponse,
    Job,
    ServiceDraining,
    ServiceError,
)
from .queue import JobQueue
from .workers import (
    WarmWorkerPool,
    compute_payload,
    prewarm,
    publish_prewarm_tables,
)

__all__ = ["CompilationService", "DrainReport", "ServiceClient"]


@dataclass
class DrainReport:
    """What one graceful drain accomplished, for the operator's log."""

    completed: int = 0  #: jobs that finished during the drain window
    journaled: int = 0  #: queued jobs written to the drain journal
    failed_inflight: int = 0  #: in-flight jobs the deadline cut off
    journal_path: Optional[str] = None
    deadline_hit: bool = False
    wall_s: float = 0.0
    quarantined: int = 0
    extra: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "completed": self.completed,
            "journaled": self.journaled,
            "failed_inflight": self.failed_inflight,
            "journal_path": self.journal_path,
            "deadline_hit": self.deadline_hit,
            "wall_s": round(self.wall_s, 4),
            "quarantined": self.quarantined,
            **self.extra,
        }


class CompilationService:
    """Queue + cache + warm workers behind a ``submit()`` front door."""

    def __init__(
        self,
        workers: int = 0,
        devices: Sequence[str] = ("surface17",),
        cache_capacity: int = 128,
        class_limits: Optional[Dict[str, int]] = None,
        max_queue_depth: Optional[int] = None,
        start_timeout_s: float = 60.0,
        zero_copy: bool = False,
        heartbeat_budget_s: Optional[float] = 30.0,
        max_job_attempts: int = 3,
        recovery_backlog: int = 128,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline)")
        if max_job_attempts < 1:
            raise ValueError("max_job_attempts must be >= 1")
        self.workers = workers
        #: Opt-in shared-memory prewarm: the parent publishes each
        #: device's distance/incident tables once and workers attach
        #: read-only views instead of rebuilding them per process (see
        #: docs/performance.md).  Ignored when ``workers == 0`` or the
        #: platform lacks shared memory.
        self.zero_copy = zero_copy
        self.device_specs = tuple(devices)
        self.cache = ResultCache(cache_capacity)
        self.queue = JobQueue(class_limits=class_limits, max_depth=max_queue_depth)
        self._devices: Dict[str, Device] = {}
        self._start_timeout_s = start_timeout_s
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._running = False
        self._threads: List[threading.Thread] = []
        self._pool: Optional[WarmWorkerPool] = None
        self._shm_segments: List[str] = []
        self._idle: "stdlib_queue.Queue[int]" = stdlib_queue.Queue()
        # One lock guards all dispatch bookkeeping: in-flight jobs by
        # sequence number, worker -> job assignment, and the coalescing
        # table of jobs waiting on another job's identical compute.
        self._state_lock = threading.Lock()
        self._inflight: Dict[int, Job] = {}
        self._assigned: Dict[int, int] = {}
        self._pending: Dict[ResultKey, List[Job]] = {}
        # Streaming calibration drift: one stream per device spec, plus
        # a lock serialising drift application against admission — a
        # submit snapshots (device, epoch) atomically, so a job can
        # never pair epoch N with epoch N+1's calibration.
        self._streams: Dict[str, CalibrationStream] = {}
        self._drift_lock = threading.Lock()
        # Health watchdog: no beat from an *alive* worker for longer
        # than the budget means it is hung (wedged compute, lost queue
        # feeder) and gets SIGKILLed onto the crash-recovery path.
        # ``None`` disables the watchdog.
        self.heartbeat_budget_s = heartbeat_budget_s
        self._hang_suspects: set = set()
        # Poison-job quarantine + bounded recovery: jobs whose worker
        # died are re-dispatched by a dedicated thread (never the
        # dispatcher), and quarantined once they have caused
        # ``max_job_attempts`` worker-fatal incidents.
        self.max_job_attempts = max_job_attempts
        self._recovery: "stdlib_queue.Queue[Optional[Job]]" = (
            stdlib_queue.Queue(maxsize=recovery_backlog)
        )
        self._recovery_active = 0
        self.quarantined: List[Dict] = []
        self._draining = False
        self.drift_updates_total = 0
        self.drift_rows_recomputed_total = 0
        self.drift_tables_refreshed_total = 0
        self.drift_wholesale_rebuilds_total = 0
        self.requests_total = 0
        self.coalesced_total = 0
        self.recovered_total = 0
        self.failed_total = 0
        self.hangs_total = 0
        self.quarantined_total = 0
        self.respawns_total: Dict[str, int] = {"crash": 0, "hang": 0}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CompilationService":
        if self._running:
            raise ServiceError("service already started")
        for spec in self.device_specs:
            self._device(spec)
        self._running = True
        if self.workers > 0:
            shm_tables = None
            if self.zero_copy and shm.is_available():
                # Build the derived tables once here and publish them;
                # every worker attaches instead of recomputing.  The
                # segment names are kept so stop() can release them.
                shm_tables, self._shm_segments = publish_prewarm_tables(
                    self._devices
                )
            # Idle workers must beat at least a few times per budget or
            # an idle-but-hung worker would only be caught one full tick
            # late.
            idle_tick_s = 2.0
            if self.heartbeat_budget_s is not None:
                idle_tick_s = max(0.05, min(2.0, self.heartbeat_budget_s / 4))
            self._pool = WarmWorkerPool(
                self.workers,
                self.device_specs,
                shm_tables=shm_tables,
                idle_tick_s=idle_tick_s,
            )
            self._pool.start()
            collector = threading.Thread(
                target=self._collect_loop, name="repro-service-collector",
                daemon=True,
            )
            collector.start()
            self._threads.append(collector)
            recovery = threading.Thread(
                target=self._recovery_loop, name="repro-service-recovery",
                daemon=True,
            )
            recovery.start()
            self._threads.append(recovery)
            self._await_ready()
        else:
            # Inline mode still prewarms, so first-request latency and
            # warm-table behaviour match the pooled configuration.
            prewarm(self._devices.values())
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher",
            daemon=True,
        )
        dispatcher.start()
        self._threads.append(dispatcher)
        return self

    def _await_ready(self) -> None:
        """Block until every worker's prewarm finished (collector marks
        them idle as the ``ready`` messages arrive)."""
        deadline = time.monotonic() + self._start_timeout_s
        while self._idle.qsize() < self.workers:
            if time.monotonic() > deadline:  # pragma: no cover - stall guard
                raise ServiceError(
                    f"only {self._idle.qsize()}/{self.workers} workers "
                    f"ready after {self._start_timeout_s}s"
                )
            time.sleep(0.01)

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=15.0)
        self._threads.clear()
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        # Unlink the published prewarm segments.  Workers that are
        # still unwinding keep their existing mappings (POSIX unlink
        # only removes the name), so ordering is not delicate here.
        shm.release_many(self._shm_segments)
        self._shm_segments = []
        # Anything still unresolved loses its service; say so.
        with self._state_lock:
            leftovers = list(self._inflight.values())
            for waiters in self._pending.values():
                leftovers.extend(waiters)
            self._inflight.clear()
            self._assigned.clear()
            self._pending.clear()
        while True:  # recovery backlog the recovery thread never reached
            try:
                job = self._recovery.get_nowait()
            except stdlib_queue.Empty:
                break
            if job is not None:
                leftovers.append(job)
        for job in leftovers:
            job.fail("service shut down")

    def __enter__(self) -> "CompilationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- front door ----------------------------------------------------
    def submit(self, request: CompileRequest) -> Job:
        """Admit one request; raises
        :class:`~repro.service.queue.AdmissionError` under overload."""
        if not self._running:
            raise ServiceError("service is not running")
        if self._draining:
            telemetry_metrics.counter(
                "service_admission_rejects_total", reason="draining"
            ).inc()
            raise ServiceDraining(
                "service is draining: admission is closed, in-flight "
                "work is finishing; resubmit to another instance"
            )
        request.validate()
        self._device(request.device)  # resolve + create the stream
        with self._drift_lock:
            # Atomic admission snapshot: the device (with its current
            # drifted calibration) and the stream epoch, taken together.
            device = self._devices[request.device]
            stream = self._streams.get(request.device)
            epoch = stream.epoch if stream is not None else 0
        key = result_key(
            request.circuit, request.device, device, request.mapper, epoch=epoch
        )
        with self._seq_lock:
            self._seq += 1
            job = Job(self._seq, request, key)
        job.device = device
        job.epoch = epoch
        job.submitted_s = time.perf_counter()
        self.queue.push(job)
        self.requests_total += 1
        telemetry_metrics.counter(
            "service_requests_total", priority=request.priority
        ).inc()
        return job

    def _device(self, spec: str) -> Device:
        device = self._devices.get(spec)
        if device is None:
            try:
                device = resolve_device(spec)
            except ValueError as exc:
                raise ServiceError(str(exc)) from exc
            self._devices[spec] = device
        if spec not in self._streams:
            self._streams[spec] = CalibrationStream(
                device.calibration, name=spec
            )
        return device

    # -- streaming calibration drift -----------------------------------
    def calibration_epoch(self, device: str = "surface17") -> int:
        """Current drift epoch of one device's calibration stream."""
        stream = self._streams.get(device)
        return stream.epoch if stream is not None else 0

    def calibration_digest(self, device: str = "surface17") -> str:
        """Cache-key digest of one device's *current* calibration.

        This is the ``calibration`` component every job admitted at the
        current epoch carries in its :class:`ResultKey` — recording it
        per epoch lets an external checker (the chaos harness) verify
        epoch pinning end to end: a payload's embedded digest must equal
        the digest of the epoch the job was admitted at, never a later
        one.
        """
        return calibration_version(self._device(device).calibration)

    def apply_drift(
        self, delta: CalibrationDelta, device: str = "surface17"
    ) -> DriftDiff:
        """Apply one streaming calibration update to a served device.

        Under the drift lock (so no admission can interleave): bumps the
        device's stream epoch, swaps in the drifted device, migrates the
        parent's cached noise distance table incrementally (only rows
        reachable through changed edges recompute — see
        :func:`repro.compiler.routing.refresh_distance_caches`),
        republishes the zero-copy prewarm tables when the pool attaches
        them, and broadcasts the diff to every live worker.  Jobs
        admitted before the call keep their pinned epoch-N device;
        jobs admitted after compile at N+1 under a fresh cache key.
        """
        if not self._running:
            raise ServiceError("service is not running")
        self._device(device)
        with self._drift_lock:
            stream = self._streams[device]
            old_device = self._devices[device]
            diff = stream.apply(delta)
            new_device = replace(old_device, calibration=stream.calibration)
            # Migrates the parent's cached noise table when present
            # (prewarmed inline mode, zero-copy publish); a pool-mode
            # parent that never built one just lets the next inline
            # compute (crash recovery) build lazily under the new key.
            refresh = refresh_distance_caches(old_device, new_device, diff)
            self._devices[device] = new_device
            self.drift_updates_total += 1
            self.drift_tables_refreshed_total += refresh.tables_refreshed
            self.drift_rows_recomputed_total += refresh.rows_recomputed
            self.drift_wholesale_rebuilds_total += refresh.wholesale_rebuilds
            refs = None
            if (
                self._pool is not None
                and self._pool.shm_tables is not None
                and device in self._pool.shm_tables
                and shm.is_available()
            ):
                refs = self._republish_prewarm(device, new_device)
            if self._pool is not None:
                self._pool.broadcast_drift(
                    device, new_device.calibration, diff, refs
                )
        return diff

    def _republish_prewarm(self, spec: str, device: Device) -> dict:
        """Publish fresh noise/calibration segments for a drifted spec.

        The hop matrix and incident table depend only on the coupling
        graph, so their segments are reused; the noise matrix and the
        calibration blob are republished and the stale segments
        unlinked.  Workers holding views of the old noise table keep
        them (POSIX unlink removes the name, not live mappings) — those
        views stay seeded under the *old* cache key, which epoch-pinned
        jobs still legitimately resolve.  Workers respawned after this
        point attach the new refs; if a respawn races the unlink it
        falls back to a local rebuild.
        """
        assert self._pool is not None and self._pool.shm_tables is not None
        old_refs = self._pool.shm_tables[spec]
        noise = NoiseAwareRouter()._distance_matrix(device)
        noise_ref = shm.publish_array(noise)
        _, (calibration_ref,) = shm.publish_bytes(
            [pickle.dumps(device.calibration, protocol=pickle.HIGHEST_PROTOCOL)]
        )
        refs = dict(old_refs)
        refs["noise"] = noise_ref
        refs["calibration"] = calibration_ref
        self._shm_segments.extend(
            (noise_ref.segment, calibration_ref.segment)
        )
        stale = [old_refs["noise"].segment]
        old_calibration = old_refs.get("calibration")
        if (
            old_calibration is not None
            and old_calibration.segment != old_refs["incident"].segment
        ):
            stale.append(old_calibration.segment)
        shm.release_many(stale)
        for name in stale:
            if name in self._shm_segments:
                self._shm_segments.remove(name)
        return refs

    # -- graceful drain ------------------------------------------------
    def drain(
        self,
        deadline_s: float = 10.0,
        journal: Optional[str] = None,
    ) -> DrainReport:
        """Gracefully wind the service down and stop it.

        1. Close admission: new :meth:`submit` calls raise
           :class:`~repro.service.jobs.ServiceDraining` and the
           dispatcher stops feeding queued work to workers.
        2. Wait up to ``deadline_s`` for everything already dispatched
           (in-flight on workers, coalesced waiters, recovery backlog)
           to resolve.
        3. Journal whatever is still *queued* to ``journal`` (JSONL, one
           ``{"seq", "priority", "device", "mapper", "epoch", "qasm"}``
           line per job — enough to resubmit elsewhere) and fail those
           jobs with a :class:`ServiceDraining`-worded error naming the
           journal.
        4. Stop: threads joined, pool escalation-stopped, shm segments
           released.

        Safe to call from a signal handler's thread; idempotent-ish in
        that a second call on a stopped service raises ``ServiceError``.
        """
        if not self._running:
            raise ServiceError("service is not running")
        start = time.perf_counter()
        self._draining = True
        deadline = time.monotonic() + max(0.0, deadline_s)
        while time.monotonic() < deadline:
            with self._state_lock:
                busy = bool(self._inflight or self._pending)
            if not busy and self._recovery.qsize() == 0 and (
                self._recovery_active == 0
            ):
                break
            time.sleep(0.01)
        with self._state_lock:
            deadline_hit = bool(self._inflight or self._pending)
        leftovers = self.queue.drain()
        journal_path: Optional[str] = None
        if leftovers and journal:
            journal_path = str(journal)
            path = Path(journal_path)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as handle:
                for job in leftovers:
                    handle.write(
                        json.dumps(
                            {
                                "seq": job.seq,
                                "priority": job.request.priority,
                                "device": job.request.device,
                                "mapper": job.request.mapper,
                                "epoch": job.epoch,
                                "deadline_s": job.request.deadline_s,
                                "qasm": to_qasm(job.request.circuit),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
        for job in leftovers:
            where = (
                f"; journaled to {journal_path}" if journal_path else ""
            )
            self.failed_total += 1
            job.fail(f"service draining before dispatch{where}")
        inflight_before_stop = 0
        with self._state_lock:
            inflight_before_stop = len(self._inflight) + sum(
                len(w) for w in self._pending.values()
            )
        self.stop()
        report = DrainReport(
            completed=self.requests_total - self.failed_total,
            journaled=len(leftovers),
            failed_inflight=inflight_before_stop if deadline_hit else 0,
            journal_path=journal_path,
            deadline_hit=deadline_hit,
            wall_s=time.perf_counter() - start,
            quarantined=self.quarantined_total,
        )
        if tracing.is_enabled():
            telemetry_metrics.counter("service_drain_journaled_total").inc(
                len(leftovers)
            )
        return report

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            if self._draining:
                # Drain stops feeding new work; whatever is still queued
                # is journaled by drain() rather than dispatched.
                break
            job = self.queue.pop(timeout=0.05)
            if job is None:
                if not self._running:
                    break
                continue
            payload = self.cache.get(job.key)
            if payload is not None:
                self._resolve(job, payload, cached=True, served_by="cache")
                continue
            with self._state_lock:
                waiters = self._pending.get(job.key)
                if waiters is not None:
                    # An identical compute is already in flight: ride it
                    # instead of duplicating the work.
                    waiters.append(job)
                    self.coalesced_total += 1
                    telemetry_metrics.counter(
                        "service_jobs_coalesced_total"
                    ).inc()
                    continue
                self._pending[job.key] = []
            if self._pool is None:
                self._compute_here(job, served_by="inline")
            else:
                self._dispatch_to_worker(job)

    def _dispatch_to_worker(self, job: Job) -> None:
        """Hand a job to the next idle worker (keeps the backlog in the
        *priority* queue — dispatching ahead of worker capacity would
        turn it into FIFO order at the workers' doors)."""
        assert self._pool is not None
        while True:
            try:
                worker_id = self._idle.get(timeout=0.1)
            except stdlib_queue.Empty:
                if not self._running:
                    self._finish_error(job, "service shut down")
                    return
                continue
            if not self._pool.is_alive(worker_id):
                # Stale idle token of a worker that died between jobs;
                # the collector respawns it and a fresh token arrives.
                continue
            break
        with self._state_lock:
            self._inflight[job.seq] = job
            self._assigned[worker_id] = job.seq
        try:
            self._pool.submit(
                worker_id,
                job.seq,
                job.request,
                calibration=(
                    job.device.calibration if job.device is not None else None
                ),
                epoch=job.epoch,
                attempt_base=len(job.attempt_history),
            )
        except KeyError:  # pragma: no cover - respawn race guard
            with self._state_lock:
                self._inflight.pop(job.seq, None)
                self._assigned.pop(worker_id, None)
            self._compute_here(job, served_by="recovery")

    # -- completion ----------------------------------------------------
    def _compute_here(self, job: Job, served_by: str) -> None:
        """Inline compile (dispatcher thread, or crash recovery).

        Uses the device snapshot pinned at admission, *not* the live
        device — drift applied while the job sat in the queue must not
        leak into a payload cached under the admission epoch's key.
        """
        device = job.device
        if device is None:  # jobs constructed outside submit() (tests)
            device = self._device(job.request.device)
        try:
            payload = compute_payload(
                job.request, device, attempt_base=len(job.attempt_history)
            )
        except Exception as exc:  # noqa: BLE001 - reported on the job
            self._finish_error(job, f"{type(exc).__name__}: {exc}")
            return
        self._finish(job, payload, served_by=served_by)

    def _finish(self, job: Job, payload: bytes, served_by: str) -> None:
        """Cache a computed payload; resolve the job and its coalesced
        waiters (who are served the freshly cached bytes)."""
        if tracing.is_enabled():
            telemetry_metrics.histogram(
                "payload_bytes",
                buckets=telemetry_metrics.BYTE_BUCKETS,
                path="service_result",
            ).observe(float(len(payload)))
        self.cache.put(job.key, payload)
        with self._state_lock:
            waiters = self._pending.pop(job.key, [])
        self._resolve(job, payload, cached=False, served_by=served_by)
        for waiter in waiters:
            self._resolve(waiter, payload, cached=True, served_by="coalesced")

    def _finish_error(self, job: Job, error: str) -> None:
        with self._state_lock:
            waiters = self._pending.pop(job.key, [])
        for failed in [job] + waiters:
            self.failed_total += 1
            failed.fail(error)

    def _resolve(
        self, job: Job, payload: bytes, cached: bool, served_by: str
    ) -> None:
        job.resolve(
            CompileResponse(
                payload=payload,
                cached=cached,
                elapsed_s=time.perf_counter() - job.submitted_s,
                served_by=served_by,
            )
        )

    # -- collector (pool mode) -----------------------------------------
    def _collect_loop(self) -> None:
        assert self._pool is not None
        while True:
            for message in self._pool.poll_messages(timeout_s=0.1):
                self._handle_message(message)
            self._check_hung_workers()
            self._recover_dead_workers()
            if not self._running and not self._inflight:
                break

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "ready":
            self._idle.put(message[1])
            return
        if kind == "done":
            _, worker_id, job_seq, payload, error = message
            with self._state_lock:
                job = self._inflight.pop(job_seq, None)
                if self._assigned.get(worker_id) == job_seq:
                    self._assigned.pop(worker_id)
            if job is not None:
                served_by = "recovery" if job.recovering else f"worker-{worker_id}"
                if error is not None:
                    self._finish_error(job, error)
                else:
                    self._finish(job, payload, served_by=served_by)
            # else: already recovered after a presumed-dead worker; the
            # late result is redundant (and byte-identical).
            assert self._pool is not None
            if self._pool.is_alive(worker_id):
                self._idle.put(worker_id)

    def _check_hung_workers(self) -> None:
        """The watchdog half of worker health: kill silent-but-alive
        workers so the ordinary dead-worker sweep recovers their job.

        A worker is *hung* when its process is alive but it has not
        stamped its shared heartbeat slot (idle tick, task pickup,
        completion — see ``_worker_main``) for longer than
        ``heartbeat_budget_s``.  SIGKILL converts the hang into the
        crash case the parent already knows how to recover — one code
        path for both failure modes.  The budget must exceed the longest
        legitimate compute: a worker does not beat *during* a compute,
        so the stamp going quiet past the budget is the hang signal.
        Startup is exempt — a worker stamps its first beat only once
        prewarmed (0.0 until then), because prewarm cost varies with
        device size and host load and must not be raced by the budget.
        """
        if self.heartbeat_budget_s is None:
            return
        assert self._pool is not None
        now = time.monotonic()
        for worker_id, beat in self._pool.heartbeats().items():
            if beat == 0.0:
                continue  # still prewarming; startup is not watched
            if worker_id in self._hang_suspects:
                continue  # already SIGKILLed; death lands asynchronously
            if now - beat <= self.heartbeat_budget_s:
                continue
            if not self._pool.is_alive(worker_id):
                continue  # already dead: the crash sweep owns it
            if self._pool.kill(worker_id):
                self.hangs_total += 1
                self._hang_suspects.add(worker_id)
                telemetry_metrics.counter("worker_hangs_total").inc()

    def _recover_dead_workers(self) -> None:
        """Respawn dead workers; route their assigned jobs to recovery.

        Each lost job gets one incident appended to its attempt history
        (``kind`` is ``"hang"`` when the watchdog killed the worker,
        ``"crash"`` otherwise) and is then either re-dispatched through
        the bounded recovery thread or — once it has caused
        ``max_job_attempts`` worker-fatal incidents — quarantined.
        """
        assert self._pool is not None
        dead = self._pool.dead_workers()
        if not dead:
            return
        reasons = {
            worker_id: ("hang" if worker_id in self._hang_suspects else "crash")
            for worker_id in dead
        }
        lost: List[tuple] = []
        with self._state_lock:
            for worker_id in dead:
                job_seq = self._assigned.pop(worker_id, None)
                if job_seq is not None:
                    job = self._inflight.pop(job_seq, None)
                    if job is not None:
                        lost.append((worker_id, job))
        for worker_id in dead:
            self._hang_suspects.discard(worker_id)
            self.respawns_total[reasons[worker_id]] += 1
            telemetry_metrics.counter(
                "worker_respawns_total", reason=reasons[worker_id]
            ).inc()
            # The respawned worker announces itself with a ``ready``
            # message, which re-feeds the idle pool.
            self._pool.respawn(worker_id)
        for worker_id, job in lost:
            job.attempt_history.append(
                {
                    "kind": reasons[worker_id],
                    "worker": worker_id,
                    "epoch": job.epoch,
                }
            )
            if len(job.attempt_history) >= self.max_job_attempts:
                self._quarantine(job)
                continue
            self.recovered_total += 1
            telemetry_metrics.counter("service_jobs_recovered_total").inc()
            self._enqueue_recovery(job)

    def _enqueue_recovery(self, job: Job) -> None:
        job.recovering = True
        try:
            self._recovery.put_nowait(job)
        except stdlib_queue.Full:  # pragma: no cover - backlog bound
            self._finish_error(job, "recovery backlog full")

    def _quarantine(self, job: Job) -> None:
        """Terminal-fail a job whose compute keeps taking workers down.

        The job (and any coalesced waiters) get a typed error carrying
        the full attempt history; a bounded record lands in
        :attr:`quarantined` for ``stats()`` and the counter moves — but
        the job is *never* recomputed, inline or otherwise: by now it
        has proven it kills whatever process runs it.
        """
        job.quarantined = True
        self.quarantined_total += 1
        telemetry_metrics.counter("jobs_quarantined_total").inc()
        history = job.attempt_history
        entry = {
            "seq": job.seq,
            "circuit": job.key.circuit,
            "device": job.key.device,
            "mapper": job.key.mapper,
            "epoch": job.epoch,
            "priority": job.request.priority,
            "attempts": list(history),
            "reason": (
                f"{len(history)} worker-fatal incidents "
                f"({', '.join(i['kind'] for i in history)})"
            ),
        }
        self.quarantined.append(entry)
        del self.quarantined[:-64]  # bounded: stats() is not a database
        with self._state_lock:
            waiters = self._pending.pop(job.key, [])
        error = (
            f"quarantined after {len(history)} worker-fatal attempts "
            f"[{', '.join(i['kind'] for i in history)}] "
            f"(max_job_attempts={self.max_job_attempts})"
        )
        for failed in [job] + waiters:
            failed.quarantined = True
            self.failed_total += 1
            failed.fail(error)

    def _recovery_loop(self) -> None:
        """Re-dispatch jobs whose worker died — off the dispatcher.

        Recovery used to recompute inline on whichever thread noticed
        the death; a poison job (or merely a slow one) would stall
        dispatch and admission behind it.  This thread is the only
        place recovery compute is initiated now, its backlog is
        bounded, and it prefers re-dispatching to a (respawned) pool
        worker — the parent only computes recovery payloads itself when
        the pool is gone (shutdown races).
        """
        while True:
            try:
                job = self._recovery.get(timeout=0.1)
            except stdlib_queue.Empty:
                if not self._running:
                    break
                continue
            if job is None:
                break
            self._recovery_active += 1
            try:
                if self._pool is not None and self._running:
                    self._dispatch_to_worker(job)
                else:  # pragma: no cover - shutdown race
                    self._compute_here(job, served_by="recovery")
            finally:
                self._recovery_active -= 1

    # -- fault-injection hooks (drills and the chaos harness) ----------
    def alive_workers(self) -> int:
        """Live pool processes right now (0 in inline mode)."""
        return self._pool.alive_count() if self._pool is not None else 0

    def inject_worker_kill(self, worker_id: Optional[int] = None) -> Optional[int]:
        """SIGKILL one live pool worker; returns its id (None if none).

        The sanctioned way for drills and the chaos harness to take a
        worker down mid-flight without reaching into pool internals —
        the collector's dead-worker sweep must then respawn it and
        recover whatever job it held.
        """
        if self._pool is None:
            return None
        alive = sorted(
            w for w in self._pool.worker_ids() if self._pool.is_alive(w)
        )
        if not alive:
            return None
        victim = worker_id if worker_id is not None else alive[0]
        return victim if self._pool.kill(victim) else None

    def inject_shm_unlink(self) -> Optional[str]:
        """Unlink one published shared-memory segment; returns its name.

        Simulates losing a zero-copy prewarm segment out from under the
        service (a crashed publisher, an over-eager cleaner).  Workers
        respawned afterwards must fall back to local table rebuilds —
        attach is an optimisation, never a correctness dependency — and
        nothing may leak: the name is dropped from the release list so
        shutdown accounting stays exact.
        """
        for name in list(self._shm_segments):
            if shm.unlink(name):
                self._shm_segments.remove(name)
                return name
        return None

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "zero_copy": bool(self.zero_copy and self.workers > 0),
            "dispatch_bytes": (
                self._pool.dispatch_bytes_total if self._pool is not None else 0
            ),
            "requests": self.requests_total,
            "coalesced": self.coalesced_total,
            "recovered": self.recovered_total,
            "failed": self.failed_total,
            "draining": self._draining,
            "health": {
                "heartbeat_budget_s": self.heartbeat_budget_s,
                "hangs": self.hangs_total,
                "respawns": dict(self.respawns_total),
            },
            "quarantine": {
                "total": self.quarantined_total,
                "max_job_attempts": self.max_job_attempts,
                "jobs": list(self.quarantined),
            },
            "drift": {
                "epochs": {
                    spec: stream.epoch
                    for spec, stream in self._streams.items()
                },
                "updates": self.drift_updates_total,
                "tables_refreshed": self.drift_tables_refreshed_total,
                "rows_recomputed": self.drift_rows_recomputed_total,
                "wholesale_rebuilds": self.drift_wholesale_rebuilds_total,
            },
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
        }


def install_drain_handlers(
    service: CompilationService,
    journal: Optional[str] = None,
    deadline_s: float = 10.0,
) -> dict:
    """Wire SIGTERM/SIGINT to a graceful :meth:`~CompilationService.drain`.

    On either signal the service stops admission, finishes in-flight
    work under ``deadline_s``, journals the queued backlog to
    ``journal`` and exits with status 0 — so ``kill <pid>`` (or Ctrl-C)
    on ``repro serve`` is a clean drain, not an abandonment.  Returns
    the previous handlers keyed by signal number so a caller (tests)
    can restore them.  Must run on the main thread (CPython restricts
    ``signal.signal`` to it).
    """
    import signal as _signal
    import sys as _sys

    def _handler(signum, frame):  # pragma: no cover - exercised via kill
        name = _signal.Signals(signum).name
        print(f"{name} received; draining ...", file=_sys.stderr)
        report = service.drain(deadline_s=deadline_s, journal=journal)
        print(
            f"drained: {report.completed} completed, "
            f"{report.journaled} journaled"
            + (f" to {report.journal_path}" if report.journal_path else "")
            + (", deadline hit" if report.deadline_hit else ""),
            file=_sys.stderr,
        )
        raise SystemExit(0)

    previous = {}
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        previous[signum] = _signal.signal(signum, _handler)
    return previous


class ServiceClient:
    """In-process client: the test/benchmark-facing face of the service."""

    def __init__(self, service: CompilationService) -> None:
        self.service = service

    def compile(
        self,
        circuit: Circuit,
        device: str = "surface17",
        mapper: str = "sabre",
        priority: str = "batch",
        timeout: Optional[float] = 120.0,
        deadline_s: Optional[float] = None,
        faults: str = "",
    ) -> CompileResponse:
        """Submit one circuit and block for its response."""
        request = CompileRequest(
            circuit=circuit,
            device=device,
            mapper=mapper,
            priority=priority,
            deadline_s=deadline_s,
            faults=faults,
        )
        return self.service.submit(request).result(timeout=timeout)

    def compile_many(
        self,
        requests: Sequence[CompileRequest],
        timeout: Optional[float] = 300.0,
    ) -> List[CompileResponse]:
        """Submit a batch, then gather responses in submission order."""
        jobs = [self.service.submit(request) for request in requests]
        return [job.result(timeout=timeout) for job in jobs]

    def stats(self) -> dict:
        return self.service.stats()
