"""Deterministic mixed-priority load generation for the service.

Shared by ``repro serve`` (self-driving demo mode) and
``benchmarks/bench_service.py``: builds a seeded corpus of distinct
circuits, samples a request stream with repeats (repeats are what the
cross-request cache exists for), and drives the stream through a
running service in bounded waves, collecting per-request latencies.

Waves are the load generator's concurrency knob: each wave is submitted
as a batch and gathered before the next, so repeated circuits usually
arrive *after* their first compute finished and land as cache hits
(within-wave repeats ride the in-flight compute as coalesced misses
instead — still just one compute per distinct key).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit
from ..workloads import random_circuit
from .jobs import PRIORITY_CLASSES, CompileRequest
from .service import CompilationService, ServiceClient

__all__ = ["LoadReport", "build_corpus", "generate_requests", "drive"]


def build_corpus(
    num_circuits: int,
    seed: int = 7,
    min_qubits: int = 4,
    max_qubits: int = 7,
) -> List[Circuit]:
    """Seeded distinct circuits spanning a small width/depth range."""
    rng = Random(seed)
    corpus = []
    for index in range(num_circuits):
        qubits = rng.randint(min_qubits, max_qubits)
        gates = rng.randint(20, 60)
        corpus.append(
            random_circuit(qubits, gates, 0.5, seed=seed * 10_000 + index)
        )
    return corpus


def generate_requests(
    corpus: Sequence[Circuit],
    num_requests: int,
    seed: int = 11,
    device: str = "surface17",
    mapper: str = "sabre",
    fault_at: Optional[int] = None,
    fault: str = "raise@0",
) -> List[CompileRequest]:
    """Sample a mixed-priority request stream over ``corpus``.

    ``fault_at`` injects ``fault`` on that request index (the resilience
    engine absorbs it: a ``raise`` retries, a ``kill`` crashes the
    worker and exercises the parent-side recovery path).  The faulted
    request is pinned to ``interactive`` priority so it dispatches
    before any same-circuit rival and the fault is guaranteed to hit a
    real compute instead of a cache hit or coalesced wait.
    """
    rng = Random(seed)
    requests = []
    for index in range(num_requests):
        circuit = corpus[rng.randrange(len(corpus))]
        priority = PRIORITY_CLASSES[rng.randrange(len(PRIORITY_CLASSES))]
        if index == fault_at:
            priority = PRIORITY_CLASSES[0]
        requests.append(
            CompileRequest(
                circuit=circuit,
                device=device,
                mapper=mapper,
                priority=priority,
                faults=fault if index == fault_at else "",
            )
        )
    return requests


@dataclass
class LoadReport:
    """What one driven load looked like from the client's side."""

    num_requests: int
    wall_s: float
    latencies_s: List[float] = field(default_factory=list)
    stats: Dict = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.num_requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank percentile of per-request latency (seconds)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def cache_hit_rate(self) -> float:
        return self.stats.get("cache", {}).get("hit_rate", 0.0)

    @property
    def no_compute_rate(self) -> float:
        """Share of requests served without a fresh compile (cache hits
        plus coalesced riders on an in-flight identical compute)."""
        served = self.stats.get("cache", {}).get("hits", 0)
        served += self.stats.get("coalesced", 0)
        requests = self.stats.get("requests", 0)
        return served / requests if requests else 0.0

    def summary(self) -> Dict:
        """JSON-ready digest (what ``BENCH_service.json`` commits)."""
        cache = self.stats.get("cache", {})
        return {
            "requests": self.num_requests,
            "wall_s": round(self.wall_s, 4),
            "requests_per_second": round(self.requests_per_second, 2),
            "latency_p50_ms": round(self.latency_percentile(0.50) * 1e3, 3),
            "latency_p99_ms": round(self.latency_percentile(0.99) * 1e3, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "no_compute_rate": round(self.no_compute_rate, 4),
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
            "cache_evictions": cache.get("evictions", 0),
            "coalesced": self.stats.get("coalesced", 0),
            "recovered": self.stats.get("recovered", 0),
            "failed": self.stats.get("failed", 0),
            "workers": self.stats.get("workers", 0),
        }


def drive(
    service: CompilationService,
    requests: Sequence[CompileRequest],
    wave_size: int = 8,
    timeout: float = 120.0,
) -> LoadReport:
    """Run a request stream through ``service`` in bounded waves."""
    client = ServiceClient(service)
    latencies: List[float] = []
    start = time.perf_counter()
    for offset in range(0, len(requests), wave_size):
        wave = requests[offset : offset + wave_size]
        responses = client.compile_many(wave, timeout=timeout)
        latencies.extend(response.elapsed_s for response in responses)
    wall = time.perf_counter() - start
    return LoadReport(
        num_requests=len(requests),
        wall_s=wall,
        latencies_s=latencies,
        stats=service.stats(),
    )
