"""Compilation-as-a-service: queue, warm workers, cross-request cache.

The serving layer the ROADMAP's north star calls for: a priority job
queue with admission control (:mod:`~repro.service.queue`), persistent
warm worker processes that load device tables, distance caches and the
gate-matrix LRU once (:mod:`~repro.service.workers`), and a
cross-request compiled-result cache keyed on ``(circuit content hash,
device name, calibration version, mapper)`` with exact hit/miss/
eviction counters (:mod:`~repro.service.cache`).  See
``docs/service.md`` for the full contract.

Typical in-process use::

    from repro.service import CompilationService, ServiceClient

    with CompilationService(workers=2, devices=("surface17",)) as service:
        client = ServiceClient(service)
        response = client.compile(circuit, priority="interactive")
        record = response.record()

``repro serve`` boots the same service from the command line.
"""

from .cache import ResultCache, ResultKey, calibration_version, result_key
from .jobs import (
    MAPPERS,
    PRIORITY_CLASSES,
    CompileRequest,
    CompileResponse,
    Job,
    ServiceDraining,
    ServiceError,
)
from .loadgen import LoadReport, build_corpus, drive, generate_requests
from .queue import DEFAULT_CLASS_LIMITS, AdmissionError, JobQueue
from .service import (
    CompilationService,
    DrainReport,
    ServiceClient,
    install_drain_handlers,
)
from .workers import (
    WarmWorkerPool,
    attach_prewarm_tables,
    compute_payload,
    prewarm,
    publish_prewarm_tables,
)

__all__ = [
    "AdmissionError",
    "LoadReport",
    "build_corpus",
    "drive",
    "generate_requests",
    "CompilationService",
    "CompileRequest",
    "CompileResponse",
    "DEFAULT_CLASS_LIMITS",
    "DrainReport",
    "Job",
    "JobQueue",
    "MAPPERS",
    "PRIORITY_CLASSES",
    "ResultCache",
    "ResultKey",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "WarmWorkerPool",
    "attach_prewarm_tables",
    "calibration_version",
    "compute_payload",
    "install_drain_handlers",
    "prewarm",
    "publish_prewarm_tables",
    "result_key",
]
