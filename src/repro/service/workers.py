"""Warm worker processes for the compilation service.

The suite runner pays its per-task cost (pickling payloads, rebuilding
distance tables) on every ``parallel_map`` call; a long-lived service
cannot.  A :class:`WarmWorkerPool` keeps ``N`` persistent processes
that **prewarm once** — resolving every registered device, building the
hop and noise distance matrices and the incident-edge tables, and
priming the gate-matrix LRU — then serve jobs from per-worker task
queues.

Assignment is parent-side: each worker has its own task queue and the
dispatcher hands a job to one *specific* idle worker, so the parent
always knows which job a worker holds.  If the worker process dies
mid-job (e.g. an injected ``kill`` fault), no in-queue message needs to
survive the crash for recovery — the parent's own bookkeeping names the
lost job, which rides the service's recovery thread (re-dispatch with a
fault-plan attempt offset, or quarantine once the job has proven itself
poison) while the worker is respawned.

Result-queue messages (worker -> parent):

``("ready", worker_id, pid)``
    Prewarm finished; the parent marks the worker idle.
``("done", worker_id, job_seq, payload, error)``
    Canonical payload bytes (or an error string) for one job.

Heartbeats deliberately do NOT ride the results queue.  Each worker
stamps ``time.monotonic()`` into a per-worker shared ``Value('d')`` on
every loop turn (idle tick, task pickup, completion); the parent's
health watchdog reads the timestamps to tell a *hung* worker (process
alive, compute wedged, stamp past the budget) from a merely busy one.
A shared double store is SIGKILL-safe, whereas a queue message is not:
killing a worker while its queue feeder thread is mid-write leaves a
partial frame in the shared pipe that desyncs the stream and swallows
the next worker's messages.

Workers compile through the same :func:`compute_payload` the parent's
inline path uses — one code path, so ``workers=0`` and ``workers=N``
produce byte-identical payloads.

Zero-copy prewarm (opt-in): with ``CompilationService(zero_copy=True)``
the parent builds every device's derived tables once, publishes the
hop/noise distance matrices and incident-edge tables into shared memory
(:mod:`repro.runtime.shm`), and each worker *attaches* read-only views
instead of re-running all-pairs shortest paths per process
(:func:`publish_prewarm_tables` / :func:`attach_prewarm_tables`).  If a
segment is gone by the time a worker starts, the worker silently falls
back to building its own tables — attach is an optimisation, never a
correctness dependency.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import os
import pickle
import queue as stdlib_queue
import time
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.gates import Gate, gate_matrix
from ..compiler.routing import (
    NoiseAwareRouter,
    SabreRouter,
    _incident_edges,
    refresh_distance_caches,
    seed_distance_cache,
    seed_incident_cache,
)
from ..experiments.common import _record
from ..hardware import resolve_device
from ..hardware.device import Device
from ..resilience import FaultPlan, ResilienceConfig, map_with_resilience
from ..resilience.policy import RetryPolicy
from ..runtime import shm
from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing
from ..workloads.suite import BenchmarkCircuit
from .cache import result_key
from .jobs import MAPPERS, CompileRequest, build_payload

__all__ = [
    "WarmWorkerPool",
    "attach_prewarm_tables",
    "compute_payload",
    "prewarm",
    "publish_prewarm_tables",
]

#: Parameter-free gates primed into the matrix LRU at worker start.
_PREWARM_GATES = ("h", "x", "y", "z", "s", "t", "sdg", "tdg", "cx", "cz", "swap")


def prewarm(devices: Iterable[Device]) -> int:
    """Build the per-device derived tables once; returns tables built.

    Covers both router metrics (hops and noise) plus the incident-edge
    tables, and primes the gate-matrix LRU with the parameter-free
    basis — after this, a request touches only warm caches.
    """
    warmed = 0
    for device in devices:
        SabreRouter()._distance_matrix(device)
        NoiseAwareRouter()._distance_matrix(device)
        _incident_edges(device.coupling)
        warmed += 3
    for name in _PREWARM_GATES:
        qubits = (0, 1) if name in ("cx", "cz", "swap") else (0,)
        try:
            gate_matrix(Gate(name, qubits))
            warmed += 1
        except (KeyError, ValueError):  # pragma: no cover - registry drift
            continue
    return warmed


def publish_prewarm_tables(
    devices: Dict[str, Device],
) -> Tuple[Dict[str, Dict[str, shm.SegmentRef]], List[str]]:
    """Parent side of the zero-copy prewarm.

    Builds each device's hop and noise distance matrices plus its
    incident-edge table (warming the parent's own caches as a side
    effect) and publishes them into shared memory.  Returns the
    per-device-spec descriptor map to hand to workers and the list of
    segment names the caller must :func:`repro.runtime.shm.release`
    at shutdown.
    """
    tables: Dict[str, Dict[str, shm.SegmentRef]] = {}
    segments: List[str] = []
    for spec, device in devices.items():
        hop = SabreRouter()._distance_matrix(device)
        noise = NoiseAwareRouter()._distance_matrix(device)
        incident = _incident_edges(device.coupling)
        hop_ref = shm.publish_array(hop)
        noise_ref = shm.publish_array(noise)
        _, (incident_ref, calibration_ref) = shm.publish_bytes(
            [
                pickle.dumps(incident, protocol=pickle.HIGHEST_PROTOCOL),
                pickle.dumps(
                    device.calibration, protocol=pickle.HIGHEST_PROTOCOL
                ),
            ]
        )
        tables[spec] = {
            "hop": hop_ref,
            "noise": noise_ref,
            "incident": incident_ref,
            # The calibration the noise table was built under.  A worker
            # spawned *after* a drift resolves the registry's pristine
            # device, so attach must rebind the published calibration
            # before computing cache keys — otherwise the drifted table
            # would be seeded under a stale key and never found.
            "calibration": calibration_ref,
        }
        segments.extend(
            (hop_ref.segment, noise_ref.segment, incident_ref.segment)
        )
    return tables, segments


def attach_prewarm_tables(
    devices: Dict[str, Device],
    tables: Dict[str, Dict[str, shm.SegmentRef]],
) -> int:
    """Worker side of the zero-copy prewarm; returns devices seeded.

    Attaches the published distance matrices as read-only views and
    seeds this process's routing caches, so the subsequent
    :func:`prewarm` call hits warm entries instead of re-running
    all-pairs shortest paths.  A vanished segment (publisher crashed,
    already unlinked, or republished under calibration drift) just
    skips that device — :func:`prewarm` rebuilds the tables locally, so
    no worker ever routes against a stale view.

    When a ref set carries a ``"calibration"`` entry (the calibration
    the published noise table was built under), the device in
    ``devices`` is rebound to it *before* cache keys are computed — a
    worker respawned after a drift therefore seeds the drifted table
    under the drifted key instead of mis-filing it under the registry's
    pristine calibration.
    """
    seeded = 0
    for spec, refs in tables.items():
        device = devices.get(spec)
        if device is None:
            continue
        try:
            calibration_ref = refs.get("calibration")
            if calibration_ref is not None:
                calibration = pickle.loads(shm.read_bytes(calibration_ref))
                if calibration != device.calibration:
                    device = replace(device, calibration=calibration)
                    devices[spec] = device
            hop = shm.attach_array(refs["hop"])
            noise = shm.attach_array(refs["noise"])
            incident = pickle.loads(shm.read_bytes(refs["incident"]))
        except (shm.ShmUnavailable, ValueError, KeyError):
            continue
        seed_distance_cache(SabreRouter()._distance_cache_key(device), hop)
        seed_distance_cache(
            NoiseAwareRouter()._distance_cache_key(device), noise
        )
        seed_incident_cache(device.coupling, incident)
        seeded += 1
    return seeded


def compute_payload(
    request: CompileRequest, device: Device, attempt_base: int = 0
) -> bytes:
    """Compile one request to its canonical payload bytes.

    Runs under the resilience engine (per-job deadline, seeded retries,
    degradation chain), so a transient fault retries with a pristine
    mapper clone and the surviving result is bit-for-bit what a clean
    attempt produces.  The record is named by content hash — request
    cosmetics (circuit ``name``) must not leak into cached bytes.

    ``attempt_base`` is the number of worker-fatal incidents (crash or
    watchdog-killed hang) this job already caused; the fault plan is
    offset by it (:meth:`FaultPlan.offset_attempts`) so an injected
    ``kill@0`` fires exactly once across the whole dispatch history
    instead of once per fresh process.
    """
    circuit = request.circuit
    faults = FaultPlan.parse(request.faults) if request.faults else None
    if faults is not None and attempt_base:
        faults = faults.offset_attempts(attempt_base)
    config = ResilienceConfig(
        deadline_s=request.deadline_s,
        policy=RetryPolicy(),
        faults=faults,
    )
    mapper = MAPPERS[request.mapper]()
    result, info = map_with_resilience(
        circuit, device, mapper, config, circuit_index=0
    )
    key = result_key(circuit, request.device, device, request.mapper)
    benchmark = BenchmarkCircuit(circuit, "random", key.circuit)
    return build_payload(key, _record(benchmark, result), info)


def _apply_worker_drift(devices, spec, calibration, diff, refs) -> None:
    """Migrate one worker's state across a calibration drift.

    Preference order: attach the parent's republished shm noise table
    (zero-copy, zero compute); failing that, migrate the locally cached
    table incrementally through :func:`refresh_distance_caches`; the
    final ``_distance_matrix`` call is a memoised no-op when either
    path landed and a wholesale local rebuild when neither did — a
    worker therefore *never* keeps routing new-epoch jobs against a
    stale view, only ever pays at most one rebuild.
    """
    base = devices.get(spec)
    if base is None:
        return
    new_device = replace(base, calibration=calibration)
    if refs is not None:
        try:
            noise = shm.attach_array(refs["noise"])
            seed_distance_cache(
                NoiseAwareRouter()._distance_cache_key(new_device), noise
            )
        except (shm.ShmUnavailable, ValueError, KeyError):
            pass  # republished segment already gone; fall through
    refresh_distance_caches(base, new_device, diff)
    NoiseAwareRouter()._distance_matrix(new_device)
    devices[spec] = new_device


def _worker_main(
    worker_id,
    device_specs,
    tasks,
    results,
    shm_tables=None,
    idle_tick_s=2.0,
    beat=None,
) -> None:
    """Process entry point: prewarm, then serve tasks until ``None``.

    Tasks arrive as pre-pickled tagged blobs — the parent pickles
    exactly once (with timing/size telemetry) and the queue ships
    opaque bytes, so dispatch serialization cost is both measured and
    paid in one place:

    ``("job", job_seq, request, calibration, epoch, attempt_base)``
        One compile.  ``calibration`` is the admission-epoch snapshot
        the parent pinned on the job; the worker compiles against *it*,
        not its own device state, so a job is correct even when the
        matching drift message is still behind it in the queue (or
        never arrived — respawned workers see no history).
        ``attempt_base`` counts the job's prior worker-fatal dispatches
        (fault-plan offset; see :func:`compute_payload`).
    ``("drift", spec, calibration, diff, refs)``
        A calibration-stream update: rebind the device and migrate the
        local distance caches (see :func:`_apply_worker_drift`).
    ``None``
        Shutdown sentinel.

    ``results`` is this worker's PRIVATE end of a pipe to the parent —
    one pipe per worker, single writer, no shared lock.  A shared
    results *queue* is not SIGKILL-safe: its writers serialise on one
    cross-process lock, and a worker killed between acquiring it and
    releasing it (the watchdog and chaos kills land at arbitrary
    instants) leaves the lock held forever, wedging every surviving and
    future worker's sends.  Heartbeats avoid messages entirely: the
    worker stamps ``time.monotonic()`` into ``beat`` (a lock-free
    shared double) on every loop turn, and the parent's watchdog reads
    the timestamp.
    """
    devices = {spec: resolve_device(spec) for spec in device_specs}
    if shm_tables:
        attach_prewarm_tables(devices, shm_tables)
    prewarm(devices.values())
    if beat is not None:
        beat.value = time.monotonic()
    results.send(("ready", worker_id, os.getpid()))
    while True:
        try:
            task = tasks.get(timeout=idle_tick_s)
        except stdlib_queue.Empty:
            if beat is not None:
                beat.value = time.monotonic()
            continue
        if beat is not None:
            beat.value = time.monotonic()
        if task is None:
            break
        message = pickle.loads(task)
        if message[0] == "drift":
            _, spec, calibration, diff, refs = message
            _apply_worker_drift(devices, spec, calibration, diff, refs)
            continue
        _, job_seq, request, calibration, epoch, attempt_base = message
        try:
            device = devices.get(request.device)
            if device is None:
                device = devices[request.device] = resolve_device(
                    request.device
                )
            if calibration is not None and calibration != device.calibration:
                device = replace(device, calibration=calibration)
            payload = compute_payload(request, device, attempt_base=attempt_base)
            results.send(("done", worker_id, job_seq, payload, None))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            results.send(
                ("done", worker_id, job_seq, None, f"{type(exc).__name__}: {exc}")
            )


class WarmWorkerPool:
    """Parent-side handle on the persistent worker processes."""

    def __init__(
        self,
        num_workers: int,
        device_specs: Sequence[str],
        shm_tables: Optional[Dict[str, Dict[str, shm.SegmentRef]]] = None,
        idle_tick_s: float = 2.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("WarmWorkerPool needs at least one worker")
        self.num_workers = num_workers
        self.device_specs = tuple(device_specs)
        self.shm_tables = shm_tables
        #: How often an idle worker proves liveness; the service derives
        #: it from the heartbeat budget so an idle-but-hung worker is
        #: still caught within one budget.
        self.idle_tick_s = idle_tick_s
        self._ctx = multiprocessing.get_context()
        #: worker_id -> parent (receive) end of that worker's private
        #: result pipe.  One pipe per worker: a single shared results
        #: queue would serialise all workers on one cross-process write
        #: lock, which a SIGKILL mid-send leaves held forever.
        self._result_conns: Dict[int, mp_connection.Connection] = {}
        self._tasks: Dict[int, multiprocessing.Queue] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        #: Old processes respawn() could not reap within its budget;
        #: stop() keeps retrying them so no zombie outlives the pool.
        self._stragglers: List[multiprocessing.Process] = []
        #: worker_id -> shared heartbeat timestamp (see _spawn).
        self._beats: Dict[int, object] = {}
        self._next_id = 0
        self.dispatch_bytes_total = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        for _ in range(self.num_workers):
            self._spawn()

    def _spawn(self) -> int:
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self._ctx.Queue()
        # Heartbeat slot: the worker stamps time.monotonic() into it on
        # every loop turn.  A shared double survives SIGKILL cleanly —
        # unlike a queue message, whose partial write would corrupt a
        # shared results queue (see _worker_main).  0.0 means "still
        # prewarming": the watchdog must not time a worker's startup
        # (prewarm cost varies wildly with device size), so the worker
        # stamps its first beat only once it is ready to serve.
        beat = self._ctx.Value("d", 0.0, lock=False)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.device_specs,
                task_queue,
                send_conn,
                self.shm_tables,
                self.idle_tick_s,
                beat,
            ),
            daemon=True,
            name=f"repro-service-worker-{worker_id}",
        )
        proc.start()
        # Close the parent's copy of the send end so the pipe reports
        # EOF (instead of hanging half-open) once the worker dies.
        send_conn.close()
        self._tasks[worker_id] = task_queue
        self._procs[worker_id] = proc
        self._beats[worker_id] = beat
        self._result_conns[worker_id] = recv_conn
        return worker_id

    @staticmethod
    def _reap(proc: multiprocessing.Process, budget_s: float) -> bool:
        """Join-or-escalate until ``proc`` is reaped; True when it is.

        ``join`` alone can wait forever on a worker wedged in compute
        (it never reads the sentinel), so the escalation ladder is
        join -> ``terminate()`` (SIGTERM) -> ``kill()`` (SIGKILL), each
        rung taking a share of the single overall ``budget_s``.
        ``exitcode is not None`` is the reaped test — the OS process is
        gone *and* its exit status collected, so no zombie remains.
        """
        deadline = time.monotonic() + budget_s
        for escalate in (None, "terminate", "kill"):
            if proc.exitcode is not None:
                return True
            if escalate is not None and proc.is_alive():
                getattr(proc, escalate)()
            remaining = deadline - time.monotonic()
            proc.join(timeout=max(0.05, remaining / 2))
        if proc.exitcode is None:  # pragma: no cover - unkillable (D state)
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        return proc.exitcode is not None

    def respawn(self, worker_id: int) -> int:
        """Replace a dead worker, keeping pool capacity constant.

        The old process is reaped (join escalating to terminate/kill)
        *before* its handle is dropped; a process that somehow survives
        the escalation is parked on the straggler list and retried at
        :meth:`stop` rather than abandoned as a zombie.
        """
        proc = self._procs.pop(worker_id, None)
        self._tasks.pop(worker_id, None)
        self._beats.pop(worker_id, None)
        conn = self._result_conns.pop(worker_id, None)
        if conn is not None:
            conn.close()
        if proc is not None and not self._reap(proc, budget_s=2.0):
            self._stragglers.append(proc)  # pragma: no cover - unkillable
        return self._spawn()

    def kill(self, worker_id: int) -> bool:
        """SIGKILL one worker (the watchdog's hammer for hung workers).

        Returns True when a live process was signalled.  The caller is
        expected to let the usual dead-worker sweep respawn it and
        re-dispatch whatever job it held.
        """
        proc = self._procs.get(worker_id)
        if proc is None or not proc.is_alive():
            return False
        try:
            proc.kill()
        except (OSError, ValueError):  # pragma: no cover - exit race
            return False
        return True

    def stop(self, timeout_s: float = 5.0) -> None:
        """Shut every worker down within one overall time budget.

        Cooperative first (the ``None`` sentinel), then the same
        join/terminate/kill escalation as :meth:`_reap` — a worker
        wedged in compute never reads the sentinel, and ``stop()`` must
        provably return regardless.
        """
        deadline = time.monotonic() + timeout_s
        for task_queue in self._tasks.values():
            try:
                task_queue.put_nowait(None)
            except stdlib_queue.Full:  # pragma: no cover - bounded queue
                pass
        procs = list(self._procs.values()) + self._stragglers
        for escalate in (None, "terminate", "kill"):
            alive = [p for p in procs if p.exitcode is None]
            if not alive:
                break
            if escalate is not None:
                for proc in alive:
                    if proc.is_alive():
                        getattr(proc, escalate)()
            share = max(0.05, (deadline - time.monotonic()) / (2 * len(alive)))
            for proc in alive:
                proc.join(timeout=share)
        self._procs.clear()
        self._tasks.clear()
        self._beats.clear()
        for conn in self._result_conns.values():
            conn.close()
        self._result_conns.clear()
        self._stragglers = [p for p in self._stragglers if p.exitcode is None]

    # -- dispatch ------------------------------------------------------
    def submit(
        self,
        worker_id: int,
        job_seq: int,
        request: CompileRequest,
        calibration=None,
        epoch: int = 0,
        attempt_base: int = 0,
    ) -> None:
        """Hand one job to one specific worker (raises ``KeyError`` if
        that worker was respawned away in the meantime).

        ``calibration``/``epoch`` are the admission-time snapshot the
        service pinned on the job; shipping them with every job makes
        worker compute independent of drift-message delivery order (and
        of respawn history).  The task is pickled here — once,
        parent-side — so the dispatch payload size and serialization
        time are observable (``payload_bytes{path="service_dispatch"}``,
        ``serialized_bytes_total`` / ``serialization_seconds_total``)
        instead of hidden inside the queue's feeder thread.
        """
        task_queue = self._tasks[worker_id]
        start = time.perf_counter()
        blob = pickle.dumps(
            ("job", job_seq, request, calibration, epoch, attempt_base),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.dispatch_bytes_total += len(blob)
        if tracing.is_enabled():
            telemetry_metrics.histogram(
                "payload_bytes",
                buckets=telemetry_metrics.BYTE_BUCKETS,
                path="service_dispatch",
            ).observe(float(len(blob)))
            telemetry_metrics.counter(
                "serialized_bytes_total", path="service_dispatch"
            ).inc(len(blob))
            telemetry_metrics.counter(
                "serialization_seconds_total",
                path="service_dispatch",
                stage="pickle",
            ).inc(time.perf_counter() - start)
        task_queue.put(blob)

    def broadcast_drift(self, spec: str, calibration, diff, refs=None) -> int:
        """Fan a calibration-drift notice out to every live worker.

        ``refs`` is the republished shm ref set for ``spec`` (or
        ``None`` when the pool runs by-value); it also replaces the
        spec's entry in :attr:`shm_tables` so workers respawned *after*
        the drift attach the fresh tables rather than the unlinked old
        ones.  Returns the number of workers notified.  Per-worker
        queues are FIFO, so a drift notice never overtakes a job
        dispatched before it — and jobs carry their own pinned
        calibration anyway.
        """
        if refs is not None:
            if self.shm_tables is None:
                self.shm_tables = {}
            self.shm_tables[spec] = refs
        blob = pickle.dumps(
            ("drift", spec, calibration, diff, refs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        notified = 0
        for worker_id, task_queue in self._tasks.items():
            if not self.is_alive(worker_id):
                continue
            task_queue.put(blob)
            notified += 1
        return notified

    def is_alive(self, worker_id: int) -> bool:
        proc = self._procs.get(worker_id)
        return proc is not None and proc.is_alive()

    def worker_ids(self) -> List[int]:
        """Current worker ids (live and dead-but-unreaped)."""
        return list(self._procs)

    def pid(self, worker_id: int) -> Optional[int]:
        """OS pid of one worker (None if unknown)."""
        proc = self._procs.get(worker_id)
        return proc.pid if proc is not None else None

    def dead_workers(self) -> List[int]:
        """Worker ids whose process has exited (crash or kill)."""
        return [
            worker_id
            for worker_id, proc in self._procs.items()
            if not proc.is_alive()
        ]

    def poll_messages(self, timeout_s: float = 0.1) -> List[tuple]:
        """Drain every worker's result pipe (waits up to ``timeout_s``).

        A dead worker's pipe reports EOF; that is silently skipped here
        because :meth:`dead_workers` + ``respawn`` own the crash path —
        losing an in-flight message to SIGKILL is exactly the case the
        service recovers from parent-side bookkeeping, never from the
        transport.
        """
        conns = dict(self._result_conns)
        if not conns:
            time.sleep(timeout_s)
            return []
        try:
            ready = mp_connection.wait(list(conns.values()), timeout=timeout_s)
        except OSError:  # pragma: no cover - conn closed mid-wait
            return []
        messages: List[tuple] = []
        for conn in ready:
            try:
                while conn.poll():
                    messages.append(conn.recv())
            except (EOFError, OSError):
                continue  # worker died; the dead-worker sweep owns it
        return messages

    def heartbeats(self) -> Dict[int, float]:
        """Last ``time.monotonic()`` each worker proved liveness at.

        Read directly from the per-worker shared slots — there is no
        message involved, so the reading is SIGKILL-safe and costs one
        double load per worker.  A value of ``0.0`` means the worker has
        not finished prewarming yet and must not be timed against the
        heartbeat budget.
        """
        return {
            worker_id: beat.value for worker_id, beat in self._beats.items()
        }

    def alive_count(self) -> int:
        return sum(1 for proc in self._procs.values() if proc.is_alive())
