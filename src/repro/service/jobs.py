"""Job model for the compilation service.

A :class:`CompileRequest` is what a client submits: the circuit, the
device and mapper *names* (resolved server-side so the cache key is a
pure function of strings plus the circuit's content hash), a priority
class, and optional per-job resilience knobs.  A :class:`Job` wraps one
admitted request with a future-like completion handle; the dispatcher
resolves it with a :class:`CompileResponse` whose ``payload`` bytes are
canonical — identical requests always resolve to identical bytes, which
is the contract the cross-request cache serves under.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..circuit import Circuit
from ..compiler import noise_aware_mapper, sabre_mapper, trivial_mapper
from ..resilience.journal import decode_record, encode_record

__all__ = [
    "PRIORITY_CLASSES",
    "MAPPERS",
    "ServiceError",
    "ServiceDraining",
    "CompileRequest",
    "CompileResponse",
    "Job",
    "build_payload",
]

#: Priority classes, best first.  ``interactive`` jumps the queue,
#: ``batch`` is the default, ``bulk`` fills leftover capacity.
PRIORITY_CLASSES = ("interactive", "batch", "bulk")

_PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITY_CLASSES)}

#: Mapper factories the service accepts by name (one fresh mapper per
#: job — mappers carry RNG state, so they are never shared).
MAPPERS = {
    "trivial": trivial_mapper,
    "sabre": sabre_mapper,
    "noise-aware": noise_aware_mapper,
}


class ServiceError(RuntimeError):
    """A job failed, was rejected, or the service is shutting down."""


class ServiceDraining(ServiceError):
    """The service is draining: admission is closed, in-flight work is
    finishing, and queued jobs are being journaled.  A typed rejection
    so clients can distinguish "resubmit elsewhere/later" from a hard
    failure."""


@dataclass(frozen=True)
class CompileRequest:
    """One compilation request; picklable so warm workers can take it.

    ``device`` and ``mapper`` are registry names (see
    :func:`repro.hardware.resolve_device` and :data:`MAPPERS`) — the
    server resolves them, so the client never ships device objects.
    ``faults`` is a :meth:`~repro.resilience.faults.FaultPlan.parse`
    spec string evaluated at circuit index 0 (testing/drills only).
    """

    circuit: Circuit
    device: str = "surface17"
    mapper: str = "sabre"
    priority: str = "batch"
    deadline_s: Optional[float] = None
    faults: str = ""

    def validate(self) -> None:
        if self.priority not in _PRIORITY_RANK:
            raise ServiceError(
                f"unknown priority {self.priority!r} "
                f"(use one of {PRIORITY_CLASSES})"
            )
        if self.mapper not in MAPPERS:
            raise ServiceError(
                f"unknown mapper {self.mapper!r} "
                f"(use one of {tuple(sorted(MAPPERS))})"
            )

    @property
    def priority_rank(self) -> int:
        return _PRIORITY_RANK[self.priority]


@dataclass(frozen=True)
class CompileResponse:
    """What a resolved job hands back.

    ``payload`` is the canonical response: sorted-key, separator-free
    JSON bytes that are byte-identical for identical cache keys no
    matter which worker produced them or whether the cache served them.
    The metadata fields (``cached``, ``elapsed_s``, ``served_by``) are
    deliberately *outside* the payload — they describe this particular
    serving, not the compiled artifact.
    """

    payload: bytes
    cached: bool
    elapsed_s: float
    served_by: str

    def to_dict(self) -> Dict[str, Any]:
        """Parsed payload body."""
        return json.loads(self.payload.decode("utf-8"))

    def record(self):
        """The embedded :class:`~repro.experiments.common.MappingRecord`."""
        return decode_record(self.to_dict()["record"])


def build_payload(key, record, info) -> bytes:
    """Canonical response bytes for one compiled result.

    Everything here must be a deterministic function of the cache key:
    the record pickles byte-identically across worker counts (the suite
    runner's determinism contract), and only the *path-independent*
    resilience fields (which router/steps produced the artifact) are
    included — attempt/retry tallies vary under injected faults and
    would break byte-identity between a retried and a clean compute.
    """
    body = {
        "key": {
            "circuit": key.circuit,
            "device": key.device,
            "calibration": key.calibration,
            "mapper": key.mapper,
        },
        "record": encode_record(record),
        "swap_count": record.swap_count,
        "gate_overhead_percent": record.gate_overhead_percent,
        "depth_after": record.depth_after,
        "fidelity_after": record.fidelity_after,
        "router": info.router,
        "steps": list(info.steps),
        "degraded": info.degraded,
    }
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class Job:
    """An admitted request plus its completion handle."""

    def __init__(self, seq: int, request: CompileRequest, key) -> None:
        self.seq = seq
        self.request = request
        self.key = key
        #: Device snapshot pinned at admission: every compute path for
        #: this job (inline, pooled, crash recovery) uses exactly this
        #: calibration, so drift applied mid-flight cannot leak into a
        #: payload cached under the admission epoch's key.
        self.device = None
        #: Calibration-stream epoch at admission (0 without a stream).
        self.epoch: int = 0
        self.submitted_s: float = 0.0
        #: One entry per worker-fatal incident this job's compute caused
        #: (``{"kind": "crash"|"hang", "worker": id, "epoch": n}``) —
        #: the evidence trail the quarantine decision and its terminal
        #: error payload are built from.
        self.attempt_history: list = []
        #: Set when the job was quarantined (terminal; never retried).
        self.quarantined: bool = False
        #: Set while the job rides the recovery path (re-dispatch after
        #: a worker loss); completions are labelled ``served_by=
        #: "recovery"`` regardless of which process computed them.
        self.recovering: bool = False
        self._done = threading.Event()
        self._response: Optional[CompileResponse] = None
        self._error: Optional[str] = None

    @property
    def sort_key(self):
        """Heap order: best priority class first, FIFO within a class."""
        return (self.request.priority_rank, self.seq)

    # -- resolution (dispatcher side) ----------------------------------
    def resolve(self, response: CompileResponse) -> bool:
        """Complete the job; returns False if it was already resolved
        (a late worker result racing the parent-side crash recovery)."""
        if self._done.is_set():
            return False
        self._response = response
        self._done.set()
        return True

    def fail(self, error: str) -> bool:
        if self._done.is_set():
            return False
        self._error = error
        self._done.set()
        return True

    # -- waiting (client side) -----------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> CompileResponse:
        if not self._done.wait(timeout):
            raise ServiceError(f"job {self.seq} timed out after {timeout}s")
        if self._error is not None:
            raise ServiceError(f"job {self.seq} failed: {self._error}")
        assert self._response is not None
        return self._response
