"""Priority job queue with per-class admission control.

Jobs are ordered ``(priority rank, sequence number)`` — strict priority
between classes, FIFO within one — on a binary heap guarded by a
condition variable.  Admission control is enforced at ``push`` time:
each priority class has a depth limit (plus an overall bound), and a
full class rejects *immediately* with :class:`AdmissionError` instead
of queueing unbounded work — load-shedding at the door keeps latency
for already-admitted jobs predictable, and the client can retry with
backoff or downgrade its priority.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, Optional

from ..telemetry import metrics as telemetry_metrics
from .jobs import PRIORITY_CLASSES, Job

__all__ = ["AdmissionError", "JobQueue", "DEFAULT_CLASS_LIMITS"]

#: Default per-class queue-depth limits.  ``interactive`` is kept small
#: on purpose: its promise is low latency, which a deep backlog of
#: interactive work would break anyway.
DEFAULT_CLASS_LIMITS: Dict[str, int] = {
    "interactive": 64,
    "batch": 256,
    "bulk": 1024,
}


class AdmissionError(RuntimeError):
    """The queue refused a job (class or queue full, or shut down)."""


class JobQueue:
    """Heap-ordered priority queue with admission limits."""

    def __init__(
        self,
        class_limits: Optional[Dict[str, int]] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        self._limits = dict(DEFAULT_CLASS_LIMITS)
        if class_limits:
            unknown = set(class_limits) - set(PRIORITY_CLASSES)
            if unknown:
                raise ValueError(f"unknown priority classes: {sorted(unknown)}")
            self._limits.update(class_limits)
        self._max_depth = max_depth
        self._cond = threading.Condition()
        self._heap: list = []
        self._depths: Dict[str, int] = {name: 0 for name in PRIORITY_CLASSES}
        self._closed = False

    # -- producer side -------------------------------------------------
    def push(self, job: Job) -> None:
        """Admit a job or raise :class:`AdmissionError`."""
        priority = job.request.priority
        with self._cond:
            if self._closed:
                raise AdmissionError("queue is shut down")
            if self._max_depth is not None and len(self._heap) >= self._max_depth:
                telemetry_metrics.counter(
                    "service_admission_rejects_total", reason="queue_full"
                ).inc()
                raise AdmissionError(
                    f"queue full ({self._max_depth} jobs queued)"
                )
            if self._depths[priority] >= self._limits[priority]:
                telemetry_metrics.counter(
                    "service_admission_rejects_total", reason="class_full"
                ).inc()
                raise AdmissionError(
                    f"priority class {priority!r} full "
                    f"({self._limits[priority]} jobs queued)"
                )
            heapq.heappush(self._heap, (job.sort_key, job))
            self._depths[priority] += 1
            self._cond.notify()

    # -- consumer side -------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Best-priority job, blocking up to ``timeout``; ``None`` when
        nothing arrived or the queue was closed and drained."""
        with self._cond:
            if not self._heap and not self._closed:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            _, job = heapq.heappop(self._heap)
            self._depths[job.request.priority] -= 1
            return job

    def close(self) -> None:
        """Stop admitting; wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list:
        """Remove and return every queued job in priority order.

        Used by :meth:`CompilationService.drain` to journal the backlog
        a deadline-bounded shutdown could not serve; the queue stays
        usable (and, unless also closed, keeps admitting) afterwards.
        """
        with self._cond:
            jobs = []
            while self._heap:
                _, job = heapq.heappop(self._heap)
                self._depths[job.request.priority] -= 1
                jobs.append(job)
            return jobs

    # -- introspection -------------------------------------------------
    def depth(self, priority: Optional[str] = None) -> int:
        with self._cond:
            if priority is None:
                return len(self._heap)
            return self._depths[priority]

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {"total": len(self._heap), **dict(self._depths)}
