"""Cross-request compiled-result cache.

The cache maps a :class:`ResultKey` — ``(circuit content hash, device
name, calibration version, mapper name)`` — to the canonical response
payload bytes.  The calibration *version* is a digest of
:meth:`~repro.hardware.calibration.Calibration.cache_key`, the same
fingerprint the routing layer's distance cache keys on, so a
calibration update can never serve a stale compiled result: the key
changes, the old entry ages out of the LRU.

Counting contract: the dispatcher performs **exactly one** cache lookup
per admitted request, so ``hits + misses == admitted requests`` holds
exactly; ``evictions`` counts entries displaced by the capacity bound.
The local counters are always exact; matching telemetry counters
(``service_cache_{hits,misses,evictions}_total``) mirror them whenever
a telemetry session is active.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, NamedTuple, Optional

from ..circuit import Circuit
from ..hardware.calibration import Calibration
from ..hardware.device import Device
from ..telemetry import metrics as telemetry_metrics

__all__ = ["ResultKey", "ResultCache", "calibration_version", "result_key"]


def calibration_version(calibration: Calibration) -> str:
    """Short stable digest of a calibration's cost-model fingerprint."""
    fingerprint = repr(calibration.cache_key()).encode("utf-8")
    return hashlib.blake2b(fingerprint, digest_size=8).hexdigest()


class ResultKey(NamedTuple):
    """Identity of one compiled artifact (scalars: JSON/pickle safe).

    ``epoch`` is the calibration-stream epoch the request was admitted
    under (0 when the device has no stream).  It rides in the key so a
    job pinned at epoch N keeps hitting the entry it computed even
    while drift moves the live calibration, and an identical request
    after a drift *misses* and recompiles — epoch-pinning is exact, not
    digest-coincidental.  The ``calibration`` digest stays in the key
    too: it guards the payload's correctness (the bytes embed it), the
    epoch guards admission-time identity.
    """

    circuit: str
    device: str
    calibration: str
    mapper: str
    epoch: int = 0


def result_key(
    circuit: Circuit,
    device_name: str,
    device: Device,
    mapper: str,
    epoch: int = 0,
) -> ResultKey:
    return ResultKey(
        circuit=circuit.content_hash(),
        device=device_name,
        calibration=calibration_version(device.calibration),
        mapper=mapper,
        epoch=epoch,
    )


class ResultCache:
    """Thread-safe LRU of canonical response payloads."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ResultKey, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: ResultKey) -> Optional[bytes]:
        """Payload for ``key``, counting a hit or a miss."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                telemetry_metrics.counter("service_cache_misses_total").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry_metrics.counter("service_cache_hits_total").inc()
            return payload

    def put(self, key: ResultKey, payload: bytes) -> None:
        """Insert a computed payload, evicting LRU entries past capacity.

        First write wins: concurrent computes of the same key produce
        byte-identical payloads by construction, so the duplicate is
        simply dropped (and refreshes recency) rather than rewritten.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                telemetry_metrics.counter(
                    "service_cache_evictions_total"
                ).inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
