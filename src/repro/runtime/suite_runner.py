"""Parallel mapping-suite runner.

Maps every benchmark of a suite onto a device across worker processes
and returns a :class:`SuiteRunReport`: the mapping records in suite
order, per-circuit wall times (with a per-stage breakdown when
telemetry is on), and captured per-circuit failures.

Every circuit is mapped by a *pristine* pickled copy of the mapper, so
results are independent of execution order and of the worker count —
``workers=1`` and ``workers=N`` produce byte-identical records.  (This
differs from the legacy serial sweep only for stateful mappers, where
the serial loop threads one RNG through all circuits.)

Telemetry
---------
When :mod:`repro.telemetry` is enabled in the parent, each worker
captures the spans and metrics of its payloads in isolation and ships
them back with the mapping record.  The parent ingests every batch in
suite order under one ``suite.run`` root span — so the merged span tree
is identical for ``workers=1`` and ``workers=N`` (only durations and
process ids differ) — and folds the worker metrics into its registry.
With an export directory configured, workers additionally append their
batches to per-worker JSONL shards under ``<dir>/workers/``, which
:func:`repro.telemetry.merge.merge_worker_events` reorders into one
deterministic ``merged.jsonl`` without dropping a single event.

Resilience
----------
Passing any of ``deadline_s`` / ``policy`` / ``chain`` / ``faults`` /
``journal`` switches each circuit onto the fault-tolerant execution
path (:func:`repro.resilience.engine.map_with_resilience`): per-attempt
wall-clock deadlines enforced cooperatively inside the router, seeded
deterministic retry backoff, and a graceful degradation chain ending in
the trivial router — so the run completes with a record for *every*
circuit, annotated in :attr:`SuiteRunReport.resilience`.  A ``journal``
path makes the run crash-safe: every completed circuit is durably
appended (atomic tmp-file+rename) before the next result is awaited,
and ``resume=True`` skips journaled circuits and splices their decoded
records back in, byte-identical to an uninterrupted run.  With every
resilience knob left at its default, the legacy code path runs
unchanged — bit-for-bit the same report as before this layer existed.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..compiler.mapper import QuantumMapper
from ..hardware.device import Device
from ..resilience.engine import (
    ResilienceConfig,
    ResilienceExhausted,
    ResilienceInfo,
    map_with_resilience,
)
from ..resilience.faults import FaultPlan
from ..resilience.journal import (
    JournalError,
    SuiteJournal,
    decode_record,
    encode_record,
)
from ..resilience.policy import (
    DegradationStep,
    RetryPolicy,
    default_degradation_chain,
)
from ..telemetry import capture as capture_telemetry
from ..telemetry import get_registry, tracing
from ..telemetry.clock import now
from ..telemetry.merge import (
    WORKER_DIR_NAME,
    annotate_events,
    append_worker_events,
    merge_worker_events,
)
from ..telemetry.tracing import span
from ..workloads.suite import BenchmarkCircuit
from .parallel import ItemOutcome, parallel_map, workers_from_env

__all__ = [
    "CircuitTiming",
    "CircuitFailure",
    "CircuitResilience",
    "SuiteRunReport",
    "run_suite_parallel",
]

#: Mapper-stage span names mirrored into the per-circuit breakdown.
_STAGE_SPANS = {
    "map.decompose": "decompose",
    "map.place": "place",
    "map.route": "route",
    "map.lower": "lower",
    "map.schedule": "schedule",
}


@dataclass(frozen=True)
class CircuitTiming:
    """Wall time spent mapping one benchmark.

    ``stages`` breaks the total down by mapping stage (``decompose`` /
    ``place`` / ``route`` / ``lower`` / ``schedule``, seconds) when the
    run was traced; it is empty when telemetry was off.  ``elapsed_s``
    is unchanged from before the breakdown existed.
    """

    name: str
    elapsed_s: float
    stages: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class CircuitFailure:
    """A benchmark whose mapping raised, with the captured error."""

    name: str
    error: str
    traceback: Optional[str] = None


@dataclass(frozen=True)
class CircuitResilience:
    """How one benchmark's record was obtained on the resilient path.

    Wraps the engine's :class:`~repro.resilience.engine.ResilienceInfo`
    with the benchmark name; the annotation is deliberately independent
    of the worker count (a SIGKILLed worker and an in-parent injected
    fault produce the same attempt tally), which is what the fault
    determinism tests pin.
    """

    name: str
    info: ResilienceInfo

    @property
    def attempts(self) -> int:
        return self.info.attempts

    @property
    def retries(self) -> int:
        return self.info.retries

    @property
    def router(self) -> str:
        return self.info.router

    @property
    def mapper(self) -> str:
        return self.info.mapper

    @property
    def steps(self) -> Tuple[str, ...]:
        return self.info.steps

    @property
    def deadline_expired(self) -> bool:
        return self.info.deadline_expired

    @property
    def faults_injected(self) -> int:
        return self.info.faults_injected

    @property
    def degraded(self) -> bool:
        return self.info.degraded

    @property
    def errors(self) -> Tuple[str, ...]:
        return self.info.errors

    def to_dict(self) -> dict:
        return {"name": self.name, **self.info.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitResilience":
        payload = dict(data)
        name = payload.pop("name")
        return cls(name=name, info=ResilienceInfo.from_dict(payload))


@dataclass
class SuiteRunReport:
    """Everything a parallel suite run produced.

    Attributes
    ----------
    records:
        Mapping records of the successful benchmarks, in suite order.
    timings:
        Per-benchmark wall times (successes and failures alike), in
        suite order, each with its per-stage breakdown when traced.
    failures:
        Benchmarks whose mapping raised; the rest of the suite is
        unaffected.
    skipped:
        Benchmark names skipped because they are wider than the device.
    workers:
        Worker-process count actually used.
    fell_back:
        True when a worker process died (or blew the hard per-item
        timeout) and the lost circuits were recomputed serially in the
        parent.
    recomputed:
        Number of circuits recomputed serially after a worker death or
        hard timeout.
    resilience:
        One :class:`CircuitResilience` per kept benchmark, in suite
        order, when the run used the fault-tolerant path; empty on the
        legacy path.
    resumed:
        Circuits whose results were spliced in from the resume journal
        instead of being recomputed.
    journal_path:
        The journal file the run appended to, when journaling.
    wall_time_s:
        End-to-end wall time of the run (monotonic clock).
    batches / serialized_bytes / shipped_bytes / zero_copy:
        Dispatch accounting from :class:`ParallelResult`: fused tasks
        dispatched, total pickled payload bytes, bytes actually
        embedded in pool submissions, and whether the shared-memory
        transport was used (see ``docs/performance.md``).
    """

    records: List = field(default_factory=list)
    timings: List[CircuitTiming] = field(default_factory=list)
    failures: List[CircuitFailure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False
    recomputed: int = 0
    resilience: List[CircuitResilience] = field(default_factory=list)
    resumed: int = 0
    journal_path: Optional[str] = None
    wall_time_s: float = 0.0
    batches: int = 0
    serialized_bytes: int = 0
    shipped_bytes: int = 0
    zero_copy: bool = False

    @property
    def total_circuit_time_s(self) -> float:
        """Sum of per-circuit times (CPU-side cost, ignores overlap)."""
        return sum(t.elapsed_s for t in self.timings)

    @property
    def degraded(self) -> List[str]:
        """Names of circuits that fell down the degradation chain."""
        return [r.name for r in self.resilience if r.degraded]

    @property
    def total_mapping_attempts(self) -> int:
        """Engine-level attempts summed over the suite (0 when legacy)."""
        return sum(r.attempts for r in self.resilience)

    def stage_totals(self) -> Dict[str, float]:
        """Suite-wide seconds per mapping stage (empty when untraced)."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            for stage, seconds in timing.stages.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals


def _map_payload(
    payload: Tuple[
        BenchmarkCircuit, Device, QuantumMapper, Optional[dict]
    ]
):
    """Map one benchmark; module-level so worker processes can import it.

    The fourth payload element is the telemetry config (``None`` when
    telemetry is off): ``{"index": suite position, "dir": shard
    directory or None}``.  With telemetry on, the worker captures its
    spans/metrics in isolation and returns them alongside the record
    (and appends the annotated span batch to its per-pid shard file when
    a directory is configured).
    """
    from ..experiments.common import _record

    benchmark, device, mapper, tele = payload
    if tele is None:
        return _record(benchmark, mapper.map(benchmark.circuit, device)), None
    with capture_telemetry(enabled=True) as captured:
        with span(
            "suite.circuit", circuit=benchmark.source, index=tele["index"]
        ):
            result = mapper.map(benchmark.circuit, device)
            result.schedule()  # traced: completes the stage breakdown
        record = _record(benchmark, result)
    events = annotate_events(
        [s.to_dict() for s in captured.spans], batch=tele["index"]
    )
    if tele.get("dir"):
        append_worker_events(tele["dir"], events, worker_id=os.getpid())
    return record, {
        "events": events,
        "metrics": captured.metrics_snapshot(),
    }


def _map_payload_resilient(
    payload: Tuple[
        BenchmarkCircuit,
        Device,
        QuantumMapper,
        Optional[dict],
        ResilienceConfig,
        int,
    ]
):
    """Fault-tolerant sibling of :func:`_map_payload`.

    Returns ``(tag, telemetry)`` where ``tag`` is either
    ``("ok", record, info_dict)`` or ``("failed", error, traceback,
    info_dict)`` — exhaustion of the whole degradation chain is *data*,
    not an exception, so the parent can journal and annotate it like any
    other outcome.  Injected in-worker faults (``kill``) that destroy
    the process never return, of course; ``parallel_map`` recomputes
    those serially in the parent, where the same fault key downgrades to
    a retryable raise and the annotation comes out identical.
    """
    from ..experiments.common import _record

    benchmark, device, mapper, tele, config, index = payload
    if tele is None:
        try:
            result, info = map_with_resilience(
                benchmark.circuit, device, mapper, config, circuit_index=index
            )
        except ResilienceExhausted as exc:
            return (
                "failed",
                f"ResilienceExhausted: {exc}",
                traceback.format_exc(),
                exc.info.to_dict(),
            ), None
        return ("ok", _record(benchmark, result), info.to_dict()), None
    with capture_telemetry(enabled=True) as captured:
        failure = None
        with span(
            "suite.circuit", circuit=benchmark.source, index=tele["index"]
        ):
            try:
                result, info = map_with_resilience(
                    benchmark.circuit,
                    device,
                    mapper,
                    config,
                    circuit_index=index,
                )
                result.schedule()  # traced: completes the stage breakdown
            except ResilienceExhausted as exc:
                failure = (
                    "failed",
                    f"ResilienceExhausted: {exc}",
                    traceback.format_exc(),
                    exc.info.to_dict(),
                )
        if failure is None:
            tag = ("ok", _record(benchmark, result), info.to_dict())
        else:
            tag = failure
    events = annotate_events(
        [s.to_dict() for s in captured.spans], batch=tele["index"]
    )
    if tele.get("dir"):
        append_worker_events(tele["dir"], events, worker_id=os.getpid())
    return tag, {
        "events": events,
        "metrics": captured.metrics_snapshot(),
    }


def _stage_breakdown(events: Sequence[dict]) -> Dict[str, float]:
    """Seconds per mapping stage, summed over one circuit's span batch."""
    stages: Dict[str, float] = {}
    for event in events:
        stage = _STAGE_SPANS.get(event["name"])
        if stage is not None:
            stages[stage] = stages.get(stage, 0.0) + (
                event["end_s"] - event["start_s"]
            )
    return stages


def _placeholder_info(outcome: ItemOutcome) -> ResilienceInfo:
    """Annotation for an outcome that died outside the engine."""
    return ResilienceInfo(
        attempts=outcome.attempts,
        retries=0,
        router="",
        mapper="",
        steps=(),
        deadline_expired=False,
        faults_injected=0,
        backoff_total_s=0.0,
        errors=(outcome.error or "",),
    )


def run_suite_parallel(
    benchmarks: Sequence[BenchmarkCircuit],
    device: Optional[Device] = None,
    mapper: Optional[QuantumMapper] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
    deadline_s: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    chain: Optional[Sequence[DegradationStep]] = None,
    degrade: bool = True,
    faults: Optional[FaultPlan] = None,
    journal: Optional[Union[str, "os.PathLike[str]"]] = None,
    resume: bool = False,
    item_timeout_s: Optional[float] = None,
    batch_size: int = 1,
    max_batch_bytes: Optional[int] = None,
    zero_copy: bool = False,
) -> SuiteRunReport:
    """Map a benchmark suite with a worker pool; see :class:`SuiteRunReport`.

    Mirrors :func:`repro.experiments.common.run_suite` semantics
    (benchmarks wider than the device are skipped; ``progress`` receives
    ``(index, total, name)``), adding process fan-out, per-circuit
    timing, and per-circuit failure capture.  When ``workers`` is
    ``None`` the ``REPRO_WORKERS`` environment variable is consulted
    first (falling back to the CPU count), so one environment setting
    configures every fan-out in a run.

    Resilience parameters (module docstring has the overview; any
    non-default value switches the run onto the fault-tolerant path):

    deadline_s:
        Per-attempt wall-clock budget, enforced cooperatively inside
        the router's search loop; expiry degrades the circuit down the
        chain instead of failing it.
    policy:
        :class:`~repro.resilience.policy.RetryPolicy` (attempt count and
        seeded deterministic backoff); default 2 attempts per step.
    chain:
        Explicit degradation chain; ``None`` builds the default
        ``mapper → mapper(reduced effort) → trivial`` ladder, or a
        single-step chain when ``degrade`` is false.
    faults:
        A :class:`~repro.resilience.faults.FaultPlan` to inject
        (testing/drills); ``None`` injects nothing.
    journal:
        Path to the crash-safe JSONL journal; every completed circuit is
        durably appended before the next result is consumed.
    resume:
        With ``journal``, load it and skip already-journaled circuits,
        splicing their decoded records into the report byte-identically.
        A missing journal file starts a fresh run.
    item_timeout_s:
        Hard per-item bound handed to :func:`parallel_map` — the
        backstop that kills an *unresponsive* worker (one that never
        reaches a cooperative deadline checkpoint) and recomputes its
        items in the parent.
    batch_size / max_batch_bytes / zero_copy:
        Dispatch knobs forwarded to :func:`parallel_map` (fused task
        batching and the shared-memory payload plane; see
        ``docs/performance.md``).  Pure transport: records, journals
        and telemetry stay byte-identical at any setting, which
        ``make zerocopy-smoke`` asserts.
    """
    from ..experiments.common import paper_configuration
    from ..compiler.mapper import trivial_mapper

    device = device if device is not None else paper_configuration()
    mapper = mapper if mapper is not None else trivial_mapper()
    if workers is None:
        workers = workers_from_env()
    resilience_active = (
        deadline_s is not None
        or policy is not None
        or chain is not None
        or faults is not None
        or journal is not None
    )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    start = now()
    kept: List[BenchmarkCircuit] = []
    skipped: List[str] = []
    for benchmark in benchmarks:
        if benchmark.circuit.num_qubits > device.num_qubits:
            skipped.append(benchmark.source)
        else:
            kept.append(benchmark)

    config: Optional[ResilienceConfig] = None
    if resilience_active:
        if chain is not None:
            resolved_chain = tuple(chain)
        elif degrade:
            resolved_chain = tuple(default_degradation_chain(mapper))
        else:
            resolved_chain = (DegradationStep(mapper.name, mapper),)
        config = ResilienceConfig(
            deadline_s=deadline_s,
            policy=policy if policy is not None else RetryPolicy(),
            chain=resolved_chain,
            faults=faults,
        )

    # -- journal / resume ----------------------------------------------
    journal_writer: Optional[SuiteJournal] = None
    completed: Dict[int, Dict[str, Any]] = {}
    if journal is not None:
        journal_writer = SuiteJournal(journal)
        header = {
            "suite": [b.source for b in kept],
            "mapper": mapper.name,
            "device": device.name,
        }
        if resume and journal_writer.path.is_file():
            state = journal_writer.resume_from()
            for key, expected in header.items():
                found = state.header.get(key)
                if found != expected:
                    raise JournalError(
                        f"journal {journal_writer.path} was written for a "
                        f"different run ({key}={found!r}, expected "
                        f"{expected!r}); refusing to resume"
                    )
            completed = {
                index: entry
                for index, entry in state.by_index().items()
                if 0 <= index < len(kept)
            }
        else:
            journal_writer.start(header)

    pending: List[Tuple[int, BenchmarkCircuit]] = [
        (index, benchmark)
        for index, benchmark in enumerate(kept)
        if index not in completed
    ]
    pending_names = [benchmark.source for _, benchmark in pending]

    traced = tracing.is_enabled()
    worker_dir: Optional[str] = None
    if traced and tracing.get_export_dir() is not None:
        worker_dir = str(tracing.get_export_dir() / WORKER_DIR_NAME)

    def _tele_config(index: int) -> Optional[dict]:
        if not traced:
            return None
        return {"index": index, "dir": worker_dir}

    def _progress(done: int, total: int) -> None:
        if progress is not None and done < total:
            progress(done, total, pending_names[done])

    def _on_result(outcome: ItemOutcome) -> None:
        """Journal one finished circuit, then apply parent-side faults.

        Runs in the parent, in submission order, as soon as the item's
        outcome is final — completed work is durable *before* the batch
        finishes, which is what makes a mid-run kill resumable.
        """
        kept_index, benchmark = pending[outcome.index]
        if journal_writer is not None:
            entry: Dict[str, Any] = {
                "index": kept_index,
                "name": benchmark.source,
                "elapsed_s": outcome.elapsed_s,
                "pool_attempts": outcome.attempts,
            }
            if outcome.ok:
                tag, telemetry_payload = outcome.value
                if telemetry_payload is not None:
                    entry["stages"] = _stage_breakdown(
                        telemetry_payload["events"]
                    )
                if tag[0] == "ok":
                    entry["status"] = "ok"
                    entry["record"] = encode_record(tag[1])
                    entry["resilience"] = tag[2]
                else:
                    entry["status"] = "failed"
                    entry["error"] = tag[1]
                    entry["traceback"] = tag[2]
                    entry["resilience"] = tag[3]
            else:
                entry["status"] = "failed"
                entry["error"] = outcome.error
                entry["traceback"] = outcome.traceback
            journal_writer.append(entry)
        if faults is not None:
            faults.fire_parent(kept_index, journal_writer)

    worker_fn = _map_payload_resilient if resilience_active else _map_payload
    payloads: List[Any] = []
    for kept_index, benchmark in pending:
        if resilience_active:
            payloads.append(
                (
                    benchmark,
                    device,
                    mapper,
                    _tele_config(kept_index),
                    config,
                    kept_index,
                )
            )
        else:
            payloads.append(
                (benchmark, device, mapper, _tele_config(kept_index))
            )

    report = SuiteRunReport(skipped=skipped)
    report.resumed = len(completed)
    if journal_writer is not None:
        report.journal_path = str(journal_writer.path)
    with span("suite.run", circuits=len(kept)) as root:
        result = parallel_map(
            worker_fn,
            payloads,
            workers=workers,
            progress=_progress if progress is not None else None,
            on_result=_on_result if resilience_active else None,
            item_timeout_s=item_timeout_s,
            batch_size=batch_size,
            max_batch_bytes=max_batch_bytes,
            zero_copy=zero_copy,
        )
        root.set("workers", result.workers)
        report.workers = result.workers
        report.fell_back = result.fell_back
        report.recomputed = result.recomputed
        report.batches = result.batches
        report.serialized_bytes = result.serialized_bytes
        report.shipped_bytes = result.shipped_bytes
        report.zero_copy = result.zero_copy
        root_id = getattr(root, "span_id", None)
        outcome_by_kept = {
            pending[outcome.index][0]: outcome
            for outcome in result.outcomes
        }
        for kept_index, benchmark in enumerate(kept):
            entry = completed.get(kept_index)
            if entry is not None:
                # Spliced in from the resume journal; the embedded pickle
                # is byte-identical to what a fresh mapping would return.
                stages = {
                    key: float(value)
                    for key, value in entry.get("stages", {}).items()
                }
                if entry.get("status") == "ok":
                    report.records.append(decode_record(entry["record"]))
                else:
                    report.failures.append(
                        CircuitFailure(
                            benchmark.source,
                            entry.get("error") or "unknown failure",
                            entry.get("traceback"),
                        )
                    )
                if resilience_active:
                    if entry.get("resilience") is not None:
                        info = ResilienceInfo.from_dict(entry["resilience"])
                    else:
                        info = ResilienceInfo(
                            attempts=int(entry.get("pool_attempts", 1)),
                            retries=0,
                            router="",
                            mapper="",
                            steps=(),
                            deadline_expired=False,
                            faults_injected=0,
                            backoff_total_s=0.0,
                            errors=(entry.get("error") or "",),
                        )
                    report.resilience.append(
                        CircuitResilience(benchmark.source, info)
                    )
                report.timings.append(
                    CircuitTiming(
                        benchmark.source,
                        float(entry.get("elapsed_s", 0.0)),
                        stages,
                    )
                )
                continue
            outcome = outcome_by_kept[kept_index]
            stages = {}
            if not resilience_active:
                if outcome.ok:
                    record, telemetry_payload = outcome.value
                    if telemetry_payload is not None:
                        events = telemetry_payload["events"]
                        stages = _stage_breakdown(events)
                        tracing.ingest(events, parent_id=root_id)
                        get_registry().merge_snapshot(
                            telemetry_payload["metrics"]
                        )
                    report.records.append(record)
                else:
                    report.failures.append(
                        CircuitFailure(
                            benchmark.source, outcome.error, outcome.traceback
                        )
                    )
            else:
                if outcome.ok:
                    tag, telemetry_payload = outcome.value
                    if telemetry_payload is not None:
                        events = telemetry_payload["events"]
                        stages = _stage_breakdown(events)
                        tracing.ingest(events, parent_id=root_id)
                        get_registry().merge_snapshot(
                            telemetry_payload["metrics"]
                        )
                    if tag[0] == "ok":
                        report.records.append(tag[1])
                        info = ResilienceInfo.from_dict(tag[2])
                    else:
                        report.failures.append(
                            CircuitFailure(benchmark.source, tag[1], tag[2])
                        )
                        info = ResilienceInfo.from_dict(tag[3])
                else:
                    report.failures.append(
                        CircuitFailure(
                            benchmark.source, outcome.error, outcome.traceback
                        )
                    )
                    info = _placeholder_info(outcome)
                report.resilience.append(
                    CircuitResilience(benchmark.source, info)
                )
            report.timings.append(
                CircuitTiming(benchmark.source, outcome.elapsed_s, stages)
            )
    if worker_dir is not None and os.path.isdir(worker_dir):
        merge_worker_events(worker_dir)
    report.wall_time_s = now() - start
    return report
