"""Parallel mapping-suite runner.

Maps every benchmark of a suite onto a device across worker processes
and returns a :class:`SuiteRunReport`: the mapping records in suite
order, per-circuit wall times (with a per-stage breakdown when
telemetry is on), and captured per-circuit failures.

Every circuit is mapped by a *pristine* pickled copy of the mapper, so
results are independent of execution order and of the worker count —
``workers=1`` and ``workers=N`` produce byte-identical records.  (This
differs from the legacy serial sweep only for stateful mappers, where
the serial loop threads one RNG through all circuits.)

Telemetry
---------
When :mod:`repro.telemetry` is enabled in the parent, each worker
captures the spans and metrics of its payloads in isolation and ships
them back with the mapping record.  The parent ingests every batch in
suite order under one ``suite.run`` root span — so the merged span tree
is identical for ``workers=1`` and ``workers=N`` (only durations and
process ids differ) — and folds the worker metrics into its registry.
With an export directory configured, workers additionally append their
batches to per-worker JSONL shards under ``<dir>/workers/``, which
:func:`repro.telemetry.merge.merge_worker_events` reorders into one
deterministic ``merged.jsonl`` without dropping a single event.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..compiler.mapper import QuantumMapper
from ..hardware.device import Device
from ..telemetry import capture as capture_telemetry
from ..telemetry import get_registry, tracing
from ..telemetry.clock import now
from ..telemetry.merge import (
    WORKER_DIR_NAME,
    annotate_events,
    append_worker_events,
    merge_worker_events,
)
from ..telemetry.tracing import span
from ..workloads.suite import BenchmarkCircuit
from .parallel import parallel_map, workers_from_env

__all__ = [
    "CircuitTiming",
    "CircuitFailure",
    "SuiteRunReport",
    "run_suite_parallel",
]

#: Mapper-stage span names mirrored into the per-circuit breakdown.
_STAGE_SPANS = {
    "map.decompose": "decompose",
    "map.place": "place",
    "map.route": "route",
    "map.lower": "lower",
    "map.schedule": "schedule",
}


@dataclass(frozen=True)
class CircuitTiming:
    """Wall time spent mapping one benchmark.

    ``stages`` breaks the total down by mapping stage (``decompose`` /
    ``place`` / ``route`` / ``lower`` / ``schedule``, seconds) when the
    run was traced; it is empty when telemetry was off.  ``elapsed_s``
    is unchanged from before the breakdown existed.
    """

    name: str
    elapsed_s: float
    stages: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class CircuitFailure:
    """A benchmark whose mapping raised, with the captured error."""

    name: str
    error: str
    traceback: Optional[str] = None


@dataclass
class SuiteRunReport:
    """Everything a parallel suite run produced.

    Attributes
    ----------
    records:
        Mapping records of the successful benchmarks, in suite order.
    timings:
        Per-benchmark wall times (successes and failures alike), in
        suite order, each with its per-stage breakdown when traced.
    failures:
        Benchmarks whose mapping raised; the rest of the suite is
        unaffected.
    skipped:
        Benchmark names skipped because they are wider than the device.
    workers:
        Worker-process count actually used.
    fell_back:
        True when a worker process died and the lost circuits were
        recomputed serially in the parent.
    wall_time_s:
        End-to-end wall time of the run (monotonic clock).
    """

    records: List = field(default_factory=list)
    timings: List[CircuitTiming] = field(default_factory=list)
    failures: List[CircuitFailure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False
    wall_time_s: float = 0.0

    @property
    def total_circuit_time_s(self) -> float:
        """Sum of per-circuit times (CPU-side cost, ignores overlap)."""
        return sum(t.elapsed_s for t in self.timings)

    def stage_totals(self) -> Dict[str, float]:
        """Suite-wide seconds per mapping stage (empty when untraced)."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            for stage, seconds in timing.stages.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals


def _map_payload(
    payload: Tuple[
        BenchmarkCircuit, Device, QuantumMapper, Optional[dict]
    ]
):
    """Map one benchmark; module-level so worker processes can import it.

    The fourth payload element is the telemetry config (``None`` when
    telemetry is off): ``{"index": suite position, "dir": shard
    directory or None}``.  With telemetry on, the worker captures its
    spans/metrics in isolation and returns them alongside the record
    (and appends the annotated span batch to its per-pid shard file when
    a directory is configured).
    """
    from ..experiments.common import _record

    benchmark, device, mapper, tele = payload
    if tele is None:
        return _record(benchmark, mapper.map(benchmark.circuit, device)), None
    with capture_telemetry(enabled=True) as captured:
        with span(
            "suite.circuit", circuit=benchmark.source, index=tele["index"]
        ):
            result = mapper.map(benchmark.circuit, device)
            result.schedule()  # traced: completes the stage breakdown
        record = _record(benchmark, result)
    events = annotate_events(
        [s.to_dict() for s in captured.spans], batch=tele["index"]
    )
    if tele.get("dir"):
        append_worker_events(tele["dir"], events, worker_id=os.getpid())
    return record, {
        "events": events,
        "metrics": captured.metrics_snapshot(),
    }


def _stage_breakdown(events: Sequence[dict]) -> Dict[str, float]:
    """Seconds per mapping stage, summed over one circuit's span batch."""
    stages: Dict[str, float] = {}
    for event in events:
        stage = _STAGE_SPANS.get(event["name"])
        if stage is not None:
            stages[stage] = stages.get(stage, 0.0) + (
                event["end_s"] - event["start_s"]
            )
    return stages


def run_suite_parallel(
    benchmarks: Sequence[BenchmarkCircuit],
    device: Optional[Device] = None,
    mapper: Optional[QuantumMapper] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
) -> SuiteRunReport:
    """Map a benchmark suite with a worker pool; see :class:`SuiteRunReport`.

    Mirrors :func:`repro.experiments.common.run_suite` semantics
    (benchmarks wider than the device are skipped; ``progress`` receives
    ``(index, total, name)``), adding process fan-out, per-circuit
    timing, and per-circuit failure capture.  When ``workers`` is
    ``None`` the ``REPRO_WORKERS`` environment variable is consulted
    first (falling back to the CPU count), so one environment setting
    configures every fan-out in a run.
    """
    from ..experiments.common import paper_configuration
    from ..compiler.mapper import trivial_mapper

    device = device if device is not None else paper_configuration()
    mapper = mapper if mapper is not None else trivial_mapper()
    if workers is None:
        workers = workers_from_env()
    start = now()
    kept: List[BenchmarkCircuit] = []
    skipped: List[str] = []
    for benchmark in benchmarks:
        if benchmark.circuit.num_qubits > device.num_qubits:
            skipped.append(benchmark.source)
        else:
            kept.append(benchmark)

    traced = tracing.is_enabled()
    worker_dir: Optional[str] = None
    if traced and tracing.get_export_dir() is not None:
        worker_dir = str(tracing.get_export_dir() / WORKER_DIR_NAME)

    def _tele_config(index: int) -> Optional[dict]:
        if not traced:
            return None
        return {"index": index, "dir": worker_dir}

    def _progress(done: int, total: int) -> None:
        if progress is not None and done < total:
            progress(done, total, kept[done].source)

    report = SuiteRunReport(skipped=skipped)
    with span("suite.run", circuits=len(kept)) as root:
        result = parallel_map(
            _map_payload,
            [
                (benchmark, device, mapper, _tele_config(index))
                for index, benchmark in enumerate(kept)
            ],
            workers=workers,
            progress=_progress if progress is not None else None,
        )
        root.set("workers", result.workers)
        report.workers = result.workers
        report.fell_back = result.fell_back
        root_id = getattr(root, "span_id", None)
        for benchmark, outcome in zip(kept, result.outcomes):
            stages: Dict[str, float] = {}
            if outcome.ok:
                record, telemetry_payload = outcome.value
                if telemetry_payload is not None:
                    events = telemetry_payload["events"]
                    stages = _stage_breakdown(events)
                    tracing.ingest(events, parent_id=root_id)
                    get_registry().merge_snapshot(telemetry_payload["metrics"])
                report.records.append(record)
            else:
                report.failures.append(
                    CircuitFailure(
                        benchmark.source, outcome.error, outcome.traceback
                    )
                )
            report.timings.append(
                CircuitTiming(benchmark.source, outcome.elapsed_s, stages)
            )
    if worker_dir is not None and os.path.isdir(worker_dir):
        merge_worker_events(worker_dir)
    report.wall_time_s = now() - start
    return report
