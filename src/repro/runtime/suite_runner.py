"""Parallel mapping-suite runner.

Maps every benchmark of a suite onto a device across worker processes
and returns a :class:`SuiteRunReport`: the mapping records in suite
order, per-circuit wall times, and captured per-circuit failures.

Every circuit is mapped by a *pristine* pickled copy of the mapper, so
results are independent of execution order and of the worker count —
``workers=1`` and ``workers=N`` produce byte-identical records.  (This
differs from the legacy serial sweep only for stateful mappers, where
the serial loop threads one RNG through all circuits.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..compiler.mapper import QuantumMapper
from ..hardware.device import Device
from ..workloads.suite import BenchmarkCircuit
from .parallel import parallel_map, workers_from_env

__all__ = [
    "CircuitTiming",
    "CircuitFailure",
    "SuiteRunReport",
    "run_suite_parallel",
]


@dataclass(frozen=True)
class CircuitTiming:
    """Wall time spent mapping one benchmark."""

    name: str
    elapsed_s: float


@dataclass(frozen=True)
class CircuitFailure:
    """A benchmark whose mapping raised, with the captured error."""

    name: str
    error: str
    traceback: Optional[str] = None


@dataclass
class SuiteRunReport:
    """Everything a parallel suite run produced.

    Attributes
    ----------
    records:
        Mapping records of the successful benchmarks, in suite order.
    timings:
        Per-benchmark wall times (successes and failures alike), in
        suite order.
    failures:
        Benchmarks whose mapping raised; the rest of the suite is
        unaffected.
    skipped:
        Benchmark names skipped because they are wider than the device.
    workers:
        Worker-process count actually used.
    fell_back:
        True when a worker process died and the lost circuits were
        recomputed serially in the parent.
    wall_time_s:
        End-to-end wall time of the run.
    """

    records: List = field(default_factory=list)
    timings: List[CircuitTiming] = field(default_factory=list)
    failures: List[CircuitFailure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False
    wall_time_s: float = 0.0

    @property
    def total_circuit_time_s(self) -> float:
        """Sum of per-circuit times (CPU-side cost, ignores overlap)."""
        return sum(t.elapsed_s for t in self.timings)


def _map_payload(payload: Tuple[BenchmarkCircuit, Device, QuantumMapper]):
    """Map one benchmark; module-level so worker processes can import it."""
    from ..experiments.common import _record

    benchmark, device, mapper = payload
    return _record(benchmark, mapper.map(benchmark.circuit, device))


def run_suite_parallel(
    benchmarks: Sequence[BenchmarkCircuit],
    device: Optional[Device] = None,
    mapper: Optional[QuantumMapper] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
) -> SuiteRunReport:
    """Map a benchmark suite with a worker pool; see :class:`SuiteRunReport`.

    Mirrors :func:`repro.experiments.common.run_suite` semantics
    (benchmarks wider than the device are skipped; ``progress`` receives
    ``(index, total, name)``), adding process fan-out, per-circuit
    timing, and per-circuit failure capture.  When ``workers`` is
    ``None`` the ``REPRO_WORKERS`` environment variable is consulted
    first (falling back to the CPU count), so one environment setting
    configures every fan-out in a run.
    """
    from ..experiments.common import paper_configuration
    from ..compiler.mapper import trivial_mapper

    device = device if device is not None else paper_configuration()
    mapper = mapper if mapper is not None else trivial_mapper()
    if workers is None:
        workers = workers_from_env()
    start = time.perf_counter()
    kept: List[BenchmarkCircuit] = []
    skipped: List[str] = []
    for benchmark in benchmarks:
        if benchmark.circuit.num_qubits > device.num_qubits:
            skipped.append(benchmark.source)
        else:
            kept.append(benchmark)

    def _progress(done: int, total: int) -> None:
        if progress is not None and done < total:
            progress(done, total, kept[done].source)

    result = parallel_map(
        _map_payload,
        [(benchmark, device, mapper) for benchmark in kept],
        workers=workers,
        progress=_progress if progress is not None else None,
    )
    report = SuiteRunReport(
        skipped=skipped, workers=result.workers, fell_back=result.fell_back
    )
    for benchmark, outcome in zip(kept, result.outcomes):
        report.timings.append(CircuitTiming(benchmark.source, outcome.elapsed_s))
        if outcome.ok:
            report.records.append(outcome.value)
        else:
            report.failures.append(
                CircuitFailure(benchmark.source, outcome.error, outcome.traceback)
            )
    report.wall_time_s = time.perf_counter() - start
    return report
