"""Suite-scale execution runtime.

The paper's evaluation is embarrassingly parallel — 200 independent
circuit-mapping problems — so this package provides the process-level
fan-out used by the experiment harness, the CLI and the benchmark
drivers:

* :mod:`repro.runtime.parallel` — a generic deterministic process pool
  (ordered results, per-item timing and error capture, graceful serial
  fallback when a worker dies), with opt-in fused task batching and a
  zero-copy shared-memory payload transport.
* :mod:`repro.runtime.batching` — deterministic, size-aware packing of
  payloads into fused pool tasks.
* :mod:`repro.runtime.shm` — the shared-memory segment registry
  (publish/attach/refcount/unlink with crash-safe cleanup) behind the
  zero-copy transport here and in ``repro.service``.
* :mod:`repro.runtime.suite_runner` — the mapping-suite runner built on
  it, producing :class:`~repro.runtime.suite_runner.SuiteRunReport`.
"""

from . import shm
from .batching import pack_batches
from .parallel import ItemOutcome, ParallelResult, parallel_map, workers_from_env
from .suite_runner import (
    CircuitFailure,
    CircuitResilience,
    CircuitTiming,
    SuiteRunReport,
    run_suite_parallel,
)

__all__ = [
    "ItemOutcome",
    "ParallelResult",
    "parallel_map",
    "workers_from_env",
    "pack_batches",
    "shm",
    "CircuitFailure",
    "CircuitResilience",
    "CircuitTiming",
    "SuiteRunReport",
    "run_suite_parallel",
]
