"""Deterministic process-parallel map.

:func:`parallel_map` fans a pure function out over a payload list with
multiprocessing and returns one :class:`ItemOutcome` per payload **in
submission order**, regardless of completion order, worker count, batch
size or transport (by-value vs shared memory).

Determinism contract
--------------------
Each payload is pickled once at submission time, so every task sees a
pristine copy of its inputs — mutable state (e.g. a mapper's RNG) cannot
leak between tasks.  The ``workers=1`` path runs in-process but routes
every payload through the same pickle round-trip, which is what makes
single-worker and multi-worker runs byte-identical.  Callers whose
payloads are immutable (or which never mutate them) can opt out of the
inline round-trip with ``clone=False``: the worker then sees the
caller's *live* objects, which skips the pickle entirely but puts the
isolation burden on the caller — if ``fn`` mutates its payload, or the
payload holds stateful objects (RNGs, caches) shared across items,
``clone=False`` runs may diverge from pooled runs.  The flag never
affects pooled execution, where process boundaries already force the
pickle.

Fused batching and zero-copy dispatch
-------------------------------------
``batch_size > 1`` packs contiguous runs of payloads into fused pool
tasks (``repro.runtime.batching``) to amortise per-task dispatch
overhead; results are flattened back to per-item outcomes in submission
order, so journals and callbacks are byte-identical at any batch size.
``zero_copy=True`` additionally publishes the pickled payloads into one
``multiprocessing.shared_memory`` segment (``repro.runtime.shm``) and
ships only (segment, offset, length) descriptors per item — the payload
bytes cross the process boundary zero times through the pipe.  Both
knobs preserve the pickled-once contract exactly: every item is still
one independent ``pickle.dumps``/``loads`` round trip, merely routed
through a different transport.

Failure handling
----------------
* An exception raised by ``fn`` is captured in the item's outcome
  (``error`` + traceback string); other items are unaffected.
* A *dying* worker (SIGKILL, hard crash) breaks the pool; every item
  whose result was lost is recomputed serially in the parent process,
  so the call still returns a complete, correctly ordered result list —
  ``ParallelResult.fell_back`` records that it happened, and each
  recomputed item's :attr:`ItemOutcome.attempts` counts the lost pool
  attempt.  The parent recomputes from its own pickled copies, so the
  fallback works even after the shared segment's publisher-side data
  would have been lost with the workers.
* An *unresponsive* worker (stuck past ``item_timeout_s`` without
  completing its task) is hard-killed along with the rest of the pool
  and the outstanding items are recomputed serially — the backstop for
  code that never reaches a cooperative deadline checkpoint.  The
  recompute runs ``fn`` in the parent, so callers using the timeout
  should hand in an ``fn`` that bounds its own work (the suite runner's
  resilient payload does, via its cooperative deadlines).  With fused
  batching the bound applies per *task*, i.e. per batch.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing
from . import shm
from .batching import pack_batches

__all__ = ["ItemOutcome", "ParallelResult", "parallel_map", "workers_from_env"]

#: Environment variable consulted by :func:`workers_from_env`.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: ``(source, value)`` pairs already warned about (one warning each).
_WARNED_VALUES: Set[Tuple[str, str]] = set()

#: Histogram buckets for dispatched batch sizes (items per fused task).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def workers_from_env(default: Optional[int] = None) -> Optional[int]:
    """Worker count requested via the ``REPRO_WORKERS`` environment variable.

    ``REPRO_WORKERS=N`` (N > 0) returns ``N``; unset or empty values
    return ``default``.  Zero, negative or unparsable values *also*
    return ``default`` but emit a one-time :class:`RuntimeWarning` —
    a misconfigured environment must be visible, not silently serial.
    This is the single knob shared by the suite runner and the benchmark
    drivers, so one environment setting configures every fan-out in a
    run.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        _warn_invalid_workers(raw, "not an integer")
        return default
    if value <= 0:
        _warn_invalid_workers(raw, "must be a positive integer")
        return default
    return value


def _warn_invalid_workers(
    raw: str, reason: str, source: str = WORKERS_ENV_VAR
) -> None:
    if (source, raw) in _WARNED_VALUES:
        return
    _WARNED_VALUES.add((source, raw))
    warnings.warn(
        f"ignoring {source}={raw!r} ({reason}); "
        "falling back to the default worker count",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ItemOutcome:
    """Result of running ``fn`` on one payload.

    Attributes
    ----------
    index:
        Position of the payload in the input sequence.
    value:
        Return value of ``fn`` (``None`` when it raised).
    error:
        ``None`` on success, else ``"ExcType: message"``.
    traceback:
        Full formatted traceback on failure (for logs), else ``None``.
    elapsed_s:
        Wall time spent inside ``fn`` for the attempt that produced
        this outcome.
    attempts:
        How many times the runtime started ``fn`` for this payload: 1
        on the direct path, 2 when the item was recomputed serially
        after a worker death or hard timeout (the lost pool attempt
        counts).
    duration_s:
        Wall time of the *measured* attempts for this item.  Equal to
        ``elapsed_s`` except on the recompute path, where the lost
        in-worker time is unobservable and only the recompute is summed.
    """

    index: int
    value: Any
    error: Optional[str]
    traceback: Optional[str]
    elapsed_s: float
    attempts: int = 1
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ParallelResult:
    """Ordered outcomes plus how the run actually executed.

    ``recomputed`` counts the items whose pool result was lost (dead or
    unresponsive worker) and that were recomputed serially in the
    parent; ``total_attempts`` sums every per-item attempt, so
    ``total_attempts - len(outcomes)`` is the run's extra work.
    ``serialized_bytes`` is the total pickled payload size (what a
    by-value dispatch ships through the pool pipe); ``shipped_bytes``
    is what this run actually embedded in pool submissions — equal to
    ``serialized_bytes`` on the by-value path, but only the descriptor
    bytes on the zero-copy path.  ``batches`` counts dispatched fused
    tasks (0 on the inline path).
    """

    outcomes: List[ItemOutcome] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False
    recomputed: int = 0
    batches: int = 0
    serialized_bytes: int = 0
    shipped_bytes: int = 0
    zero_copy: bool = False

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes)

    def values(self) -> List[Any]:
        """Values of successful items, input order preserved."""
        return [o.value for o in self.outcomes if o.ok]


def _run_item(
    fn: Callable[[Any], Any], index: int, payload: Any, attempts: int = 1
) -> ItemOutcome:
    """Execute one task, capturing its error and wall time.

    Runs inside the worker process (or inline for ``workers=1``); must
    stay module-level so the pool can pickle it by reference.
    ``attempts`` is the cumulative attempt count this execution brings
    the item to (2 on the serial-recompute path).
    """
    start = time.perf_counter()
    try:
        value = fn(payload)
        error = tb = None
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        value = None
        error = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
    elapsed = time.perf_counter() - start
    return ItemOutcome(
        index, value, error, tb, elapsed, attempts=attempts, duration_s=elapsed
    )


def _run_item_blob(
    fn: Callable[[Any], Any], index: int, blob: bytes, attempts: int = 1
) -> ItemOutcome:
    """Execute one task from its pre-pickled payload blob."""
    return _run_item(fn, index, pickle.loads(blob), attempts=attempts)


def _run_batch_blobs(
    fn: Callable[[Any], Any], items: Sequence[Tuple[int, bytes]]
) -> List[ItemOutcome]:
    """Fused task: run every (index, blob) item; by-value transport."""
    return [_run_item_blob(fn, index, blob) for index, blob in items]


def _run_batch_shm(
    fn: Callable[[Any], Any],
    segment: str,
    items: Sequence[Tuple[int, int, int]],
) -> List[ItemOutcome]:
    """Fused task: run every (index, offset, length) item read out of
    one shared segment.  The segment is attached once per worker
    process (``repro.runtime.shm`` caches the mapping), so a task costs
    one memcpy + unpickle per item, not a pipe transfer.
    """
    outcomes = []
    for index, offset, length in items:
        blob = shm.read_bytes(shm.SegmentRef(segment, offset, length))
        outcomes.append(_run_item_blob(fn, index, blob))
    return outcomes


def _clone(payload: Any) -> Any:
    """Pickle round-trip, mirroring what pool submission does to payloads."""
    return pickle.loads(pickle.dumps(payload))


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[ItemOutcome], None]] = None,
    item_timeout_s: Optional[float] = None,
    clone: bool = True,
    batch_size: int = 1,
    max_batch_bytes: Optional[int] = None,
    zero_copy: bool = False,
) -> ParallelResult:
    """Run ``fn`` over ``payloads`` across processes; ordered outcomes.

    Parameters
    ----------
    fn:
        Module-level callable (it is sent to workers by reference).
    payloads:
        Task inputs; each must be picklable (except on the inline
        ``clone=False`` path, which never pickles them).
    workers:
        Process count; ``None`` uses ``os.cpu_count()``, values are
        clamped to ``[1, len(payloads)]``.  ``workers=1`` runs inline
        (no pool) but with identical pickling semantics.
    progress:
        Optional ``(done, total)`` callback, invoked in the parent as
        results are collected (in submission order).
    on_result:
        Optional per-outcome callback, invoked in the parent in
        submission order as soon as each item's outcome is final — the
        hook the suite runner journals through, so completed work is
        durable before the batch finishes.
    item_timeout_s:
        Hard per-task wait bound.  When a pooled task takes longer than
        this to deliver its result, every pool process is killed and the
        outstanding items are recomputed serially in the parent (see the
        module docstring's failure-handling notes).  With fused batching
        a task is a whole batch, so size the bound accordingly.  ``None``
        disables the bound; ignored on the inline ``workers=1`` path,
        where cooperative deadlines inside ``fn`` are the only brake.
    clone:
        Inline-path isolation switch.  The default (``True``) pickles
        each payload through the same round-trip pooled dispatch does,
        keeping ``workers=1`` byte-identical to ``workers=N``.
        ``clone=False`` skips that round-trip and hands ``fn`` the
        caller's live payload objects — an opt-in for immutable
        payloads where the pickle is pure overhead.  See the module
        docstring for the exact determinism contract; pooled runs
        ignore the flag.
    batch_size:
        Items fused per pool task (default 1: one task per payload).
        Packing is contiguous and deterministic, so results are
        byte-identical at any value; see ``repro.runtime.batching``.
    max_batch_bytes:
        Optional byte budget per fused task; a batch closes early
        rather than exceed it (single oversized payloads still ship).
    zero_copy:
        Publish pickled payloads into one shared-memory segment and
        ship (segment, offset, length) descriptors instead of payload
        bytes.  Falls back silently to by-value dispatch when shared
        memory is unavailable; a no-op on the inline path.  The segment
        is released when the call returns — crash-safe cleanup is
        handled by ``repro.runtime.shm``.
    """
    payloads = list(payloads)
    total = len(payloads)
    if workers is not None and int(workers) <= 0:
        # A zero/negative count is a misconfiguration (it used to be
        # silently clamped to serial): surface it once and use the
        # default, mirroring workers_from_env's env-value handling.
        _warn_invalid_workers(
            str(workers), "must be a positive integer", source="workers"
        )
        workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(int(workers), total or 1))
    telemetry_on = tracing.is_enabled()

    def _finish(outcome: ItemOutcome) -> None:
        if on_result is not None:
            on_result(outcome)
        if progress is not None:
            progress(outcome.index + 1, total)

    if workers == 1 or total == 0:
        outcomes = []
        serialized_bytes = 0
        for index, payload in enumerate(payloads):
            if clone:
                blob = pickle.dumps(payload)
                serialized_bytes += len(blob)
                if telemetry_on:
                    telemetry_metrics.histogram(
                        "payload_bytes",
                        buckets=telemetry_metrics.BYTE_BUCKETS,
                        path="parallel_map",
                    ).observe(len(blob))
                payload = pickle.loads(blob)
            outcome = _run_item(fn, index, payload)
            outcomes.append(outcome)
            _finish(outcome)
        if telemetry_on and serialized_bytes:
            telemetry_metrics.counter(
                "serialized_bytes_total", path="parallel_map"
            ).inc(serialized_bytes)
        return ParallelResult(
            outcomes,
            workers=1,
            fell_back=False,
            serialized_bytes=serialized_bytes,
            shipped_bytes=0,
        )

    # Pooled dispatch: pickle every payload exactly once, up front and
    # in submission order — this is the serialization the determinism
    # contract pins, independent of transport and batching below.
    serialize_start = time.perf_counter()
    blobs = [pickle.dumps(payload) for payload in payloads]
    serialize_elapsed = time.perf_counter() - serialize_start
    sizes = [len(blob) for blob in blobs]
    serialized_bytes = sum(sizes)
    if telemetry_on:
        payload_hist = telemetry_metrics.histogram(
            "payload_bytes",
            buckets=telemetry_metrics.BYTE_BUCKETS,
            path="parallel_map",
        )
        for size in sizes:
            payload_hist.observe(size)
        telemetry_metrics.counter(
            "serialized_bytes_total", path="parallel_map"
        ).inc(serialized_bytes)
        telemetry_metrics.counter(
            "serialization_seconds_total", path="parallel_map", stage="pickle"
        ).inc(serialize_elapsed)

    batches = pack_batches(sizes, batch_size, max_batch_bytes)
    use_shm = zero_copy and shm.is_available()
    segment_name: Optional[str] = None
    refs: List[shm.SegmentRef] = []
    if use_shm:
        try:
            segment_name, refs = shm.publish_bytes(blobs)
        except shm.ShmUnavailable:  # pragma: no cover - exotic platform
            use_shm = False

    collected: List[Optional[ItemOutcome]] = [None] * total
    shipped_bytes = 0
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = []
            for group in batches:
                if use_shm:
                    items = [
                        (index, refs[index].offset, refs[index].length)
                        for index in group
                    ]
                    shipped_bytes += len(pickle.dumps((segment_name, items)))
                    futures.append(
                        pool.submit(_run_batch_shm, fn, segment_name, items)
                    )
                else:
                    items = [(index, blobs[index]) for index in group]
                    shipped_bytes += sum(sizes[index] for index in group)
                    futures.append(pool.submit(_run_batch_blobs, fn, items))
                if telemetry_on:
                    telemetry_metrics.histogram(
                        "batch_size", buckets=BATCH_SIZE_BUCKETS
                    ).observe(len(group))
            for group, future in zip(batches, futures):
                try:
                    batch_outcomes = future.result(timeout=item_timeout_s)
                except FuturesTimeoutError:
                    # An unresponsive worker: hard-kill the whole pool
                    # (there is no per-task kill in ProcessPoolExecutor)
                    # and recompute the holes below.
                    for process in list(
                        getattr(pool, "_processes", {}).values()
                    ):
                        process.kill()
                    break
                except BrokenProcessPool:
                    # A worker died; later futures are lost too.  Stop
                    # draining and recompute the holes below.
                    break
                except shm.ShmUnavailable:  # pragma: no cover - defensive
                    # The segment vanished under the workers (publisher
                    # crash recovery); recompute from the local blobs.
                    break
                for outcome in batch_outcomes:
                    collected[outcome.index] = outcome
                    _finish(outcome)
    except BrokenProcessPool:  # pragma: no cover - raised at pool shutdown
        pass
    finally:
        if segment_name is not None:
            shm.release(segment_name)

    fell_back = False
    recomputed = 0
    for index, outcome in enumerate(collected):
        if outcome is None:
            # Serial fallback in the parent: same pickling semantics, so
            # recovered items match what the worker would have returned.
            # The parent recomputes from its own pickled blobs — losing
            # the workers (and with them the shared segment's consumers)
            # never loses data.  attempts=2 counts the lost pool attempt.
            fell_back = True
            recomputed += 1
            outcome = _run_item_blob(fn, index, blobs[index], attempts=2)
            collected[index] = outcome
            _finish(outcome)
    return ParallelResult(
        list(collected),
        workers=workers,
        fell_back=fell_back,
        recomputed=recomputed,
        batches=len(batches),
        serialized_bytes=serialized_bytes,
        shipped_bytes=shipped_bytes,
        zero_copy=use_shm,
    )
