"""Deterministic process-parallel map.

:func:`parallel_map` fans a pure function out over a payload list with
multiprocessing and returns one :class:`ItemOutcome` per payload **in
submission order**, regardless of completion order or worker count.

Determinism contract
--------------------
Each payload is pickled once at submission time, so every task sees a
pristine copy of its inputs — mutable state (e.g. a mapper's RNG) cannot
leak between tasks.  The ``workers=1`` path runs in-process but routes
every payload through the same pickle round-trip, which is what makes
single-worker and multi-worker runs byte-identical.

Failure handling
----------------
* An exception raised by ``fn`` is captured in the item's outcome
  (``error`` + traceback string); other items are unaffected.
* A *dying* worker (SIGKILL, hard crash) breaks the pool; every item
  whose result was lost is recomputed serially in the parent process,
  so the call still returns a complete, correctly ordered result list —
  ``ParallelResult.fell_back`` records that it happened.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["ItemOutcome", "ParallelResult", "parallel_map", "workers_from_env"]

#: Environment variable consulted by :func:`workers_from_env`.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def workers_from_env(default: Optional[int] = None) -> Optional[int]:
    """Worker count requested via the ``REPRO_WORKERS`` environment variable.

    ``REPRO_WORKERS=N`` (N > 0) returns ``N``; unset, empty, zero or
    unparsable values return ``default``.  This is the single knob shared
    by the suite runner and the benchmark drivers, so one environment
    setting configures every fan-out in a run.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


@dataclass(frozen=True)
class ItemOutcome:
    """Result of running ``fn`` on one payload.

    Attributes
    ----------
    index:
        Position of the payload in the input sequence.
    value:
        Return value of ``fn`` (``None`` when it raised).
    error:
        ``None`` on success, else ``"ExcType: message"``.
    traceback:
        Full formatted traceback on failure (for logs), else ``None``.
    elapsed_s:
        Wall time spent inside ``fn`` for this item.
    """

    index: int
    value: Any
    error: Optional[str]
    traceback: Optional[str]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ParallelResult:
    """Ordered outcomes plus how the run actually executed."""

    outcomes: List[ItemOutcome] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False

    def values(self) -> List[Any]:
        """Values of successful items, input order preserved."""
        return [o.value for o in self.outcomes if o.ok]


def _run_item(fn: Callable[[Any], Any], index: int, payload: Any) -> ItemOutcome:
    """Execute one task, capturing its error and wall time.

    Runs inside the worker process (or inline for ``workers=1``); must
    stay module-level so the pool can pickle it by reference.
    """
    start = time.perf_counter()
    try:
        value = fn(payload)
        error = tb = None
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        value = None
        error = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
    return ItemOutcome(index, value, error, tb, time.perf_counter() - start)


def _clone(payload: Any) -> Any:
    """Pickle round-trip, mirroring what pool submission does to payloads."""
    return pickle.loads(pickle.dumps(payload))


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ParallelResult:
    """Run ``fn`` over ``payloads`` across processes; ordered outcomes.

    Parameters
    ----------
    fn:
        Module-level callable (it is sent to workers by reference).
    payloads:
        Task inputs; each must be picklable.
    workers:
        Process count; ``None`` uses ``os.cpu_count()``, values are
        clamped to ``[1, len(payloads)]``.  ``workers=1`` runs inline
        (no pool) but with identical pickling semantics.
    progress:
        Optional ``(done, total)`` callback, invoked in the parent as
        results are collected (in submission order).
    """
    payloads = list(payloads)
    total = len(payloads)
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(int(workers), total or 1))

    if workers == 1 or total == 0:
        outcomes = []
        for index, payload in enumerate(payloads):
            outcomes.append(_run_item(fn, index, _clone(payload)))
            if progress is not None:
                progress(index + 1, total)
        return ParallelResult(outcomes, workers=1, fell_back=False)

    collected: List[Optional[ItemOutcome]] = [None] * total
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_item, fn, index, payload)
                for index, payload in enumerate(payloads)
            ]
            for index, future in enumerate(futures):
                try:
                    collected[index] = future.result()
                except BrokenProcessPool:
                    # A worker died; later futures are lost too.  Stop
                    # draining and recompute the holes below.
                    break
                if progress is not None:
                    progress(index + 1, total)
    except BrokenProcessPool:  # pragma: no cover - raised at pool shutdown
        pass

    fell_back = False
    for index, outcome in enumerate(collected):
        if outcome is None:
            # Serial fallback in the parent: same pickling semantics, so
            # recovered items match what the worker would have returned.
            fell_back = True
            collected[index] = _run_item(fn, index, _clone(payloads[index]))
            if progress is not None:
                progress(index + 1, total)
    return ParallelResult(list(collected), workers=workers, fell_back=fell_back)
