"""Deterministic process-parallel map.

:func:`parallel_map` fans a pure function out over a payload list with
multiprocessing and returns one :class:`ItemOutcome` per payload **in
submission order**, regardless of completion order or worker count.

Determinism contract
--------------------
Each payload is pickled once at submission time, so every task sees a
pristine copy of its inputs — mutable state (e.g. a mapper's RNG) cannot
leak between tasks.  The ``workers=1`` path runs in-process but routes
every payload through the same pickle round-trip, which is what makes
single-worker and multi-worker runs byte-identical.

Failure handling
----------------
* An exception raised by ``fn`` is captured in the item's outcome
  (``error`` + traceback string); other items are unaffected.
* A *dying* worker (SIGKILL, hard crash) breaks the pool; every item
  whose result was lost is recomputed serially in the parent process,
  so the call still returns a complete, correctly ordered result list —
  ``ParallelResult.fell_back`` records that it happened, and each
  recomputed item's :attr:`ItemOutcome.attempts` counts the lost pool
  attempt.
* An *unresponsive* worker (stuck past ``item_timeout_s`` without
  completing its item) is hard-killed along with the rest of the pool
  and the outstanding items are recomputed serially — the backstop for
  code that never reaches a cooperative deadline checkpoint.  The
  recompute runs ``fn`` in the parent, so callers using the timeout
  should hand in an ``fn`` that bounds its own work (the suite runner's
  resilient payload does, via its cooperative deadlines).
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

__all__ = ["ItemOutcome", "ParallelResult", "parallel_map", "workers_from_env"]

#: Environment variable consulted by :func:`workers_from_env`.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: ``(source, value)`` pairs already warned about (one warning each).
_WARNED_VALUES: Set[Tuple[str, str]] = set()


def workers_from_env(default: Optional[int] = None) -> Optional[int]:
    """Worker count requested via the ``REPRO_WORKERS`` environment variable.

    ``REPRO_WORKERS=N`` (N > 0) returns ``N``; unset or empty values
    return ``default``.  Zero, negative or unparsable values *also*
    return ``default`` but emit a one-time :class:`RuntimeWarning` —
    a misconfigured environment must be visible, not silently serial.
    This is the single knob shared by the suite runner and the benchmark
    drivers, so one environment setting configures every fan-out in a
    run.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        _warn_invalid_workers(raw, "not an integer")
        return default
    if value <= 0:
        _warn_invalid_workers(raw, "must be a positive integer")
        return default
    return value


def _warn_invalid_workers(
    raw: str, reason: str, source: str = WORKERS_ENV_VAR
) -> None:
    if (source, raw) in _WARNED_VALUES:
        return
    _WARNED_VALUES.add((source, raw))
    warnings.warn(
        f"ignoring {source}={raw!r} ({reason}); "
        "falling back to the default worker count",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ItemOutcome:
    """Result of running ``fn`` on one payload.

    Attributes
    ----------
    index:
        Position of the payload in the input sequence.
    value:
        Return value of ``fn`` (``None`` when it raised).
    error:
        ``None`` on success, else ``"ExcType: message"``.
    traceback:
        Full formatted traceback on failure (for logs), else ``None``.
    elapsed_s:
        Wall time spent inside ``fn`` for the attempt that produced
        this outcome.
    attempts:
        How many times the runtime started ``fn`` for this payload: 1
        on the direct path, 2 when the item was recomputed serially
        after a worker death or hard timeout (the lost pool attempt
        counts).
    duration_s:
        Wall time of the *measured* attempts for this item.  Equal to
        ``elapsed_s`` except on the recompute path, where the lost
        in-worker time is unobservable and only the recompute is summed.
    """

    index: int
    value: Any
    error: Optional[str]
    traceback: Optional[str]
    elapsed_s: float
    attempts: int = 1
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ParallelResult:
    """Ordered outcomes plus how the run actually executed.

    ``recomputed`` counts the items whose pool result was lost (dead or
    unresponsive worker) and that were recomputed serially in the
    parent; ``total_attempts`` sums every per-item attempt, so
    ``total_attempts - len(outcomes)`` is the run's extra work.
    """

    outcomes: List[ItemOutcome] = field(default_factory=list)
    workers: int = 1
    fell_back: bool = False
    recomputed: int = 0

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes)

    def values(self) -> List[Any]:
        """Values of successful items, input order preserved."""
        return [o.value for o in self.outcomes if o.ok]


def _run_item(
    fn: Callable[[Any], Any], index: int, payload: Any, attempts: int = 1
) -> ItemOutcome:
    """Execute one task, capturing its error and wall time.

    Runs inside the worker process (or inline for ``workers=1``); must
    stay module-level so the pool can pickle it by reference.
    ``attempts`` is the cumulative attempt count this execution brings
    the item to (2 on the serial-recompute path).
    """
    start = time.perf_counter()
    try:
        value = fn(payload)
        error = tb = None
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        value = None
        error = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
    elapsed = time.perf_counter() - start
    return ItemOutcome(
        index, value, error, tb, elapsed, attempts=attempts, duration_s=elapsed
    )


def _clone(payload: Any) -> Any:
    """Pickle round-trip, mirroring what pool submission does to payloads."""
    return pickle.loads(pickle.dumps(payload))


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[ItemOutcome], None]] = None,
    item_timeout_s: Optional[float] = None,
) -> ParallelResult:
    """Run ``fn`` over ``payloads`` across processes; ordered outcomes.

    Parameters
    ----------
    fn:
        Module-level callable (it is sent to workers by reference).
    payloads:
        Task inputs; each must be picklable.
    workers:
        Process count; ``None`` uses ``os.cpu_count()``, values are
        clamped to ``[1, len(payloads)]``.  ``workers=1`` runs inline
        (no pool) but with identical pickling semantics.
    progress:
        Optional ``(done, total)`` callback, invoked in the parent as
        results are collected (in submission order).
    on_result:
        Optional per-outcome callback, invoked in the parent in
        submission order as soon as each item's outcome is final — the
        hook the suite runner journals through, so completed work is
        durable before the batch finishes.
    item_timeout_s:
        Hard per-item wait bound.  When a pooled item takes longer than
        this to deliver its result, every pool process is killed and the
        outstanding items are recomputed serially in the parent (see the
        module docstring's failure-handling notes).  ``None`` disables
        the bound; ignored on the inline ``workers=1`` path, where
        cooperative deadlines inside ``fn`` are the only brake.
    """
    payloads = list(payloads)
    total = len(payloads)
    if workers is not None and int(workers) <= 0:
        # A zero/negative count is a misconfiguration (it used to be
        # silently clamped to serial): surface it once and use the
        # default, mirroring workers_from_env's env-value handling.
        _warn_invalid_workers(
            str(workers), "must be a positive integer", source="workers"
        )
        workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(int(workers), total or 1))

    def _finish(outcome: ItemOutcome) -> None:
        if on_result is not None:
            on_result(outcome)
        if progress is not None:
            progress(outcome.index + 1, total)

    if workers == 1 or total == 0:
        outcomes = []
        for index, payload in enumerate(payloads):
            outcome = _run_item(fn, index, _clone(payload))
            outcomes.append(outcome)
            _finish(outcome)
        return ParallelResult(outcomes, workers=1, fell_back=False)

    collected: List[Optional[ItemOutcome]] = [None] * total
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_item, fn, index, payload)
                for index, payload in enumerate(payloads)
            ]
            for index, future in enumerate(futures):
                try:
                    collected[index] = future.result(timeout=item_timeout_s)
                except FuturesTimeoutError:
                    # An unresponsive worker: hard-kill the whole pool
                    # (there is no per-task kill in ProcessPoolExecutor)
                    # and recompute the holes below.
                    for process in list(
                        getattr(pool, "_processes", {}).values()
                    ):
                        process.kill()
                    break
                except BrokenProcessPool:
                    # A worker died; later futures are lost too.  Stop
                    # draining and recompute the holes below.
                    break
                _finish(collected[index])
    except BrokenProcessPool:  # pragma: no cover - raised at pool shutdown
        pass

    fell_back = False
    recomputed = 0
    for index, outcome in enumerate(collected):
        if outcome is None:
            # Serial fallback in the parent: same pickling semantics, so
            # recovered items match what the worker would have returned.
            # attempts=2 counts the pool attempt whose result was lost.
            fell_back = True
            recomputed += 1
            outcome = _run_item(fn, index, _clone(payloads[index]), attempts=2)
            collected[index] = outcome
            _finish(outcome)
    return ParallelResult(
        list(collected),
        workers=workers,
        fell_back=fell_back,
        recomputed=recomputed,
    )
