"""Shared-memory data plane: the zero-copy side of the runtime.

Process fan-out in this repository historically shipped every payload
by value: ``parallel_map`` pickles each task into the pool pipe and the
service's warm workers rebuild their derived tables from scratch.  At
service scale the *serialization* dominates — the paper's full-stack
argument applied to our own stack.  This module is the small registry
that lets both layers ship **descriptors instead of bytes**:

* the parent :func:`publish_bytes` / :func:`publish_array` blobs and
  arrays into ``multiprocessing.shared_memory`` segments, getting back
  tiny picklable :class:`SegmentRef` descriptors (segment name, shape,
  dtype, offset, length);
* workers :func:`read_bytes` / :func:`attach_array` through a
  process-local attach cache, so a segment is mapped **once per
  process** no matter how many tasks reference it;
* segments are reference-counted (:func:`retain` / :func:`release`)
  and crash-safe: every segment created by this process is recorded
  and unlinked at interpreter exit even when the owning code path never
  reached its ``finally`` (:func:`cleanup_all` is registered with
  :mod:`atexit`), and :func:`unlink` is idempotent — double unlinks and
  unlinks of already-vanished segments are safe no-ops.

Telemetry: ``shm_segments_total`` / ``shm_bytes_total`` count creation,
``shm_attach_total`` counts *fresh* per-process attaches (a cache hit
does not count — that is the point), all gated on the usual telemetry
switch.

Platforms without POSIX/System-V shared memory degrade gracefully:
:func:`is_available` reports support, and callers (``parallel_map``,
the service pool) silently fall back to the by-value path.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing

try:  # pragma: no cover - import gate, exercised implicitly everywhere
    from multiprocessing import shared_memory as _shared_memory

    _SHM_OK = True
except ImportError:  # pragma: no cover - platform without shm
    _shared_memory = None
    _SHM_OK = False

__all__ = [
    "SegmentRef",
    "ShmUnavailable",
    "is_available",
    "publish_bytes",
    "publish_array",
    "read_bytes",
    "read_view",
    "attach_array",
    "retain",
    "release",
    "release_many",
    "unlink",
    "attached_count",
    "created_segments",
    "leaked_segments",
    "detach_all",
    "cleanup_all",
]


class ShmUnavailable(RuntimeError):
    """Shared memory is unsupported here, or the segment is gone.

    Raised on attach when the platform has no shared memory or when the
    referenced segment has already been unlinked (e.g. the publishing
    process crashed and its atexit cleanup ran).  Callers recover by
    recomputing from their by-value copy of the data.
    """


def is_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this host."""
    return _SHM_OK


@dataclass(frozen=True)
class SegmentRef:
    """A tiny picklable pointer into one shared-memory segment.

    ``kind`` is ``"bytes"`` (an opaque blob; ``shape``/``dtype`` unused)
    or ``"array"`` (a dense ndarray of ``shape``/``dtype`` starting at
    ``offset``).  A ref is ~100 bytes on the wire regardless of how
    large the data it names is — that is the whole zero-copy trick.
    """

    segment: str
    offset: int
    length: int
    kind: str = "bytes"
    shape: Tuple[int, ...] = field(default_factory=tuple)
    dtype: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("bytes", "array"):
            raise ValueError(f"unknown SegmentRef kind {self.kind!r}")
        if self.offset < 0 or self.length < 0:
            raise ValueError("SegmentRef offset/length must be non-negative")


# ---------------------------------------------------------------------------
# Process-local state.  ``_CREATED`` tracks segments this process owns
# (name -> [SharedMemory, refcount]); ``_ATTACHED`` caches foreign
# segments this process has mapped.  One lock guards both: attach/unlink
# races only happen under deliberate crash tests, but they must stay
# safe there too.
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_CREATED: Dict[str, List] = {}
_ATTACHED: Dict[str, "_shared_memory.SharedMemory"] = {}
_SEGMENT_PREFIX = "repro-shm"


def _new_segment(nbytes: int) -> "_shared_memory.SharedMemory":
    if not _SHM_OK:
        raise ShmUnavailable("multiprocessing.shared_memory is unavailable")
    name = f"{_SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"
    shm = _shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    with _LOCK:
        _CREATED[shm.name] = [shm, 1]
    if tracing.is_enabled():
        telemetry_metrics.counter("shm_segments_total").inc()
        telemetry_metrics.counter("shm_bytes_total").inc(max(1, nbytes))
    return shm


def publish_bytes(blobs: Sequence[bytes]) -> Tuple[str, List[SegmentRef]]:
    """Copy ``blobs`` into one fresh segment; returns its name + refs.

    The blobs are laid out back to back in submission order, so the
    returned refs differ only in ``offset``/``length`` — a fused task
    batch ships as ``(segment, [(offset, length), ...])``.  The segment
    starts with refcount 1 (owned by the caller); pair with
    :func:`release`.
    """
    total = sum(len(blob) for blob in blobs)
    shm = _new_segment(total)
    refs: List[SegmentRef] = []
    offset = 0
    view = shm.buf
    for blob in blobs:
        view[offset : offset + len(blob)] = blob
        refs.append(SegmentRef(shm.name, offset, len(blob), kind="bytes"))
        offset += len(blob)
    return shm.name, refs


def publish_array(array: np.ndarray) -> SegmentRef:
    """Copy one ndarray into a fresh segment; returns its ref.

    The array is stored C-contiguous; :func:`attach_array` hands back a
    read-only zero-copy view of the mapped segment.  Refcount starts at
    1 (owned by the caller); pair with :func:`release`.
    """
    data = np.ascontiguousarray(array)
    shm = _new_segment(data.nbytes)
    target = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
    target[...] = data
    return SegmentRef(
        shm.name,
        0,
        data.nbytes,
        kind="array",
        shape=tuple(int(s) for s in data.shape),
        dtype=str(data.dtype),
    )


def _attach(name: str) -> "_shared_memory.SharedMemory":
    """Map a segment into this process (cached; one mapping per name)."""
    if not _SHM_OK:
        raise ShmUnavailable("multiprocessing.shared_memory is unavailable")
    with _LOCK:
        owned = _CREATED.get(name)
        if owned is not None:
            return owned[0]
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached
    try:
        try:
            shm = _shared_memory.SharedMemory(name=name, create=False, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13 has no track=
            # Pre-3.13 attach re-registers the name with the resource
            # tracker shared across the process tree; that is a set-add
            # no-op on top of the creator's own registration, and the
            # creator's unlink() performs the single matching
            # unregister.  Unregistering here too would double-remove
            # and make the tracker print KeyError tracebacks.
            shm = _shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError as exc:
        raise ShmUnavailable(
            f"shared segment {name!r} is gone (publisher crashed or "
            "already unlinked it)"
        ) from exc
    with _LOCK:
        existing = _ATTACHED.get(name)
        if existing is not None:  # lost a benign race; keep the first map
            shm.close()
            return existing
        _ATTACHED[name] = shm
    if tracing.is_enabled():
        telemetry_metrics.counter("shm_attach_total").inc()
    return shm


def read_bytes(ref: SegmentRef) -> bytes:
    """The blob a ``bytes`` ref points at (copied out of the segment)."""
    shm = _attach(ref.segment)
    return bytes(shm.buf[ref.offset : ref.offset + ref.length])


def read_view(ref: SegmentRef) -> memoryview:
    """Zero-copy view of a ``bytes`` ref (valid while attached)."""
    shm = _attach(ref.segment)
    return shm.buf[ref.offset : ref.offset + ref.length]


def attach_array(ref: SegmentRef) -> np.ndarray:
    """Read-only zero-copy ndarray view of an ``array`` ref."""
    if ref.kind != "array":
        raise ValueError(f"ref {ref} does not name an array")
    shm = _attach(ref.segment)
    array = np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=shm.buf,
        offset=ref.offset,
    )
    array.setflags(write=False)
    return array


# ---------------------------------------------------------------------------
# Lifecycle: refcounting + idempotent unlink + crash-safe sweep
# ---------------------------------------------------------------------------

def retain(name: str) -> None:
    """Take one extra reference on a segment this process created."""
    with _LOCK:
        entry = _CREATED.get(name)
        if entry is None:
            raise KeyError(f"segment {name!r} is not owned by this process")
        entry[1] += 1


def release(name: str) -> bool:
    """Drop one reference; unlinks at zero.  True when unlinked."""
    with _LOCK:
        entry = _CREATED.get(name)
        if entry is None:
            return False
        entry[1] -= 1
        if entry[1] > 0:
            return False
    return unlink(name)


def release_many(names: Sequence[str]) -> int:
    """Drop one reference on each named segment; returns unlink count.

    Convenience for bulk retirement (service shutdown, prewarm
    republish under calibration drift); names this process does not own
    are skipped exactly like :func:`release`.
    """
    return sum(1 for name in names if release(name))


def unlink(name: str) -> bool:
    """Destroy a segment owned by this process (idempotent).

    Returns True when this call actually unlinked it; False when the
    segment was already gone (double unlink, a crashed publisher, or a
    name this process never created) — never raises for those, which is
    what lets crash-recovery paths call it unconditionally.
    """
    with _LOCK:
        entry = _CREATED.pop(name, None)
    if entry is None:
        return False
    shm = entry[0]
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - platform quirk
        pass
    # SharedMemory.unlink() also unregisters the name from the resource
    # tracker (stdlib behaviour), so no extra bookkeeping is needed here
    # — adding our own unregister would double-remove and make the
    # tracker process print KeyError tracebacks.
    try:
        shm.unlink()
    except FileNotFoundError:
        return False
    return True


def attached_count() -> int:
    """Foreign segments currently mapped by this process (cache size)."""
    with _LOCK:
        return len(_ATTACHED)


def created_segments() -> List[str]:
    """Names of live segments owned by this process."""
    with _LOCK:
        return sorted(_CREATED)


def leaked_segments() -> List[str]:
    """Segments with this module's name prefix visible on the host.

    Scans ``/dev/shm`` (the POSIX shared-memory mount on Linux) for
    ``repro-shm-*`` names — *any* process's, not just this one's — so a
    chaos run can assert that killing workers mid-publish and unlinking
    segments under load left nothing behind.  Returns an empty list on
    platforms without a scannable mount; the leak invariant is then
    checked against :func:`created_segments` alone.
    """
    mount = "/dev/shm"
    try:
        names = os.listdir(mount)
    except OSError:  # pragma: no cover - non-Linux platform
        return []
    return sorted(n for n in names if n.startswith(_SEGMENT_PREFIX + "-"))


def detach_all() -> int:
    """Close every cached foreign mapping (tests/worker shutdown)."""
    with _LOCK:
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for shm in attached:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - live views
            pass
    return len(attached)


def cleanup_all() -> int:
    """Unlink every segment this process still owns; returns the count.

    Registered with :mod:`atexit`, so a process that dies without
    reaching its ``finally`` blocks (crash tests, SIGTERM teardown)
    still removes its segments instead of leaking them into
    ``/dev/shm``.
    """
    removed = 0
    for name in created_segments():
        if unlink(name):
            removed += 1
    return removed


atexit.register(cleanup_all)
