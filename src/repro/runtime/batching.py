"""Deterministic, size-aware packing of payloads into fused tasks.

One pool submission per payload is the safest dispatch shape, but at
service scale the per-task overhead (executor bookkeeping, pipe writes,
future wakeups) dominates when the payloads themselves are small
circuits.  :func:`pack_batches` fuses adjacent payloads into one task,
under two rules that keep the runner's determinism contract intact:

* **Stable order** — payloads are packed contiguously in submission
  order, never reordered or balanced by load.  Flattening the batch
  results in batch order therefore reproduces the per-item submission
  order exactly, which is why results are byte-identical at any worker
  count *and* any batch size.
* **Deterministic cuts** — a batch closes when it holds ``batch_size``
  items or when adding the next item would push it past
  ``max_batch_bytes`` (a batch always holds at least one item, so an
  oversized single payload still ships).  The cuts depend only on the
  payload sizes, not on timing or worker availability.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["pack_batches"]


def pack_batches(
    sizes: Sequence[int],
    batch_size: int,
    max_batch_bytes: Optional[int] = None,
) -> List[List[int]]:
    """Pack item indices ``0..len(sizes)-1`` into contiguous batches.

    ``sizes`` are the serialized byte lengths of the payloads in
    submission order.  Returns a list of index lists; concatenating
    them yields ``range(len(sizes))`` (order is never changed).  Each
    batch holds at most ``batch_size`` items (minimum 1) and, when
    ``max_batch_bytes`` is set, closes before exceeding it — except
    that a single item larger than the cap still gets its own batch.
    """
    count = len(sizes)
    batch_size = max(1, int(batch_size))
    if count == 0:
        return []
    if batch_size == 1:
        return [[index] for index in range(count)]

    batches: List[List[int]] = []
    current: List[int] = []
    current_bytes = 0
    for index in range(count):
        size = int(sizes[index])
        overflow = (
            max_batch_bytes is not None
            and current
            and current_bytes + size > max_batch_bytes
        )
        if current and (len(current) >= batch_size or overflow):
            batches.append(current)
            current = []
            current_bytes = 0
        current.append(index)
        current_bytes += size
    if current:
        batches.append(current)
    return batches
