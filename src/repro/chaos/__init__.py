"""Seeded chaos soak harness for the compilation service.

:mod:`repro.chaos.plan` draws a deterministic, wave-indexed schedule of
composed faults (worker kills, hangs, poison jobs, calibration drift
bursts, shared-memory unlinks, admission pressure);
:mod:`repro.chaos.runner` replays it against a live service next to a
fault-free twin and asserts end-to-end invariants (every admitted job
resolves or quarantines, payload byte-identity, exact cache counters,
epoch pinning, pool recovery, zero leaked segments);
:mod:`repro.chaos.selftest` proves the checker catches a planted
violation.  ``repro chaos`` and ``make chaos-smoke`` drive it from the
command line.
"""

from .plan import CHAOS_KINDS, ChaosEvent, ChaosPlan
from .runner import ChaosInvariantViolation, ChaosReport, ChaosRunner
from .selftest import SelfTestError, run_selftest

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosInvariantViolation",
    "ChaosReport",
    "ChaosRunner",
    "SelfTestError",
    "run_selftest",
]
