"""Seeded, replayable chaos schedules for the compilation service.

A :class:`ChaosPlan` composes the repository's existing fault
primitives — worker SIGKILL (PR 5/6 crash recovery), worker hangs
(``FaultPlan`` ``hang`` specs caught by the health watchdog),
poison jobs (repeat killers the service must quarantine), calibration
drift bursts (:class:`~repro.hardware.drift.DriftPlan`), shared-memory
segment unlinks (the zero-copy data plane losing a table) and
admission-pressure waves — into one deterministic schedule keyed on
*wave index*, not wall-clock time.  Wave-indexed scheduling is what
makes a chaos run replayable: the same seed produces the same events at
the same points of the same request stream no matter how fast the host
is, and the fault-free twin run the invariants compare against applies
its drift at the same wave boundaries so every epoch lines up.

Event kinds:

``kill``
    SIGKILL one live worker right after the wave is submitted (so the
    kill lands on an in-flight compute when there is one).
``hang``
    Decorate the wave's first request with a ``hang@0`` fault: the
    worker wedges mid-compute until the watchdog's heartbeat budget
    expires and it is killed and recovered.
``poison``
    Decorate the wave's first request as a repeat-killer
    (``kill@0xN`` with ``N >= max_job_attempts``): the service must
    quarantine it instead of feeding it workers forever.
``drift``
    Apply ``count`` calibration deltas from the plan's
    :class:`DriftPlan` after the wave is gathered (epoch bump; jobs
    admitted later compile under the new key, pinned jobs do not).
``unlink``
    Unlink one published zero-copy prewarm segment after the wave
    (respawned workers must fall back to local rebuilds).
``pressure``
    Multiply the wave's size by ``count`` and submit it as one burst —
    the admission-control stress case.

``hang`` and ``poison`` waves lead with a *fresh* circuit (outside the
repeated corpus) so the decorated request is guaranteed to be a cache
miss — a fault spec on a cache hit would never fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hardware import resolve_device
from ..hardware.drift import DriftPlan

__all__ = ["CHAOS_KINDS", "ChaosEvent", "ChaosPlan"]

CHAOS_KINDS = ("kill", "hang", "poison", "drift", "unlink", "pressure")

#: Kinds that decorate a wave's requests at generation time (the other
#: kinds are actions the runner fires against the live service).
_DECORATION_KINDS = ("hang", "poison")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled event, keyed by the wave it belongs to."""

    wave: int
    kind: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r} (use one of {CHAOS_KINDS})"
            )
        if self.wave < 0 or self.count < 1:
            raise ValueError("ChaosEvent wave must be >= 0 and count >= 1")


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic composed-fault schedule (pure data, picklable)."""

    seed: int
    waves: int
    wave_size: int
    events: Tuple[ChaosEvent, ...] = ()
    drift: Optional[DriftPlan] = None
    #: ``kill@0x{poison_attempts}`` is the poison decoration; keep it at
    #: least the service's ``max_job_attempts`` or the "poison" job
    #: stops killing workers before quarantine triggers.
    poison_attempts: int = 8

    @classmethod
    def generate(
        cls,
        device: str = "surface7",
        seed: int = 2022,
        waves: int = 12,
        wave_size: int = 6,
        kills: int = 2,
        hangs: int = 1,
        poisons: int = 1,
        drifts: int = 1,
        unlinks: int = 1,
        pressures: int = 1,
        drift_burst: int = 3,
        poison_attempts: int = 8,
    ) -> "ChaosPlan":
        """Draw a schedule with the requested event minimums.

        Decoration events (``hang``/``poison``) get *distinct* waves —
        one decorated request per wave keeps attribution unambiguous —
        while action events may share waves.  Everything is drawn from
        one seeded generator, so the same arguments always produce the
        same schedule.
        """
        if waves < 1:
            raise ValueError("a chaos plan needs at least one wave")
        decorations = hangs + poisons
        if decorations > waves:
            raise ValueError(
                f"{decorations} hang/poison events need {decorations} "
                f"distinct waves but the plan only has {waves}"
            )
        rng = np.random.default_rng((int(seed), 0xC4A05))
        events: List[ChaosEvent] = []
        decorated = rng.choice(waves, size=decorations, replace=False)
        hang_waves = {int(w) for w in decorated[:hangs]}
        for offset in range(hangs):
            events.append(ChaosEvent(int(decorated[offset]), "hang"))
        for offset in range(poisons):
            events.append(ChaosEvent(int(decorated[hangs + offset]), "poison"))
        # Kills never share a wave with a hang: an injected SIGKILL can
        # land on the (alive but wedged) hung worker, turning the hang
        # into a crash and leaving the watchdog nothing to detect.
        kill_waves = [w for w in range(waves) if w not in hang_waves]
        if kills and not kill_waves:
            raise ValueError(
                "every wave carries a hang decoration; no wave left to "
                "schedule kills on"
            )
        for _ in range(kills):
            events.append(
                ChaosEvent(int(kill_waves[rng.integers(len(kill_waves))]), "kill")
            )
        for _ in range(drifts):
            events.append(
                ChaosEvent(int(rng.integers(waves)), "drift", count=drift_burst)
            )
        for _ in range(unlinks):
            events.append(ChaosEvent(int(rng.integers(waves)), "unlink"))
        for _ in range(pressures):
            events.append(
                ChaosEvent(int(rng.integers(waves)), "pressure", count=3)
            )
        events.sort(key=lambda e: (e.wave, CHAOS_KINDS.index(e.kind), e.count))
        drift_plan = None
        if drifts:
            drift_plan = DriftPlan.generate(
                resolve_device(device), drifts * drift_burst, seed=seed
            )
        return cls(
            seed=int(seed),
            waves=waves,
            wave_size=wave_size,
            events=tuple(events),
            drift=drift_plan,
            poison_attempts=poison_attempts,
        )

    # ------------------------------------------------------------------
    def events_at(
        self, wave: int, kinds: Optional[Sequence[str]] = None
    ) -> List[ChaosEvent]:
        """Events scheduled for one wave, optionally filtered by kind."""
        return [
            event
            for event in self.events
            if event.wave == wave and (kinds is None or event.kind in kinds)
        ]

    def decoration(self, wave: int) -> Optional[ChaosEvent]:
        """The hang/poison decoration of one wave (None when clean)."""
        marks = self.events_at(wave, _DECORATION_KINDS)
        return marks[0] if marks else None

    def counts(self) -> dict:
        """Planned events by kind (drift counts *deltas*, not bursts)."""
        tally = {kind: 0 for kind in CHAOS_KINDS}
        for event in self.events:
            tally[event.kind] += event.count if event.kind == "drift" else 1
        return tally

    def describe(self) -> str:
        if not self.events:
            return "no chaos events"
        return ",".join(
            f"{e.kind}@w{e.wave}" + (f"x{e.count}" if e.count != 1 else "")
            for e in self.events
        )
