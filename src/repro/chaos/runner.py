"""Drive a :class:`ChaosPlan` against a live service and prove it sane.

The runner makes chaos *falsifiable*.  It first answers the exact same
request stream with a fault-free twin (an inline ``workers=0`` service,
drift applied at the same wave boundaries so every epoch lines up),
then replays the stream against a pooled service while firing the
plan's events — and checks end-to-end invariants after every wave:

1. **Resolution** — every admitted job resolves, or is quarantined
   with a recorded reason (poison jobs *must* quarantine; nothing else
   may fail).
2. **Byte identity** — every resolved payload is byte-identical to the
   twin's payload for the same request index: kills, hangs, respawns,
   segment unlinks and admission pressure may cost latency, never
   bytes.
3. **Exact counters** — ``cache hits + misses == admitted requests``
   at every wave boundary (each admitted job does exactly one lookup).
4. **Epoch pinning** — the calibration digest embedded in a payload
   equals the digest recorded for the job's *admission* epoch, never a
   later one, and the chaos run's per-epoch digests match the twin's.
5. **Worker recovery** — after kills and watchdog hang-kills the pool
   returns to full strength within a bounded window.
6. **No leaks** — after shutdown this process owns zero shared-memory
   segments and ``/dev/shm`` holds nothing new.

A planted-violation self-test (:mod:`repro.chaos.selftest`) proves the
checker itself can fail: a deliberately corrupted twin payload must be
reported, or the harness is vacuous.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, List, Optional, Tuple

from ..runtime import shm
from ..service import (
    AdmissionError,
    CompilationService,
    CompileRequest,
    PRIORITY_CLASSES,
    ServiceError,
)
from ..service.loadgen import build_corpus
from ..workloads import random_circuit
from .plan import ChaosPlan

__all__ = ["ChaosInvariantViolation", "ChaosReport", "ChaosRunner"]


class ChaosInvariantViolation(AssertionError):
    """At least one end-to-end invariant failed under the chaos plan."""


@dataclass(frozen=True)
class _Slot:
    """One request of the stream: the chaos copy carries the fault
    decoration, the twin copy is the same request with faults stripped."""

    index: int
    wave: int
    chaos: CompileRequest
    twin: CompileRequest
    mark: Optional[str] = None  # "hang" | "poison" | None


@dataclass
class ChaosReport:
    """What one chaos run did and whether the invariants held."""

    seed: int = 0
    waves: int = 0
    wave_size: int = 0
    workers: int = 0
    zero_copy: bool = False
    events: str = ""
    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    resolved: int = 0
    quarantined: int = 0
    expected_quarantined: int = 0
    kills_injected: int = 0
    hangs_planted: int = 0
    hangs_detected: int = 0
    respawns: Dict[str, int] = field(default_factory=dict)
    drift_updates: int = 0
    unlinked_segments: int = 0
    checks: int = 0
    violations: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    twin_wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "waves": self.waves,
            "wave_size": self.wave_size,
            "workers": self.workers,
            "zero_copy": self.zero_copy,
            "events": self.events,
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "resolved": self.resolved,
            "quarantined": self.quarantined,
            "expected_quarantined": self.expected_quarantined,
            "kills_injected": self.kills_injected,
            "hangs_planted": self.hangs_planted,
            "hangs_detected": self.hangs_detected,
            "respawns": dict(self.respawns),
            "drift_updates": self.drift_updates,
            "unlinked_segments": self.unlinked_segments,
            "invariant_checks": self.checks,
            "violations": list(self.violations),
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
            "twin_wall_s": round(self.twin_wall_s, 3),
        }

    def format(self) -> str:
        lines = [
            f"chaos soak: seed {self.seed}, {self.waves} waves x "
            f"{self.wave_size}, workers={self.workers}, "
            f"zero_copy={self.zero_copy}",
            f"events:     {self.events}",
            f"requests:   {self.requests} ({self.admitted} admitted, "
            f"{self.rejected} rejected, {self.resolved} resolved, "
            f"{self.quarantined} quarantined)",
            f"faults:     {self.kills_injected} kills, "
            f"{self.hangs_detected}/{self.hangs_planted} hangs detected, "
            f"{self.drift_updates} drift updates, "
            f"{self.unlinked_segments} segments unlinked, "
            f"respawns {self.respawns}",
            f"invariants: {self.checks} checks, "
            f"{len(self.violations)} violations "
            f"({'OK' if self.ok else 'FAILED'}), "
            f"wall {self.wall_s:.2f}s (twin {self.twin_wall_s:.2f}s)",
        ]
        lines.extend(f"  violation: {v}" for v in self.violations)
        return "\n".join(lines)


class ChaosRunner:
    """Replay one plan against a live service, invariants attached."""

    def __init__(
        self,
        plan: ChaosPlan,
        device: str = "surface7",
        workers: int = 2,
        mapper: str = "sabre",
        corpus_size: int = 8,
        corpus_seed: int = 7,
        stream_seed: int = 11,
        heartbeat_budget_s: float = 1.0,
        max_job_attempts: int = 2,
        zero_copy: Optional[bool] = None,
        timeout_s: float = 120.0,
        respawn_window_s: float = 20.0,
        raise_on_violation: bool = True,
        _tamper_wave: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("the chaos runner needs a pooled service")
        if plan.poison_attempts < max_job_attempts:
            raise ValueError(
                "plan.poison_attempts must be >= max_job_attempts or the "
                "poison job stops killing workers before quarantine"
            )
        self.plan = plan
        self.device = device
        self.workers = workers
        self.mapper = mapper
        self.corpus_size = corpus_size
        self.corpus_seed = corpus_seed
        self.stream_seed = stream_seed
        self.heartbeat_budget_s = heartbeat_budget_s
        self.max_job_attempts = max_job_attempts
        self.zero_copy = (
            shm.is_available() if zero_copy is None else bool(zero_copy)
        )
        self.timeout_s = timeout_s
        self.respawn_window_s = respawn_window_s
        self.raise_on_violation = raise_on_violation
        #: Self-test hook: corrupt the twin payload of this wave's first
        #: request before comparing, proving the checker catches lies.
        self._tamper_wave = _tamper_wave

    # -- stream --------------------------------------------------------
    def _build_waves(self) -> List[List[_Slot]]:
        corpus = build_corpus(self.corpus_size, seed=self.corpus_seed)
        rng = Random(self.stream_seed)
        waves: List[List[_Slot]] = []
        index = 0
        for wave_no in range(self.plan.waves):
            size = self.plan.wave_size
            for event in self.plan.events_at(wave_no, ("pressure",)):
                size *= event.count
            decoration = self.plan.decoration(wave_no)
            slots: List[_Slot] = []
            for position in range(size):
                if position == 0 and decoration is not None:
                    # Fresh circuit => guaranteed cache miss => the
                    # decorated fault always reaches a real compute.
                    circuit = random_circuit(
                        5, 30, 0.5, seed=self.plan.seed * 7919 + wave_no
                    )
                    priority = "interactive"
                    faults = (
                        "hang@0"
                        if decoration.kind == "hang"
                        else f"kill@0x{self.plan.poison_attempts}"
                    )
                    mark = decoration.kind
                else:
                    circuit = corpus[rng.randrange(len(corpus))]
                    priority = PRIORITY_CLASSES[
                        rng.randrange(len(PRIORITY_CLASSES))
                    ]
                    faults = ""
                    mark = None
                chaos_request = CompileRequest(
                    circuit=circuit,
                    device=self.device,
                    mapper=self.mapper,
                    priority=priority,
                    faults=faults,
                )
                slots.append(
                    _Slot(
                        index=index,
                        wave=wave_no,
                        chaos=chaos_request,
                        twin=replace(chaos_request, faults=""),
                        mark=mark,
                    )
                )
                index += 1
            waves.append(slots)
        return waves

    def _apply_wave_drift(
        self, service: CompilationService, wave_no: int, cursor: int,
        digests: Dict[int, str],
    ) -> int:
        """Apply this wave's drift deltas; records digest per epoch."""
        assert self.plan.drift is not None or not self.plan.events_at(
            wave_no, ("drift",)
        )
        for event in self.plan.events_at(wave_no, ("drift",)):
            for _ in range(event.count):
                service.apply_drift(
                    self.plan.drift.updates[cursor], device=self.device
                )
                cursor += 1
                digests[service.calibration_epoch(self.device)] = (
                    service.calibration_digest(self.device)
                )
        return cursor

    # -- twin ----------------------------------------------------------
    def _twin_run(
        self, waves: List[List[_Slot]]
    ) -> Tuple[Dict[int, bytes], Dict[int, str], float]:
        start = time.perf_counter()
        payloads: Dict[int, bytes] = {}
        digests: Dict[int, str] = {}
        with CompilationService(
            workers=0, devices=(self.device,)
        ) as twin:
            digests[0] = twin.calibration_digest(self.device)
            cursor = 0
            for wave_no, slots in enumerate(waves):
                jobs = [(slot, twin.submit(slot.twin)) for slot in slots]
                for slot, job in jobs:
                    payloads[slot.index] = job.result(
                        timeout=self.timeout_s
                    ).payload
                cursor = self._apply_wave_drift(
                    twin, wave_no, cursor, digests
                )
        return payloads, digests, time.perf_counter() - start

    # -- chaos ---------------------------------------------------------
    def run(self) -> ChaosReport:
        waves = self._build_waves()
        report = ChaosReport(
            seed=self.plan.seed,
            waves=self.plan.waves,
            wave_size=self.plan.wave_size,
            workers=self.workers,
            zero_copy=self.zero_copy,
            events=self.plan.describe(),
            requests=sum(len(slots) for slots in waves),
            hangs_planted=self.plan.counts()["hang"],
            expected_quarantined=self.plan.counts()["poison"],
        )
        twin_payloads, twin_digests, report.twin_wall_s = self._twin_run(waves)
        start = time.perf_counter()
        leaked_before = set(shm.leaked_segments())
        digests: Dict[int, str] = {}
        service = CompilationService(
            workers=self.workers,
            devices=(self.device,),
            zero_copy=self.zero_copy,
            heartbeat_budget_s=self.heartbeat_budget_s,
            max_job_attempts=self.max_job_attempts,
        )
        service.start()
        try:
            digests[0] = service.calibration_digest(self.device)
            cursor = 0
            for wave_no, slots in enumerate(waves):
                respawns_before = sum(service.respawns_total.values())
                kills_this_wave = 0
                pending = []
                for slot in slots:
                    try:
                        pending.append((slot, service.submit(slot.chaos)))
                    except AdmissionError:
                        report.rejected += 1
                for event in self.plan.events_at(wave_no, ("kill",)):
                    for _ in range(event.count):
                        if service.inject_worker_kill() is not None:
                            report.kills_injected += 1
                            kills_this_wave += 1
                self._gather_and_check(
                    report, service, wave_no, pending, twin_payloads, digests
                )
                cursor = self._apply_wave_drift(
                    service, wave_no, cursor, digests
                )
                for event in self.plan.events_at(wave_no, ("unlink",)):
                    for _ in range(event.count):
                        if service.inject_shm_unlink() is not None:
                            report.unlinked_segments += 1
                self._check_pool_recovered(
                    report, service, wave_no,
                    min_respawns=respawns_before + kills_this_wave,
                )
            self._check_final(report, service, digests, twin_digests)
        finally:
            if service._running:  # noqa: SLF001 - drain() may have stopped it
                service.stop()
        self._check_no_leaks(report, leaked_before)
        report.wall_s = time.perf_counter() - start
        if report.violations and self.raise_on_violation:
            raise ChaosInvariantViolation(
                f"{len(report.violations)} invariant violations:\n"
                + "\n".join(report.violations)
            )
        return report

    # -- invariants ----------------------------------------------------
    def _violate(self, report: ChaosReport, message: str) -> None:
        report.violations.append(message)

    def _gather_and_check(
        self,
        report: ChaosReport,
        service: CompilationService,
        wave_no: int,
        pending,
        twin_payloads: Dict[int, bytes],
        digests: Dict[int, str],
    ) -> None:
        tampered = self._tamper_wave == wave_no
        for slot, job in pending:
            try:
                response = job.result(timeout=self.timeout_s)
            except ServiceError as exc:
                if slot.mark == "poison" and job.quarantined:
                    report.quarantined += 1
                    report.checks += 1
                    if "quarantined" not in str(exc):
                        self._violate(
                            report,
                            f"wave {wave_no} request {slot.index}: "
                            f"quarantine error lacks a reason: {exc}",
                        )
                else:
                    self._violate(
                        report,
                        f"wave {wave_no} request {slot.index} "
                        f"(mark={slot.mark}): admitted job neither "
                        f"resolved nor quarantined: {exc}",
                    )
                continue
            report.resolved += 1
            if slot.mark == "poison":
                self._violate(
                    report,
                    f"wave {wave_no} request {slot.index}: poison job "
                    "resolved instead of being quarantined",
                )
                continue
            expected = twin_payloads[slot.index]
            if tampered:
                expected = bytes([expected[0] ^ 0xFF]) + expected[1:]
                tampered = False  # corrupt exactly one comparison
            report.checks += 1
            if response.payload != expected:
                self._violate(
                    report,
                    f"wave {wave_no} request {slot.index}: payload not "
                    "byte-identical to the fault-free twin "
                    f"(served_by={response.served_by})",
                )
            report.checks += 1
            embedded = json.loads(response.payload)["key"]["calibration"]
            pinned = digests.get(job.epoch)
            if pinned is None or embedded != pinned:
                self._violate(
                    report,
                    f"wave {wave_no} request {slot.index}: epoch pinning "
                    f"broken (admitted at epoch {job.epoch}, payload "
                    f"digest {embedded!r} vs recorded {pinned!r})",
                )
        # Exact-counter invariant: all admitted jobs have resolved (or
        # terminally failed), so lookups must equal admissions exactly.
        cache = service.cache.stats()
        report.checks += 1
        if cache["hits"] + cache["misses"] != service.requests_total:
            self._violate(
                report,
                f"wave {wave_no}: cache hits+misses "
                f"({cache['hits']}+{cache['misses']}) != admitted "
                f"requests ({service.requests_total})",
            )

    def _check_pool_recovered(
        self,
        report: ChaosReport,
        service: CompilationService,
        wave_no: int,
        min_respawns: int = 0,
    ) -> None:
        # SIGKILL delivery is asynchronous: right after an injected kill
        # the victim can still read as alive, so "pool is full strength"
        # alone would pass vacuously.  Also require the respawn counter
        # to have advanced past every kill fired this wave.
        deadline = time.monotonic() + self.respawn_window_s
        while time.monotonic() < deadline:
            if (
                service.alive_workers() >= self.workers
                and sum(service.respawns_total.values()) >= min_respawns
            ):
                report.checks += 1
                return
            time.sleep(0.05)
        self._violate(
            report,
            f"wave {wave_no}: pool not back to {self.workers} live "
            f"workers with >= {min_respawns} respawns within "
            f"{self.respawn_window_s}s (alive={service.alive_workers()}, "
            f"respawns={dict(service.respawns_total)})",
        )

    def _check_final(
        self,
        report: ChaosReport,
        service: CompilationService,
        digests: Dict[int, str],
        twin_digests: Dict[int, str],
    ) -> None:
        stats = service.stats()
        report.admitted = service.requests_total
        report.quarantined = service.quarantined_total
        report.hangs_detected = service.hangs_total
        report.respawns = dict(service.respawns_total)
        report.drift_updates = stats["drift"]["updates"]
        report.checks += 1
        if service.quarantined_total != report.expected_quarantined:
            self._violate(
                report,
                f"quarantined {service.quarantined_total} jobs, expected "
                f"exactly {report.expected_quarantined} (the planted "
                "poison jobs)",
            )
        for entry in stats["quarantine"]["jobs"]:
            report.checks += 1
            if not entry.get("reason") or not entry.get("attempts"):
                self._violate(
                    report,
                    f"quarantine entry for seq {entry.get('seq')} lacks "
                    "a reason or attempt history",
                )
        report.checks += 1
        if service.hangs_total != report.hangs_planted:
            self._violate(
                report,
                f"watchdog detected {service.hangs_total} hangs, "
                f"planted {report.hangs_planted}",
            )
        report.checks += 1
        if digests != twin_digests:
            self._violate(
                report,
                "per-epoch calibration digests diverged between the "
                f"chaos run ({digests}) and the twin ({twin_digests})",
            )

    def _check_no_leaks(
        self, report: ChaosReport, leaked_before: set
    ) -> None:
        report.checks += 1
        owned = shm.created_segments()
        if owned:
            self._violate(
                report,
                f"service shutdown left {len(owned)} owned shm segments "
                f"alive: {owned}",
            )
        fresh = set(shm.leaked_segments()) - leaked_before
        report.checks += 1
        if fresh:
            self._violate(
                report,
                f"chaos run leaked {len(fresh)} segments into /dev/shm: "
                f"{sorted(fresh)}",
            )
