"""Planted-violation self-test: prove the chaos checker can fail.

A chaos harness whose invariants never fire is indistinguishable from
one that checks nothing.  Before trusting a green soak, run a tiny
fault-free plan with the runner's tamper hook armed: the hook corrupts
one byte of the twin's expected payload right before comparison, so the
byte-identity invariant *must* report a violation.  If the report comes
back clean, the checker itself is broken and every other green result
is meaningless — ``make chaos-smoke`` runs this first for exactly that
reason.
"""

from __future__ import annotations

from .plan import ChaosPlan
from .runner import ChaosReport, ChaosRunner

__all__ = ["SelfTestError", "run_selftest"]

_TAMPER_WAVE = 1


class SelfTestError(AssertionError):
    """The checker failed to report a deliberately planted violation."""


def run_selftest(
    device: str = "surface7", workers: int = 1, seed: int = 97
) -> ChaosReport:
    """Run a tiny tampered soak; raise unless the corruption is caught.

    Returns the (deliberately red) report so callers can show it.
    """
    plan = ChaosPlan.generate(
        device=device,
        seed=seed,
        waves=2,
        wave_size=2,
        kills=0,
        hangs=0,
        poisons=0,
        drifts=0,
        unlinks=0,
        pressures=0,
    )
    runner = ChaosRunner(
        plan,
        device=device,
        workers=workers,
        raise_on_violation=False,
        _tamper_wave=_TAMPER_WAVE,
    )
    report = runner.run()
    caught = [
        violation
        for violation in report.violations
        if "byte-identical" in violation
    ]
    if not caught:
        raise SelfTestError(
            "planted payload corruption was NOT reported — the chaos "
            f"checker is vacuous (violations: {report.violations})"
        )
    if len(report.violations) != len(caught):
        raise SelfTestError(
            "self-test run reported unrelated violations besides the "
            f"planted one: {report.violations}"
        )
    return report
