"""Preallocated workspaces for the batched simulator.

``run_batched`` applies each gate with ``np.tensordot``, which allocates
a fresh output tensor (plus an internal contiguous copy of the
transposed state) per contraction.  For the oracle's traffic shape —
thousands of small batched runs — those allocations are a measurable
fraction of the runtime.  :class:`Workspace` owns exactly two flat
complex buffers and the gate loop ping-pongs between them:

1. the current state lives in buffer **A** as a (possibly strided)
   axis-permuted view;
2. applying a gate transpose-copies the state's contracted-axes-first
   permutation into buffer **B** (the same contiguous copy ``tensordot``
   makes internally, into reused memory);
3. one ``np.dot(matrix, B_2d, out=A_2d)`` writes the contraction result
   straight back over **A** — no temporary output tensor;
4. the new state is a ``moveaxis`` view of **A**, exactly mirroring what
   ``tensordot`` + ``moveaxis`` produce on the legacy path.

Because the contiguous inputs fed to ``np.dot`` are bitwise equal to the
ones ``tensordot`` builds internally, the workspace path is **bit-for-
bit identical** to the legacy path — the fuzz invariant bank pairs the
two as differential twins, and ``tests/test_sim_batched.py`` pins exact
equality.

A workspace is scratch, not state: it holds no result the caller needs,
is safe to reuse across circuits of any width/batch (buffers grow
monotonically, never shrink), and deliberately refuses to be pickled —
share one per worker process, not per payload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Two reusable flat complex buffers for batched gate application."""

    __slots__ = ("_state", "_scratch")

    def __init__(self) -> None:
        self._state: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None

    def __reduce__(self):
        raise TypeError(
            "Workspace is per-process scratch memory and cannot be "
            "pickled; create one in each worker instead of shipping it"
        )

    @property
    def capacity(self) -> int:
        """Current buffer size in complex128 elements (0 before use)."""
        return 0 if self._state is None else self._state.size

    def _ensure(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Grow both buffers to hold ``size`` amplitudes; never shrinks."""
        if self._state is None or self._state.size < size:
            self._state = np.empty(size, dtype=complex)
            self._scratch = np.empty(size, dtype=complex)
        return self._state, self._scratch

    def apply_operations(
        self,
        states: np.ndarray,
        operations: Sequence[Tuple[np.ndarray, Sequence[int]]],
        offset: int = 1,
    ) -> np.ndarray:
        """Run ``(matrix, qubits)`` operations over a state (batch) tensor.

        ``offset`` maps qubit ``q`` to tensor axis ``q + offset`` (1 for
        batched states with the batch on axis 0, matching
        ``repro.sim.statevector._apply_matrix``).  Returns a fresh
        C-contiguous array — never a view of the workspace, so the
        result survives the next reuse.
        """
        size = states.size
        shape = states.shape
        ndim = states.ndim
        buf_state, buf_scratch = self._ensure(size)
        current = buf_state[:size].reshape(shape)
        np.copyto(current, states)
        for matrix, qubits in operations:
            k = len(qubits)
            dim = 1 << k
            rest = size // dim
            axes = [q + offset for q in qubits]
            notin = [axis for axis in range(ndim) if axis not in axes]
            # The exact contiguous operand tensordot builds internally:
            # contracted axes first, remaining axes in increasing order.
            src = current.transpose(axes + notin)
            np.copyto(buf_scratch[:size].reshape(src.shape), src)
            operand = buf_scratch[:size].reshape(dim, rest)
            out = buf_state[:size].reshape(dim, rest)
            np.dot(matrix.reshape(dim, dim), operand, out=out)
            moved = out.reshape(
                (2,) * k + tuple(shape[axis] for axis in notin)
            )
            current = np.moveaxis(moved, range(k), axes)
        return current.copy()
