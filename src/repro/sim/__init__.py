"""State-vector simulation and equivalence checking (the compiler oracle)."""

from .statevector import (
    Simulator,
    SimulationResult,
    Workspace,
    apply_gate,
    apply_gate_batched,
    basis_state,
    fused_operations,
    probabilities,
    random_product_state,
    random_product_states,
    run_batched,
    sample_counts,
    statevector,
    zero_state,
)
from .unitary import circuit_unitary, permutation_unitary
from .equivalence import (
    allclose_up_to_global_phase,
    circuits_equivalent,
    states_equivalent,
    verify_mapping,
    verify_mapping_twin,
)
from .noisy import NoisySimulator, SuccessRateEstimate, estimate_success_rate
from .density import (
    DensityMatrixSimulator,
    amplitude_damping_kraus,
    channel_fidelity,
    depolarizing_kraus,
    phase_damping_kraus,
    state_fidelity,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "Workspace",
    "apply_gate",
    "apply_gate_batched",
    "basis_state",
    "fused_operations",
    "probabilities",
    "random_product_state",
    "random_product_states",
    "run_batched",
    "sample_counts",
    "statevector",
    "zero_state",
    "circuit_unitary",
    "permutation_unitary",
    "allclose_up_to_global_phase",
    "circuits_equivalent",
    "states_equivalent",
    "verify_mapping",
    "verify_mapping_twin",
    "NoisySimulator",
    "SuccessRateEstimate",
    "estimate_success_rate",
    "DensityMatrixSimulator",
    "amplitude_damping_kraus",
    "channel_fidelity",
    "depolarizing_kraus",
    "phase_damping_kraus",
    "state_fidelity",
]
