"""Density-matrix simulation with Kraus noise channels.

Completes the noise-modelling ladder: the paper's gate-fidelity *product*
(Fig. 3) is a closed-form proxy, :mod:`repro.sim.noisy` samples Pauli
trajectories, and this module evolves the exact density matrix through
Kraus channels — the ground truth both of the others approximate, for
registers small enough to hold a ``4^n`` state.

Supported channels: depolarizing (matched to the calibration's gate
error rates), amplitude damping (T1) and phase damping (T2).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import gate_matrix
from ..hardware.calibration import Calibration, SURFACE17_CALIBRATION
from .statevector import statevector

__all__ = [
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "DensityMatrixSimulator",
    "channel_fidelity",
    "state_fidelity",
]

_MAX_QUBITS = 10

_PAULI_1Q = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.diag([1.0, -1.0]).astype(complex),
}


def depolarizing_kraus(probability: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarizing channel.

    With probability ``p`` one of the ``4^n - 1`` non-identity Pauli
    strings is applied uniformly.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if num_qubits not in (1, 2):
        raise ValueError("depolarizing channel supported on 1 or 2 qubits")
    labels = list(_PAULI_1Q)
    strings: List[np.ndarray] = []
    if num_qubits == 1:
        strings = [_PAULI_1Q[l] for l in labels]
    else:
        for a in labels:
            for b in labels:
                strings.append(np.kron(_PAULI_1Q[a], _PAULI_1Q[b]))
    non_identity = strings[1:]
    kraus = [math.sqrt(1.0 - probability) * strings[0]]
    weight = math.sqrt(probability / len(non_identity)) if probability else 0.0
    kraus.extend(weight * s for s in non_identity)
    return kraus


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """T1 relaxation channel (|1> decays to |0> with probability gamma)."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Pure dephasing channel (coherences shrink by sqrt(1 - lambda))."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


# ---------------------------------------------------------------------------

def _apply_operator(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Compute ``M rho M^dagger`` on the given qubits of a state tensor.

    ``rho`` has ``2n`` axes: row (ket) axes ``0..n-1`` and column (bra)
    axes ``n..2n-1``.
    """
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    # Left multiply on the ket axes.
    rho = np.tensordot(tensor, rho, axes=(list(range(k, 2 * k)), list(qubits)))
    rho = np.moveaxis(rho, range(k), qubits)
    # Right multiply by M^dagger on the bra axes: contract the bra axes
    # with conj(M)'s input axes.
    col_axes = [n + q for q in qubits]
    rho = np.tensordot(rho, tensor.conj(), axes=(col_axes, list(range(k, 2 * k))))
    # tensordot appended the new bra axes at the end; move them back.
    return np.moveaxis(rho, range(2 * n - k, 2 * n), col_axes)


def _apply_channel(
    rho: np.ndarray, kraus: Iterable[np.ndarray], qubits: Sequence[int], n: int
) -> np.ndarray:
    total = None
    for operator in kraus:
        term = _apply_operator(rho, operator, qubits, n)
        total = term if total is None else total + term
    return total


class DensityMatrixSimulator:
    """Exact open-system evolution under per-gate depolarizing noise.

    After every unitary gate, a depolarizing channel with the
    calibration's error probability acts on the gate's qubits.  Custom
    channels can be injected with :meth:`apply_channel`.
    """

    def __init__(
        self, calibration: Calibration = SURFACE17_CALIBRATION
    ) -> None:
        self.calibration = calibration

    def run(
        self, circuit: Circuit, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evolve ``|0..0><0..0|`` (or ``initial``) through the circuit.

        Returns the final density matrix, shape ``(2^n, 2^n)``.
        """
        n = circuit.num_qubits
        if n > _MAX_QUBITS:
            raise ValueError(
                f"density simulation limited to {_MAX_QUBITS} qubits"
            )
        if any(g.name in ("measure", "reset") for g in circuit):
            raise ValueError("strip measurements before density simulation")
        dim = 2 ** n
        if initial is None:
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
        else:
            rho = np.asarray(initial, dtype=complex).reshape(dim, dim).copy()
        tensor = rho.reshape((2,) * (2 * n))
        for gate in circuit:
            if gate.name == "barrier":
                continue
            tensor = _apply_operator(
                tensor, gate_matrix(gate), gate.qubits, n
            )
            error = self.calibration.gate_error(gate)
            if error > 0 and gate.num_qubits in (1, 2):
                tensor = _apply_channel(
                    tensor,
                    depolarizing_kraus(error, gate.num_qubits),
                    gate.qubits,
                    n,
                )
        return tensor.reshape(dim, dim)

    @staticmethod
    def apply_channel(
        rho: np.ndarray, kraus: Iterable[np.ndarray], qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply an explicit Kraus channel to a density matrix."""
        dim = rho.shape[0]
        n = dim.bit_length() - 1
        tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * n))
        tensor = _apply_channel(tensor, kraus, qubits, n)
        return tensor.reshape(dim, dim)


def state_fidelity(rho: np.ndarray, psi: np.ndarray) -> float:
    """``<psi| rho |psi>`` for a pure reference state."""
    psi = np.asarray(psi, dtype=complex).reshape(-1)
    return float(np.real(psi.conj() @ np.asarray(rho) @ psi))


def channel_fidelity(
    circuit: Circuit, calibration: Calibration = SURFACE17_CALIBRATION
) -> float:
    """Exact noisy-output fidelity with the ideal final state.

    The quantity the paper's gate-fidelity product estimates and
    :func:`repro.sim.noisy.estimate_success_rate` samples.
    """
    unitary_part = circuit.without_directives()
    ideal = statevector(unitary_part).reshape(-1)
    rho = DensityMatrixSimulator(calibration).run(unitary_part)
    return state_fidelity(rho, ideal)
