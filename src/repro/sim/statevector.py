"""Dense state-vector simulator.

Used as the library's *oracle*: compiler passes are validated by checking
that compiled circuits act on states exactly like their inputs (up to the
qubit permutation that mapping introduces).  The simulator is a plain
numpy implementation; it comfortably handles the <= 20 qubit circuits the
test-suite and equivalence checks use.

State convention: the state of an ``n``-qubit register is an ``ndarray``
of shape ``(2,) * n`` where axis ``i`` is qubit ``i`` and axis index 0/1
is the computational value.  Qubit 0 is the most significant bit of the
flattened amplitude index, matching the gate-matrix convention in
:mod:`repro.circuit.gates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import Gate, gate_matrix

__all__ = [
    "zero_state",
    "basis_state",
    "random_product_state",
    "apply_gate",
    "Simulator",
    "SimulationResult",
    "statevector",
    "probabilities",
    "sample_counts",
]

_MAX_QUBITS = 26


def _check_width(num_qubits: int) -> None:
    if num_qubits > _MAX_QUBITS:
        raise ValueError(
            f"dense simulation of {num_qubits} qubits exceeds the "
            f"{_MAX_QUBITS}-qubit limit"
        )


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> as a ``(2,)*n`` tensor."""
    _check_width(num_qubits)
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[(0,) * num_qubits] = 1.0
    return state


def basis_state(num_qubits: int, bits: Sequence[int]) -> np.ndarray:
    """Computational basis state |bits[0] bits[1] ...>."""
    if len(bits) != num_qubits:
        raise ValueError("bit string length must equal qubit count")
    _check_width(num_qubits)
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[tuple(int(b) for b in bits)] = 1.0
    return state


def random_product_state(
    num_qubits: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Haar-random single-qubit states tensored together.

    Product inputs span the full space, so agreement of two unitaries on a
    handful of random product states certifies equality with overwhelming
    probability — this is what the mapping verifier exploits.
    """
    _check_width(num_qubits)
    rng = rng or np.random.default_rng()
    state = np.ones((), dtype=complex)
    for _ in range(num_qubits):
        amplitudes = rng.normal(size=2) + 1j * rng.normal(size=2)
        amplitudes /= np.linalg.norm(amplitudes)
        state = np.tensordot(state, amplitudes, axes=0)
    return state.reshape((2,) * num_qubits)


def apply_gate(state: np.ndarray, gate: Gate) -> np.ndarray:
    """Apply a unitary gate to a state tensor; returns a new tensor."""
    matrix = gate_matrix(gate)
    k = gate.num_qubits
    tensor = matrix.reshape((2,) * (2 * k))
    axes = list(gate.qubits)
    moved = np.tensordot(tensor, state, axes=(list(range(k, 2 * k)), axes))
    # tensordot placed the gate's output axes first; restore positions.
    return np.moveaxis(moved, range(k), axes)


@dataclass
class SimulationResult:
    """Final state plus classical record of a simulation run.

    Attributes
    ----------
    state:
        Final state tensor, shape ``(2,)*n``.
    measurements:
        For each measured qubit, the list of outcomes in program order.
    """

    state: np.ndarray
    measurements: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return self.state.ndim

    def amplitudes(self) -> np.ndarray:
        """Flat amplitude vector of length ``2**n`` (qubit 0 = MSB)."""
        return self.state.reshape(-1)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes()) ** 2

    def last_outcome(self, qubit: int) -> Optional[int]:
        outcomes = self.measurements.get(qubit)
        return outcomes[-1] if outcomes else None


class Simulator:
    """Stateful executor for circuits, with seeded measurement sampling.

    ``measure`` collapses the state and records the outcome; ``reset``
    measures then flips to |0> if needed; ``barrier`` is a no-op.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def run(
        self, circuit: Circuit, initial_state: Optional[np.ndarray] = None
    ) -> SimulationResult:
        _check_width(circuit.num_qubits)
        if initial_state is None:
            state = zero_state(circuit.num_qubits)
        else:
            state = np.asarray(initial_state, dtype=complex)
            if state.size != 2 ** circuit.num_qubits:
                raise ValueError("initial state has wrong dimension")
            state = state.reshape((2,) * circuit.num_qubits).copy()
        result = SimulationResult(state=state)
        for gate in circuit:
            if gate.name == "barrier":
                continue
            if gate.name == "measure":
                outcome, result.state = self._measure(result.state, gate.qubits[0])
                result.measurements.setdefault(gate.qubits[0], []).append(outcome)
                continue
            if gate.name == "reset":
                outcome, collapsed = self._measure(result.state, gate.qubits[0])
                if outcome == 1:
                    collapsed = apply_gate(collapsed, Gate("x", gate.qubits))
                result.state = collapsed
                continue
            result.state = apply_gate(result.state, gate)
        return result

    def _measure(self, state: np.ndarray, qubit: int) -> Tuple[int, np.ndarray]:
        moved = np.moveaxis(state, qubit, 0)
        p1 = float(np.sum(np.abs(moved[1]) ** 2))
        outcome = 1 if self._rng.random() < p1 else 0
        probability = p1 if outcome == 1 else 1.0 - p1
        if probability <= 0.0:  # numerical guard; pick the certain branch
            outcome = 1 - outcome
            probability = 1.0 - probability
        collapsed = np.zeros_like(moved)
        collapsed[outcome] = moved[outcome] / math.sqrt(probability)
        return outcome, np.moveaxis(collapsed, 0, qubit)


def statevector(
    circuit: Circuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Final state of a measurement-free run of ``circuit`` from |0...0>.

    Raises
    ------
    ValueError
        If the circuit contains ``measure`` or ``reset`` (their outcomes
        are probabilistic; use :class:`Simulator` for those).
    """
    if any(g.name in ("measure", "reset") for g in circuit):
        raise ValueError("statevector() requires a measurement-free circuit")
    return Simulator(seed=0).run(circuit, initial_state).state


def probabilities(circuit: Circuit) -> np.ndarray:
    """Measurement probabilities of the final state (length ``2**n``)."""
    return np.abs(statevector(circuit).reshape(-1)) ** 2


def sample_counts(
    circuit: Circuit, shots: int, seed: Optional[int] = None
) -> Dict[str, int]:
    """Sample ``shots`` computational-basis outcomes of the final state.

    Returns a histogram keyed by bit strings (qubit 0 leftmost).
    """
    probs = probabilities(circuit.without_directives())
    rng = np.random.default_rng(seed)
    n = circuit.num_qubits
    outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        key = format(int(outcome), f"0{n}b") if n else ""
        counts[key] = counts.get(key, 0) + 1
    return counts
