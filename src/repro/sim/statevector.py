"""Dense state-vector simulator.

Used as the library's *oracle*: compiler passes are validated by checking
that compiled circuits act on states exactly like their inputs (up to the
qubit permutation that mapping introduces).  The simulator is a plain
numpy implementation; it comfortably handles the <= 20 qubit circuits the
test-suite and equivalence checks use.

State convention: the state of an ``n``-qubit register is an ``ndarray``
of shape ``(2,) * n`` where axis ``i`` is qubit ``i`` and axis index 0/1
is the computational value.  Qubit 0 is the most significant bit of the
flattened amplitude index, matching the gate-matrix convention in
:mod:`repro.circuit.gates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import Gate, gate_matrix
from .workspace import Workspace

__all__ = [
    "Workspace",
    "zero_state",
    "basis_state",
    "random_product_state",
    "random_product_states",
    "apply_gate",
    "apply_gate_batched",
    "fused_operations",
    "run_batched",
    "Simulator",
    "SimulationResult",
    "statevector",
    "probabilities",
    "sample_counts",
]

_MAX_QUBITS = 26


def _check_width(num_qubits: int) -> None:
    if num_qubits > _MAX_QUBITS:
        raise ValueError(
            f"dense simulation of {num_qubits} qubits exceeds the "
            f"{_MAX_QUBITS}-qubit limit"
        )


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> as a ``(2,)*n`` tensor."""
    _check_width(num_qubits)
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[(0,) * num_qubits] = 1.0
    return state


def basis_state(num_qubits: int, bits: Sequence[int]) -> np.ndarray:
    """Computational basis state |bits[0] bits[1] ...>."""
    if len(bits) != num_qubits:
        raise ValueError("bit string length must equal qubit count")
    _check_width(num_qubits)
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[tuple(int(b) for b in bits)] = 1.0
    return state


def random_product_state(
    num_qubits: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Haar-random single-qubit states tensored together.

    Product inputs span the full space, so agreement of two unitaries on a
    handful of random product states certifies equality with overwhelming
    probability — this is what the mapping verifier exploits.
    """
    _check_width(num_qubits)
    rng = rng or np.random.default_rng()
    state = np.ones((), dtype=complex)
    for _ in range(num_qubits):
        amplitudes = rng.normal(size=2) + 1j * rng.normal(size=2)
        amplitudes /= np.linalg.norm(amplitudes)
        state = np.tensordot(state, amplitudes, axes=0)
    return state.reshape((2,) * num_qubits)


def random_product_states(
    num_qubits: int,
    num_states: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A batch of Haar-random product states, shape ``(num_states, 2, ..., 2)``.

    Amplitudes are drawn in exactly the order ``num_states`` sequential
    calls to :func:`random_product_state` would draw them, so a seeded
    generator produces identical inputs for the batched and the serial
    verification paths.
    """
    if num_states < 1:
        raise ValueError(f"need at least one state, got {num_states}")
    _check_width(num_qubits)
    rng = rng or np.random.default_rng()
    states = np.empty((num_states,) + (2,) * num_qubits, dtype=complex)
    for index in range(num_states):
        states[index] = random_product_state(num_qubits, rng)
    return states


def _apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], offset: int
) -> np.ndarray:
    """Contract ``matrix`` into qubit axes ``offset + q`` of ``state``."""
    k = len(qubits)
    tensor = matrix.reshape((2,) * (2 * k))
    axes = [q + offset for q in qubits]
    moved = np.tensordot(tensor, state, axes=(list(range(k, 2 * k)), axes))
    # tensordot placed the gate's output axes first; restore positions.
    return np.moveaxis(moved, range(k), axes)


def apply_gate(state: np.ndarray, gate: Gate) -> np.ndarray:
    """Apply a unitary gate to a state tensor; returns a new tensor."""
    return _apply_matrix(state, gate_matrix(gate), gate.qubits, 0)


def apply_gate_batched(
    states: np.ndarray, gate: Gate, workspace: Optional[Workspace] = None
) -> np.ndarray:
    """Apply one gate to a batch of states (batch axis first).

    With a :class:`Workspace` the contraction reuses the workspace's
    preallocated buffers (``np.dot`` with ``out=``) instead of
    allocating fresh tensors; the result is bit-for-bit identical to
    the default path and is always a fresh array, never a workspace
    view.
    """
    if workspace is None:
        return _apply_matrix(states, gate_matrix(gate), gate.qubits, 1)
    return workspace.apply_operations(
        np.asarray(states, dtype=complex), [(gate_matrix(gate), gate.qubits)]
    )


def fused_operations(circuit: Circuit) -> List[Tuple[np.ndarray, Tuple[int, ...]]]:
    """Collapse runs of same-qubit single-qubit gates into one matrix each.

    Returns the circuit as a list of ``(matrix, qubits)`` applications in
    which every maximal run of adjacent single-qubit gates on one qubit
    (adjacent in the dependency sense: no intervening gate touches that
    qubit) is pre-multiplied into a single 2x2 matrix.  Multi-qubit gates
    pass through unchanged, so the fused list applies the exact same
    unitary with fewer (and never more) state-tensor contractions.

    Raises
    ------
    ValueError
        If the circuit contains directives (measure/reset/barrier); fuse
        after :meth:`~repro.circuit.Circuit.without_directives`.
    """
    operations: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    pending: Dict[int, np.ndarray] = {}
    for gate in circuit:
        if gate.is_directive:
            raise ValueError("gate fusion requires a directive-free circuit")
        if gate.num_qubits == 1:
            qubit = gate.qubits[0]
            matrix = gate_matrix(gate)
            held = pending.get(qubit)
            # Later gates multiply from the left: run g1;g2 has matrix M2@M1.
            pending[qubit] = matrix if held is None else matrix @ held
            continue
        for qubit in gate.qubits:
            held = pending.pop(qubit, None)
            if held is not None:
                operations.append((held, (qubit,)))
        operations.append((gate_matrix(gate), gate.qubits))
    for qubit, held in pending.items():
        operations.append((held, (qubit,)))
    return operations


def run_batched(
    circuit: Circuit,
    initial_states: np.ndarray,
    fuse: bool = True,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Run a batch of initial states through one measurement-free circuit.

    ``initial_states`` carries the batch on axis 0: shape ``(B, 2**n)`` or
    ``(B,) + (2,)*n``.  Every gate is applied to the whole batch in one
    tensor contraction, so the per-gate Python dispatch cost — what
    dominates serial oracle runs on the <= 14-qubit verification circuits
    — is paid once per circuit instead of once per trial.  With ``fuse``
    (the default) adjacent same-qubit single-qubit gates are merged by
    :func:`fused_operations` before simulation.

    ``workspace`` (default ``None``: the legacy allocating path) reuses
    a caller-owned :class:`Workspace`'s preallocated buffers for every
    contraction — bit-for-bit identical results with zero per-gate
    allocation; the fuzz invariant bank pairs the two paths as
    differential twins.

    Returns the final states, shape ``(B,) + (2,)*n``.

    Raises
    ------
    ValueError
        For ``measure``/``reset`` (their outcomes are probabilistic and
        cannot be batched; use :class:`Simulator` per state), or when the
        state batch has the wrong dimension.  Barriers are skipped.
    """
    _check_width(circuit.num_qubits)
    if any(g.name in ("measure", "reset") for g in circuit):
        raise ValueError("run_batched() requires a measurement-free circuit")
    n = circuit.num_qubits
    states = np.asarray(initial_states, dtype=complex)
    if states.ndim < 1 or states.shape[0] == 0:
        raise ValueError("initial_states needs a non-empty batch axis")
    batch = states.shape[0]
    if states.size != batch * 2 ** n:
        raise ValueError("initial states have wrong dimension")
    states = states.reshape((batch,) + (2,) * n).copy()
    unitary_part = circuit.without_directives()
    if fuse:
        operations = fused_operations(unitary_part)
    else:
        operations = [(gate_matrix(g), g.qubits) for g in unitary_part]
    if workspace is not None:
        return workspace.apply_operations(states, operations)
    for matrix, qubits in operations:
        states = _apply_matrix(states, matrix, qubits, 1)
    return states


@dataclass
class SimulationResult:
    """Final state plus classical record of a simulation run.

    Attributes
    ----------
    state:
        Final state tensor, shape ``(2,)*n``.
    measurements:
        For each measured qubit, the list of outcomes in program order.
    """

    state: np.ndarray
    measurements: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return self.state.ndim

    def amplitudes(self) -> np.ndarray:
        """Flat amplitude vector of length ``2**n`` (qubit 0 = MSB)."""
        return self.state.reshape(-1)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes()) ** 2

    def last_outcome(self, qubit: int) -> Optional[int]:
        outcomes = self.measurements.get(qubit)
        return outcomes[-1] if outcomes else None


class Simulator:
    """Stateful executor for circuits, with seeded measurement sampling.

    ``measure`` collapses the state and records the outcome; ``reset``
    measures then flips to |0> if needed; ``barrier`` is a no-op.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def run(
        self, circuit: Circuit, initial_state: Optional[np.ndarray] = None
    ) -> SimulationResult:
        _check_width(circuit.num_qubits)
        if initial_state is None:
            state = zero_state(circuit.num_qubits)
        else:
            state = np.asarray(initial_state, dtype=complex)
            if state.size != 2 ** circuit.num_qubits:
                raise ValueError("initial state has wrong dimension")
            state = state.reshape((2,) * circuit.num_qubits).copy()
        result = SimulationResult(state=state)
        for gate in circuit:
            if gate.name == "barrier":
                continue
            if gate.name == "measure":
                outcome, result.state = self._measure(result.state, gate.qubits[0])
                result.measurements.setdefault(gate.qubits[0], []).append(outcome)
                continue
            if gate.name == "reset":
                outcome, collapsed = self._measure(result.state, gate.qubits[0])
                if outcome == 1:
                    collapsed = apply_gate(collapsed, Gate("x", gate.qubits))
                result.state = collapsed
                continue
            result.state = apply_gate(result.state, gate)
        return result

    def _measure(self, state: np.ndarray, qubit: int) -> Tuple[int, np.ndarray]:
        moved = np.moveaxis(state, qubit, 0)
        p1 = float(np.sum(np.abs(moved[1]) ** 2))
        outcome = 1 if self._rng.random() < p1 else 0
        probability = p1 if outcome == 1 else 1.0 - p1
        if probability <= 0.0:  # numerical guard; pick the certain branch
            outcome = 1 - outcome
            probability = 1.0 - probability
        collapsed = np.zeros_like(moved)
        collapsed[outcome] = moved[outcome] / math.sqrt(probability)
        return outcome, np.moveaxis(collapsed, 0, qubit)


def statevector(
    circuit: Circuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Final state of a measurement-free run of ``circuit`` from |0...0>.

    Raises
    ------
    ValueError
        If the circuit contains ``measure`` or ``reset`` (their outcomes
        are probabilistic; use :class:`Simulator` for those).
    """
    if any(g.name in ("measure", "reset") for g in circuit):
        raise ValueError("statevector() requires a measurement-free circuit")
    return Simulator(seed=0).run(circuit, initial_state).state


def probabilities(circuit: Circuit) -> np.ndarray:
    """Measurement probabilities of the final state (length ``2**n``)."""
    return np.abs(statevector(circuit).reshape(-1)) ** 2


def sample_counts(
    circuit: Circuit, shots: int, seed: Optional[int] = None
) -> Dict[str, int]:
    """Sample ``shots`` computational-basis outcomes of the final state.

    Returns a histogram keyed by bit strings (qubit 0 leftmost), built in
    one :func:`numpy.unique` pass rather than a per-shot Python loop.

    Raises
    ------
    ValueError
        When ``shots`` is not a positive integer.
    """
    if shots <= 0:
        raise ValueError(f"shots must be a positive integer, got {shots}")
    probs = probabilities(circuit.without_directives())
    rng = np.random.default_rng(seed)
    n = circuit.num_qubits
    outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
    values, tallies = np.unique(outcomes, return_counts=True)
    return {
        (format(int(value), f"0{n}b") if n else ""): int(tally)
        for value, tally in zip(values, tallies)
    }
