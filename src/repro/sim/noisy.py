"""Monte-Carlo noisy simulation (depolarizing Pauli-twirl model).

The paper *estimates* circuit fidelity as a product of gate fidelities
(Fig. 3 caption).  This module provides the ground truth that proxy
approximates: stochastic Pauli-error trajectories through the dense
simulator, from which an empirical success rate can be measured and
compared against the product model (see
``benchmarks/bench_fidelity_model.py``).

Error model: after every one-qubit gate a uniformly random non-identity
Pauli strikes the qubit with the calibration's one-qubit error
probability; after every two-qubit gate one of the fifteen non-identity
two-qubit Paulis strikes with the two-qubit error probability;
measurement outcomes flip with the readout error probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import Gate
from ..hardware.calibration import Calibration, SURFACE17_CALIBRATION
from .statevector import Simulator, apply_gate, zero_state

__all__ = ["NoisySimulator", "estimate_success_rate", "SuccessRateEstimate"]

_PAULIS = ("x", "y", "z")


class NoisySimulator:
    """Trajectory sampler for the depolarizing Pauli error model.

    Each :meth:`run` call simulates *one* noisy trajectory; averaging an
    observable over many trajectories estimates its value under the full
    noise channel.
    """

    def __init__(
        self,
        calibration: Calibration = SURFACE17_CALIBRATION,
        seed: Optional[int] = None,
    ) -> None:
        self.calibration = calibration
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _maybe_pauli(self, state: np.ndarray, qubits: Tuple[int, ...]) -> np.ndarray:
        """Inject a random Pauli on ``qubits`` (at least one non-identity)."""
        while True:
            choices = [int(self._rng.integers(4)) for _ in qubits]
            if any(c > 0 for c in choices):
                break
        for qubit, choice in zip(qubits, choices):
            if choice > 0:
                state = apply_gate(state, Gate(_PAULIS[choice - 1], (qubit,)))
        return state

    def run(
        self, circuit: Circuit, initial_state: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """One noisy trajectory; returns the final state tensor.

        ``measure``/``reset`` are not supported here (use the noiseless
        :class:`~repro.sim.statevector.Simulator` plus readout flips, or
        strip them) — trajectories are meant for fidelity estimation of
        the unitary part.
        """
        if any(g.name in ("measure", "reset") for g in circuit):
            raise ValueError("strip measurements before noisy trajectories")
        if initial_state is None:
            state = zero_state(circuit.num_qubits)
        else:
            state = np.asarray(initial_state, dtype=complex).reshape(
                (2,) * circuit.num_qubits
            )
        for gate in circuit:
            if gate.name == "barrier":
                continue
            state = apply_gate(state, gate)
            error = self.calibration.gate_error(gate)
            if error > 0 and self._rng.random() < error:
                state = self._maybe_pauli(state, gate.qubits)
        return state


@dataclass(frozen=True)
class SuccessRateEstimate:
    """Monte-Carlo success-rate estimate with its sampling error.

    Attributes
    ----------
    mean:
        Average overlap ``|<ideal|noisy>|^2`` over trajectories — the
        probability that the circuit output survived the noise.
    std_error:
        Standard error of the mean.
    trajectories:
        Sample count.
    """

    mean: float
    std_error: float
    trajectories: int

    def agrees_with(self, model_value: float, sigmas: float = 4.0) -> bool:
        """True when a model prediction lies within ``sigmas`` of the MC
        estimate (with a small absolute floor for near-zero variances)."""
        tolerance = max(sigmas * self.std_error, 0.02)
        return abs(self.mean - model_value) <= tolerance


def estimate_success_rate(
    circuit: Circuit,
    calibration: Calibration = SURFACE17_CALIBRATION,
    trajectories: int = 200,
    seed: Optional[int] = 7,
) -> SuccessRateEstimate:
    """Monte-Carlo estimate of the circuit's noisy success rate.

    Runs ``trajectories`` Pauli-error trajectories of the (measurement
    stripped) circuit and averages the squared overlap with the ideal
    final state.  For a purely depolarizing model this converges to the
    channel fidelity the paper's gate-product formula approximates.
    """
    if trajectories < 1:
        raise ValueError("need at least one trajectory")
    unitary_part = circuit.without_directives()
    ideal = Simulator(seed=0).run(unitary_part).state.reshape(-1).conj()
    simulator = NoisySimulator(calibration, seed=seed)
    overlaps = np.empty(trajectories)
    for index in range(trajectories):
        final = simulator.run(unitary_part).reshape(-1)
        overlaps[index] = abs(np.dot(ideal, final)) ** 2
    mean = float(overlaps.mean())
    std_error = float(overlaps.std(ddof=1) / np.sqrt(trajectories)) if trajectories > 1 else 0.0
    return SuccessRateEstimate(mean, std_error, trajectories)
