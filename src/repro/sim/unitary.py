"""Exact unitary construction for small circuits."""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import gate_matrix

__all__ = ["circuit_unitary", "permutation_unitary"]

_MAX_UNITARY_QUBITS = 12


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """The ``2**n x 2**n`` unitary implemented by a measurement-free circuit.

    Qubit 0 is the most significant bit of the matrix index, consistent
    with :mod:`repro.circuit.gates`.

    Raises
    ------
    ValueError
        If the circuit measures/resets, or exceeds the size limit.
    """
    n = circuit.num_qubits
    if n > _MAX_UNITARY_QUBITS:
        raise ValueError(
            f"unitary construction limited to {_MAX_UNITARY_QUBITS} qubits"
        )
    if any(g.name in ("measure", "reset") for g in circuit):
        raise ValueError("circuit_unitary() requires a unitary circuit")
    dim = 2 ** n
    # Treat the identity's column index as a batch axis of size 2**n and
    # push it through the circuit with the same tensor contraction the
    # state simulator uses.
    op = np.eye(dim, dtype=complex).reshape((2,) * n + (dim,))
    for gate in circuit:
        if gate.name == "barrier":
            continue
        k = gate.num_qubits
        tensor = gate_matrix(gate).reshape((2,) * (2 * k))
        axes = list(gate.qubits)
        op = np.tensordot(tensor, op, axes=(list(range(k, 2 * k)), axes))
        op = np.moveaxis(op, range(k), axes)
    return op.reshape(dim, dim)


def permutation_unitary(num_qubits: int, permutation: dict) -> np.ndarray:
    """Unitary that relocates qubit ``q``'s state to ``permutation[q]``.

    ``permutation`` must be a bijection on ``0..num_qubits-1``.  Basis
    state ``|b_0 ... b_{n-1}>`` maps to the basis state whose bit at
    position ``permutation[q]`` equals ``b_q``.
    """
    if sorted(permutation) != list(range(num_qubits)) or sorted(
        permutation.values()
    ) != list(range(num_qubits)):
        raise ValueError("permutation must be a bijection on all qubits")
    dim = 2 ** num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for source in range(dim):
        bits = [(source >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        target = 0
        for q in range(num_qubits):
            target |= bits[q] << (num_qubits - 1 - permutation[q])
        matrix[target, source] = 1.0
    return matrix
