"""Equivalence checking: the compiler's correctness oracle.

Mapping relocates virtual qubits onto physical ones and moves them around
with SWAPs, so a mapped circuit is only expected to equal the original
*up to that relocation*.  :func:`verify_mapping` checks exactly this
contract: with virtual qubit ``v`` loaded at physical ``initial_layout[v]``
and read out from ``final_layout[v]``, the mapped circuit must act on
states like the original circuit (global phase excepted), with all
unassigned physical qubits returned to |0>.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit import Circuit
from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing
from ..telemetry.tracing import span
from .statevector import (
    Simulator,
    random_product_state,
    random_product_states,
    run_batched,
)
from .unitary import circuit_unitary

__all__ = [
    "allclose_up_to_global_phase",
    "states_equivalent",
    "circuits_equivalent",
    "verify_mapping",
    "verify_mapping_twin",
]


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when ``a == exp(i phi) * b`` for some phase ``phi``."""
    a = np.asarray(a).reshape(-1)
    b = np.asarray(b).reshape(-1)
    if a.shape != b.shape:
        return False
    index = int(np.argmax(np.abs(b)))
    if abs(b[index]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[index] / b[index]
    magnitude = abs(phase)
    if abs(magnitude - 1.0) > max(atol, 1e-6):
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def states_equivalent(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """Alias for global-phase-insensitive state comparison."""
    return allclose_up_to_global_phase(a, b, atol=atol)


def circuits_equivalent(
    first: Circuit, second: Circuit, atol: float = 1e-8
) -> bool:
    """Exact unitary equivalence (up to global phase) of two circuits.

    Both circuits must have the same register size and be measurement
    free.  Intended for small circuits (the unitary is built densely).
    """
    if first.num_qubits != second.num_qubits:
        return False
    u1 = circuit_unitary(first.without_directives())
    u2 = circuit_unitary(second.without_directives())
    return allclose_up_to_global_phase(u1, u2, atol=atol)


def _embed_states(
    states: np.ndarray,
    num_physical: int,
    layout: Dict[int, int],
    num_virtual: int,
) -> np.ndarray:
    """Tensor virtual states into a physical register (rest |0>).

    ``states`` carries ``num_virtual`` trailing qubit axes, preceded by
    any number of leading batch axes; qubit axis ``v`` is placed at
    physical axis ``layout[v]``.  The fillers are written as one zero
    allocation plus a single slice assignment (the |0> component holds
    the virtual state, every other filler component is zero), replacing
    the per-filler ``tensordot`` loop this used to run.
    """
    lead = states.ndim - num_virtual
    fillers = num_physical - num_virtual
    embedded = np.zeros(states.shape + (2,) * fillers, dtype=complex)
    embedded[(Ellipsis,) + (0,) * fillers] = states
    # Axis order now: batch axes, virtual 0..n-1, then the fresh |0>
    # qubits.  Build the permutation sending axis v -> layout[v] and
    # fillers to the free physical slots in increasing order.
    assigned = set(layout[v] for v in range(num_virtual))
    free = [p for p in range(num_physical) if p not in assigned]
    destination = [layout[v] + lead for v in range(num_virtual)]
    destination += [p + lead for p in free]
    return np.moveaxis(embedded, range(lead, lead + num_physical), destination)


def _embed_virtual_state(
    virtual_state: np.ndarray,
    num_physical: int,
    layout: Dict[int, int],
) -> np.ndarray:
    """Tensor one virtual state into a physical register (rest |0>)."""
    return _embed_states(
        virtual_state, num_physical, layout, virtual_state.ndim
    )


def verify_mapping(
    original: Circuit,
    mapped: Circuit,
    initial_layout: Dict[int, int],
    final_layout: Dict[int, int],
    trials: int = 3,
    seed: Optional[int] = 1234,
    atol: float = 1e-7,
    batched: bool = True,
) -> bool:
    """Check that a mapped circuit faithfully implements the original.

    Parameters
    ----------
    original:
        The pre-mapping circuit on ``n`` virtual qubits.
    mapped:
        The post-mapping circuit on ``m >= n`` physical qubits
        (measurement free; directives are dropped before comparison).
    initial_layout / final_layout:
        Virtual-to-physical assignments before and after execution.
    trials:
        Number of random product-state inputs.  Product states span the
        full Hilbert space, so ``trials`` successes certify unitary
        equality up to numerical tolerance with overwhelming probability.
    batched:
        With the default ``True``, all trials run through two batched,
        gate-fused simulations (one per circuit) instead of ``2*trials``
        serial ones; a seeded call draws the exact same random inputs on
        both paths and returns the same verdict.  ``False`` keeps the
        original trial-by-trial loop.

    Returns
    -------
    bool
        True when every trial matches up to global phase.
    """
    with span(
        "oracle.verify",
        trials=max(1, trials),
        batched=batched,
        qubits=mapped.num_qubits,
    ) as sp:
        verdict = _verify_mapping_impl(
            original,
            mapped,
            initial_layout,
            final_layout,
            trials=trials,
            seed=seed,
            atol=atol,
            batched=batched,
        )
        sp.set("verdict", verdict)
    if tracing.is_enabled():
        labels = {
            "path": "batched" if batched else "serial",
            "verdict": "pass" if verdict else "fail",
        }
        telemetry_metrics.counter("oracle_checks", **labels).inc()
        telemetry_metrics.histogram(
            "oracle_trials", buckets=(1, 2, 3, 5, 8, 13, 21), **labels
        ).observe(max(1, trials))
    return verdict


def _verify_mapping_impl(
    original: Circuit,
    mapped: Circuit,
    initial_layout: Dict[int, int],
    final_layout: Dict[int, int],
    trials: int,
    seed: Optional[int],
    atol: float,
    batched: bool,
) -> bool:
    num_virtual = original.num_qubits
    num_physical = mapped.num_qubits
    if num_physical < num_virtual:
        raise ValueError("mapped circuit has fewer qubits than the original")
    for name, layout in (("initial", initial_layout), ("final", final_layout)):
        images = [layout[v] for v in range(num_virtual)]
        if len(set(images)) != len(images):
            raise ValueError(f"{name} layout is not injective")
        if any(not 0 <= p < num_physical for p in images):
            raise ValueError(f"{name} layout leaves the physical register")

    original = original.without_directives()
    mapped = mapped.without_directives()
    rng = np.random.default_rng(seed)
    trials = max(1, trials)
    if batched:
        virtual_in = random_product_states(num_virtual, trials, rng)
        virtual_out = run_batched(original, virtual_in)
        physical_in = _embed_states(
            virtual_in, num_physical, initial_layout, num_virtual
        )
        physical_out = run_batched(mapped, physical_in)
        expected = _embed_states(
            virtual_out, num_physical, final_layout, num_virtual
        )
        return all(
            allclose_up_to_global_phase(physical_out[t], expected[t], atol=atol)
            for t in range(trials)
        )
    simulator = Simulator(seed=0)
    for _ in range(trials):
        virtual_in = random_product_state(num_virtual, rng)
        virtual_out = simulator.run(original, initial_state=virtual_in).state
        physical_in = _embed_virtual_state(virtual_in, num_physical, initial_layout)
        physical_out = simulator.run(mapped, initial_state=physical_in).state
        expected = _embed_virtual_state(virtual_out, num_physical, final_layout)
        if not allclose_up_to_global_phase(physical_out, expected, atol=atol):
            return False
    return True


def verify_mapping_twin(
    original: Circuit,
    mapped: Circuit,
    initial_layout: Dict[int, int],
    final_layout: Dict[int, int],
    trials: int = 3,
    seed: Optional[int] = 1234,
    atol: float = 1e-7,
) -> Tuple[bool, bool]:
    """Run both oracle paths and return ``(batched, serial)`` verdicts.

    The batched path draws its random product-state inputs from the same
    seeded stream as the serial loop, so for any circuit the two verdicts
    are contractually identical; a mismatch is a bug in one of the oracle
    implementations.  This is the differential hook the fuzz harness'
    invariant bank calls — callers that only need one verdict should use
    :func:`verify_mapping` directly.
    """
    batched = verify_mapping(
        original, mapped, initial_layout, final_layout,
        trials=trials, seed=seed, atol=atol, batched=True,
    )
    serial = verify_mapping(
        original, mapped, initial_layout, final_layout,
        trials=trials, seed=seed, atol=atol, batched=False,
    )
    return batched, serial
