"""Zero-dependency tracing core: nested spans over a monotonic clock.

The tracer is **off by default** and compiled down to no-ops when
disabled: :func:`span` returns one shared, stateless context manager and
:func:`traced` wrappers fall straight through to the wrapped function,
so instrumented hot paths (the SABRE swap loop, the batched oracle) stay
at baseline speed.  When enabled, spans record a name, monotonic
start/end timestamps, free-form attributes and their position in the
nesting tree into a thread-safe in-memory buffer.

Key entry points
----------------
* ``with span("route.sabre", qubits=n) as sp: ...`` — one nested span;
  ``sp.set(key, value)`` attaches attributes mid-flight.
* ``@traced("stage.name")`` — span-per-call decorator.
* :func:`configure` / :func:`is_enabled` — the global switch plus the
  optional export directory.
* :func:`capture` — run a block against a *fresh, isolated* buffer (used
  by worker processes so their spans do not mix with the parent's).
* :func:`ingest` — replay serialised span batches (e.g. returned from a
  worker) into the local buffer, deterministically re-assigning span ids
  while preserving the parent/child structure.
"""

from __future__ import annotations

import functools
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from .clock import now

__all__ = [
    "SpanRecord",
    "Span",
    "span",
    "traced",
    "configure",
    "is_enabled",
    "get_export_dir",
    "snapshot_spans",
    "drain_spans",
    "reset",
    "capture",
    "ingest",
]


@dataclass
class SpanRecord:
    """One finished span: what ran, when, under which parent.

    ``span_id``/``parent_id`` are buffer-local integers (root spans have
    ``parent_id=None``); ``process_id``/``thread_id`` identify where the
    span executed, which the Chrome trace exporter uses for its lanes.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    process_id: int = 0
    thread_id: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "process_id": self.process_id,
            "thread_id": self.thread_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_s=payload["start_s"],
            end_s=payload["end_s"],
            attributes=dict(payload.get("attributes") or {}),
            process_id=payload.get("process_id", 0),
            thread_id=payload.get("thread_id", 0),
        )


class _TracerState:
    """Module-global tracer: switch, buffer, id counter, span stacks."""

    def __init__(self) -> None:
        self.enabled = False
        self.export_dir: Optional[Path] = None
        self.lock = threading.Lock()
        self.records: List[SpanRecord] = []
        self.next_id = 0
        self._local = threading.local()

    def stack(self) -> List["Span"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def set_stack(self, stack: Optional[List["Span"]]) -> None:
        self._local.stack = stack if stack is not None else []

    def allocate_id(self) -> int:
        with self.lock:
            span_id = self.next_id
            self.next_id += 1
        return span_id


_STATE = _TracerState()


class Span:
    """A live span; use via ``with span(name, **attrs) as sp``."""

    __slots__ = ("name", "attributes", "span_id", "parent_id", "_start")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id: int = -1
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, key: str, value: Any) -> "Span":
        """Attach an attribute mid-span; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        stack = _STATE.stack()
        self.span_id = _STATE.allocate_id()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = now()
        stack = _STATE.stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_s=self._start,
            end_s=end,
            attributes=dict(self.attributes),
            process_id=os.getpid(),
            thread_id=threading.get_ident(),
        )
        with _STATE.lock:
            _STATE.records.append(record)
        return False


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attributes: Any) -> Union[Span, _NoopSpan]:
    """Context manager for one nested span.

    Disabled tracing returns a single shared no-op object — no
    allocation, no clock read, no buffer append.
    """
    if not _STATE.enabled:
        return _NOOP_SPAN
    return Span(name, attributes)


def traced(
    name: Optional[str] = None, **attributes: Any
) -> Callable[[Callable], Callable]:
    """Decorator: wrap every call of the function in a span.

    ``@traced`` / ``@traced("custom.name", fixed_attr=1)``.  The wrapper
    checks the enabled flag first and falls straight through when
    tracing is off, so decorated hot paths pay one attribute load.
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            with Span(label, dict(attributes)):
                return fn(*args, **kwargs)

        return wrapper

    # Bare usage: @traced without parentheses.
    if callable(name):
        fn, name = name, None
        return decorate(fn)
    return decorate


# ---------------------------------------------------------------------------
# Global switch and buffer management
# ---------------------------------------------------------------------------

_UNSET = object()


def configure(
    enabled: Optional[bool] = None,
    export_dir: Any = _UNSET,
) -> None:
    """Flip the tracer switch and/or set the exporter directory.

    Omitted arguments leave the corresponding setting untouched;
    ``export_dir=None`` explicitly clears the directory.
    """
    if enabled is not None:
        _STATE.enabled = bool(enabled)
    if export_dir is not _UNSET:
        _STATE.export_dir = Path(export_dir) if export_dir is not None else None


def is_enabled() -> bool:
    return _STATE.enabled


def get_export_dir() -> Optional[Path]:
    return _STATE.export_dir


def snapshot_spans() -> List[SpanRecord]:
    """Copy of the finished-span buffer (oldest first)."""
    with _STATE.lock:
        return list(_STATE.records)


def drain_spans() -> List[SpanRecord]:
    """Return and clear the finished-span buffer."""
    with _STATE.lock:
        records = list(_STATE.records)
        _STATE.records.clear()
    return records


def reset() -> None:
    """Clear the buffer and restart span-id allocation from zero."""
    with _STATE.lock:
        _STATE.records.clear()
        _STATE.next_id = 0


@contextmanager
def capture(enabled: bool = True) -> Iterator[List[SpanRecord]]:
    """Run a block against a fresh, isolated span buffer.

    The yielded list is filled with the block's finished spans on exit;
    the surrounding buffer, id counter, enabled flag and span stack are
    saved and restored, so captures nest and never leak spans in either
    direction.  Worker processes use this to collect per-payload spans
    with ids starting at 0 (which makes the merged tree independent of
    worker count), and tests use it for isolation.
    """
    saved_enabled = _STATE.enabled
    saved_export = _STATE.export_dir
    saved_stack = getattr(_STATE._local, "stack", None)
    with _STATE.lock:
        saved_records = _STATE.records
        saved_next_id = _STATE.next_id
        _STATE.records = []
        _STATE.next_id = 0
    _STATE.enabled = enabled
    _STATE.set_stack([])
    box: List[SpanRecord] = []
    try:
        yield box
    finally:
        with _STATE.lock:
            box.extend(_STATE.records)
            _STATE.records = saved_records
            _STATE.next_id = saved_next_id
        _STATE.enabled = saved_enabled
        _STATE.export_dir = saved_export
        _STATE.set_stack(saved_stack)


def ingest(
    records: Sequence[Union[SpanRecord, dict]],
    parent_id: Optional[int] = None,
) -> List[SpanRecord]:
    """Replay a serialised span batch into the local buffer.

    Every span gets a fresh local id (allocation order follows the batch
    order, so re-ingesting the same batches in the same order produces
    the same ids regardless of where the spans originally ran); parent
    links *within* the batch are remapped, and spans whose parent is not
    part of the batch — the batch's roots — are attached to
    ``parent_id``.  No-op while tracing is disabled.
    """
    if not _STATE.enabled:
        return []
    batch: List[SpanRecord] = [
        rec if isinstance(rec, SpanRecord) else SpanRecord.from_dict(rec)
        for rec in records
    ]
    with _STATE.lock:
        mapping: Dict[int, int] = {}
        for rec in batch:
            mapping[rec.span_id] = _STATE.next_id
            _STATE.next_id += 1
        ingested = []
        for rec in batch:
            new_parent = (
                mapping[rec.parent_id]
                if rec.parent_id is not None and rec.parent_id in mapping
                else parent_id
            )
            ingested.append(
                SpanRecord(
                    name=rec.name,
                    span_id=mapping[rec.span_id],
                    parent_id=new_parent,
                    start_s=rec.start_s,
                    end_s=rec.end_s,
                    attributes=dict(rec.attributes),
                    process_id=rec.process_id,
                    thread_id=rec.thread_id,
                )
            )
        _STATE.records.extend(ingested)
    return ingested
