"""Telemetry exporters: JSONL events, Chrome traces, Prometheus text.

Three on-disk views of the same run, written under
``results/telemetry/`` by convention:

* ``events.jsonl`` — one JSON object per finished span; the durable,
  grep-able event log every other tool consumes.
* ``trace.json`` — Chrome trace format (complete ``"ph": "X"`` events);
  load it in ``chrome://tracing`` or https://ui.perfetto.dev to see the
  suite run as a flame chart, one lane per process/thread.
* ``metrics.prom`` — Prometheus text exposition of the metrics registry
  snapshot; scrapeable, or just human-readable totals.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .clock import CLOCK_SOURCE
from .metrics import MetricsRegistry
from .tracing import SpanRecord

__all__ = [
    "EVENTS_FILENAME",
    "TRACE_FILENAME",
    "METRICS_FILENAME",
    "span_events",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "export_all",
]

EVENTS_FILENAME = "events.jsonl"
TRACE_FILENAME = "trace.json"
METRICS_FILENAME = "metrics.prom"

SpanLike = Union[SpanRecord, dict]


def span_events(spans: Sequence[SpanLike]) -> List[dict]:
    """Normalise spans (records or already-serialised dicts) to dicts."""
    return [
        s.to_dict() if isinstance(s, SpanRecord) else dict(s) for s in spans
    ]


def write_jsonl(spans: Sequence[SpanLike], path: Union[str, Path]) -> Path:
    """One span event per line; the canonical durable log."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in span_events(spans):
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL event log back into event dicts."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def write_chrome_trace(
    spans: Sequence[SpanLike], path: Union[str, Path]
) -> Path:
    """Chrome trace format: complete events, microsecond timestamps.

    Timestamps are the monotonic span clocks scaled to µs — absolute
    values are arbitrary, but all spans of one run share the epoch, so
    relative placement (the flame chart) is exact.
    """
    trace_events = []
    for event in span_events(spans):
        trace_events.append(
            {
                "name": event["name"],
                "cat": "repro",
                "ph": "X",
                "ts": event["start_s"] * 1e6,
                "dur": (event["end_s"] - event["start_s"]) * 1e6,
                "pid": event.get("process_id", 0),
                "tid": event.get("thread_id", 0),
                "args": event.get("attributes", {}),
            }
        )
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": CLOCK_SOURCE},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _escape_label_value(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_NAME_RE.sub("_", k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text."""
    lines: List[str] = []
    for name, family in sorted(snapshot.items()):
        kind = family["kind"]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} {kind}")
        for entry in family["series"]:
            labels = entry["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{prom}{_prom_labels(labels)} {entry['value']}")
                continue
            # Histogram: cumulative buckets plus _sum/_count.
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                le = 'le="%s"' % bound
                lines.append(
                    f"{prom}_bucket{_prom_labels(labels, le)} {cumulative}"
                )
            cumulative += entry["counts"][-1]
            le_inf = 'le="+Inf"'
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, le_inf)} {cumulative}"
            )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {entry['sum']}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    snapshot: Union[dict, MetricsRegistry], path: Union[str, Path]
) -> Path:
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot))
    return path


def export_all(
    directory: Union[str, Path],
    spans: Sequence[SpanLike],
    metrics: Union[dict, MetricsRegistry, None] = None,
) -> Dict[str, Path]:
    """Write all three exporter outputs under ``directory``.

    Returns ``{"events": ..., "trace": ..., "metrics": ...}`` paths (the
    metrics file is omitted when no registry/snapshot is given).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "events": write_jsonl(spans, directory / EVENTS_FILENAME),
        "trace": write_chrome_trace(spans, directory / TRACE_FILENAME),
    }
    if metrics is not None:
        paths["metrics"] = write_prometheus(
            metrics, directory / METRICS_FILENAME
        )
    return paths
