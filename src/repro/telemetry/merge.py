"""Deterministic merging of per-worker telemetry shards.

The suite runner fans circuits out over worker processes; each worker
captures the spans of its payloads and (when an export directory is
configured) appends them to its own shard file,
``workers/worker-<pid>.jsonl``.  Which worker maps which circuit is
nondeterministic, so the shards themselves vary run to run — but every
event carries its payload coordinates (``batch`` = suite index of the
circuit, ``seq`` = position within that payload's span batch), and
merging sorts on exactly those.  The merged log is therefore identical
for ``workers=1`` and ``workers=N`` up to durations/pids, and no event
is ever dropped: the merge is a pure reorder of the shard union.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "WORKER_DIR_NAME",
    "MERGED_FILENAME",
    "annotate_events",
    "append_worker_events",
    "read_worker_events",
    "merge_events",
    "merge_worker_events",
]

#: Subdirectory of the telemetry export dir holding per-worker shards.
WORKER_DIR_NAME = "workers"
#: Filename of the merged, deterministic event log.
MERGED_FILENAME = "merged.jsonl"


def annotate_events(events: Sequence[dict], batch: int) -> List[dict]:
    """Stamp payload coordinates onto a span batch.

    ``batch`` is the payload's position in the suite (its circuit
    index); ``seq`` is the span's position inside the batch.  Together
    they form the deterministic sort key the merge uses.
    """
    annotated = []
    for seq, event in enumerate(events):
        event = dict(event)
        event["batch"] = batch
        event["seq"] = seq
        annotated.append(event)
    return annotated


def append_worker_events(
    directory: Union[str, Path], events: Sequence[dict], worker_id: int
) -> Path:
    """Append one payload's annotated events to that worker's shard.

    Each worker process appends only to its own pid-named file, so no
    cross-process file locking is needed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"worker-{worker_id}.jsonl"
    with path.open("a") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_worker_events(directory: Union[str, Path]) -> List[dict]:
    """Union of all worker shards in a directory (unordered)."""
    events: List[dict] = []
    directory = Path(directory)
    if not directory.is_dir():
        return events
    for path in sorted(directory.glob("worker-*.jsonl")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def merge_events(events: Sequence[dict]) -> List[dict]:
    """Order a shard union deterministically and rebase span ids.

    Events are sorted by ``(batch, seq)``; span ids are re-assigned in
    that order with in-batch parent links preserved (a ``parent_id``
    pointing outside its own batch becomes ``None`` — batches are
    captured with fresh id spaces, so ids never alias across batches
    within one ``(batch, seq)`` ordering).
    """
    ordered = sorted(events, key=lambda e: (e.get("batch", 0), e.get("seq", 0)))
    merged: List[dict] = []
    next_id = 0
    mapping: Dict[tuple, int] = {}
    for event in ordered:
        key = (event.get("batch", 0), event["span_id"])
        mapping[key] = next_id
        next_id += 1
    for event in ordered:
        event = dict(event)
        batch = event.get("batch", 0)
        event["span_id"] = mapping[(batch, event["span_id"])]
        parent = event.get("parent_id")
        event["parent_id"] = (
            mapping.get((batch, parent)) if parent is not None else None
        )
        merged.append(event)
    return merged


def merge_worker_events(
    directory: Union[str, Path], output: Optional[Union[str, Path]] = None
) -> Path:
    """Merge every worker shard under ``directory`` into one JSONL log.

    Writes ``directory/merged.jsonl`` (or ``output``) and returns its
    path.  Lossless by construction: the merged file holds exactly the
    union of the shard events, reordered and id-rebased.
    """
    directory = Path(directory)
    merged = merge_events(read_worker_events(directory))
    output = Path(output) if output is not None else directory / MERGED_FILENAME
    output.parent.mkdir(parents=True, exist_ok=True)
    with output.open("w") as handle:
        for event in merged:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return output
