"""The stack's single timing clock.

Every timing path in the repository — pass transcripts, suite wall
times, telemetry spans — reads this module's :func:`now` so the whole
stack agrees on one *monotonic* clock.  ``time.time()`` is wall-clock
time and can jump backwards under NTP adjustment, which silently
corrupts durations; ``time.perf_counter()`` is monotonic with the
highest available resolution, which is exactly what span durations and
benchmark deltas need.

:data:`CLOCK_SOURCE` names the clock in exported records so a reader of
a transcript or trace file knows what the numbers mean.
"""

from __future__ import annotations

import time

__all__ = ["CLOCK_SOURCE", "now"]

#: Name of the clock backing :func:`now`, surfaced in exported records.
CLOCK_SOURCE = "time.perf_counter"

#: Monotonic high-resolution timestamp in seconds.  Only differences are
#: meaningful; the epoch is arbitrary (process start, typically).
now = time.perf_counter
