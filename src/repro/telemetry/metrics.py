"""Metrics registry: counters, gauges and fixed-bucket histograms.

Metrics are named, labelled time-series aggregates — ``swaps_inserted``
by router, ``oracle_trials`` as a histogram, ``pass_gate_delta`` by pass
name.  A :class:`MetricsRegistry` holds one family per metric name and
one series per distinct label set; registries snapshot to plain dicts
(JSON-ready, picklable across worker processes) and merge snapshots
back, which is how per-worker metrics flow into the parent's registry.

Like tracing, the module-level helpers (:func:`counter`, :func:`gauge`,
:func:`histogram`) are gated on the telemetry switch and hand out one
shared no-op object while telemetry is disabled, so instrumented code
needs no ``if`` of its own.  Code that wants an always-on private
registry can instantiate :class:`MetricsRegistry` directly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "BYTE_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "capture_registry",
]

#: Default histogram upper bounds; a final +inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: Byte-size buckets (256 B … 16 MiB) for payload/wire histograms such
#: as ``payload_bytes``; a final +inf bucket is implicit.
BYTE_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def state(self) -> dict:
        return {"value": self.value}

    def merge_state(self, state: dict) -> None:
        self.value += state["value"]


class Gauge:
    """Last-written instantaneous value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def state(self) -> dict:
        return {"value": self.value}

    def merge_state(self, state: dict) -> None:
        # Gauges are instantaneous; on merge the incoming sample wins.
        self.value = state["value"]


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus)."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        # counts[i] tallies observations <= buckets[i]; the last slot is
        # the +inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def state(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge_state(self, state: dict) -> None:
        if list(state["buckets"]) != list(self.buckets):
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(state["counts"]):
            self.counts[index] += count
        self.sum += state["sum"]
        self.count += state["count"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe collection of labelled metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, {label_key: metric}); label values are
        # stringified so snapshots round-trip through JSON unchanged.
        self._families: Dict[str, Tuple[str, Dict[LabelKey, Any]]] = {}

    def _series(self, name: str, kind: str, factory, labels: Dict[str, Any]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, {})
                self._families[name] = family
            if family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}"
                )
            metric = family[1].get(key)
            if metric is None:
                metric = family[1][key] = factory()
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._series(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._series(name, "gauge", Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._series(
            name, "histogram", lambda: Histogram(buckets), labels
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready, picklable view of every family and series."""
        with self._lock:
            out: Dict[str, dict] = {}
            for name, (kind, series) in sorted(self._families.items()):
                out[name] = {
                    "kind": kind,
                    "series": [
                        {"labels": dict(key), **metric.state()}
                        for key, metric in sorted(series.items())
                    ],
                }
            return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms accumulate; gauges take the incoming
        value.  This is the parent-side half of worker fan-out.
        """
        for name, family in snapshot.items():
            kind = family["kind"]
            factory = _KINDS[kind]
            for entry in family["series"]:
                labels = entry["labels"]
                if kind == "histogram":
                    metric = self.histogram(
                        name, buckets=entry["buckets"], **labels
                    )
                else:
                    metric = self._series(name, kind, factory, labels)
                state = {k: v for k, v in entry.items() if k != "labels"}
                metric.merge_state(state)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)


class _NoopMetric:
    """Shared sink handed out while telemetry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_METRIC = _NoopMetric()
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the gated helpers write to."""
    return _REGISTRY


def counter(name: str, **labels: Any):
    if not tracing.is_enabled():
        return _NOOP_METRIC
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any):
    if not tracing.is_enabled():
        return _NOOP_METRIC
    return _REGISTRY.gauge(name, **labels)


def histogram(
    name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
):
    if not tracing.is_enabled():
        return _NOOP_METRIC
    return _REGISTRY.histogram(name, buckets=buckets, **labels)


@contextmanager
def capture_registry() -> Iterator[MetricsRegistry]:
    """Swap in a fresh default registry for the duration of a block.

    Pairs with :func:`repro.telemetry.tracing.capture`: worker processes
    collect their metrics into a private registry whose snapshot travels
    back to the parent with the span batch.
    """
    global _REGISTRY
    saved = _REGISTRY
    fresh = MetricsRegistry()
    _REGISTRY = fresh
    try:
        yield fresh
    finally:
        _REGISTRY = saved
