"""Observability layer: tracing, metrics and profiling for the stack.

``repro.telemetry`` is the substrate every performance claim in this
repository reports through.  It is a zero-dependency subsystem with
three pieces:

* :mod:`~repro.telemetry.tracing` — nested spans over the monotonic
  clock (:mod:`~repro.telemetry.clock`), a ``span(...)`` context
  manager plus a ``@traced`` decorator, all compiled to shared no-ops
  while telemetry is disabled (the default), so instrumented hot paths
  stay at baseline speed.
* :mod:`~repro.telemetry.metrics` — counters, gauges and fixed-bucket
  histograms with labelled series, snapshotting and cross-process
  merging.
* :mod:`~repro.telemetry.export` / :mod:`~repro.telemetry.merge` —
  JSONL event logs, Chrome (``chrome://tracing``) traces, Prometheus
  text exposition, and the deterministic merge of per-worker shards.

Typical use::

    from repro import telemetry

    with telemetry.session(export_dir="results/telemetry") as tele:
        result = sabre_mapper().map(circuit, device)
    # tele.paths: events.jsonl / trace.json / metrics.prom

Instrumentation sites call ``telemetry.span(...)`` and
``telemetry.counter(...).inc()`` unconditionally; both are free when
telemetry is off.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from . import clock, export, merge, metrics, tracing
from .clock import CLOCK_SOURCE
from .export import export_all
from .metrics import (
    MetricsRegistry,
    capture_registry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from .tracing import (
    SpanRecord,
    configure,
    drain_spans,
    get_export_dir,
    ingest,
    is_enabled,
    reset,
    snapshot_spans,
    span,
    traced,
)

__all__ = [
    "CLOCK_SOURCE",
    "MetricsRegistry",
    "SpanRecord",
    "CapturedTelemetry",
    "TelemetrySession",
    "capture",
    "capture_registry",
    "clock",
    "configure",
    "counter",
    "drain_spans",
    "export",
    "export_all",
    "gauge",
    "get_export_dir",
    "get_registry",
    "histogram",
    "ingest",
    "is_enabled",
    "merge",
    "metrics",
    "reset",
    "session",
    "snapshot_spans",
    "span",
    "traced",
    "tracing",
]


class CapturedTelemetry:
    """Spans + metrics collected by one :func:`capture` block."""

    def __init__(self, spans: List[SpanRecord], registry: MetricsRegistry):
        self.spans = spans
        self.registry = registry

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()


@contextmanager
def capture(enabled: bool = True) -> Iterator[CapturedTelemetry]:
    """Collect spans *and* metrics of a block into isolated stores.

    The yielded :class:`CapturedTelemetry` exposes ``spans`` (filled on
    exit) and the private ``registry``.  Surrounding telemetry state is
    untouched — this is what worker processes and tests use.
    """
    with ExitStack() as stack:
        spans = stack.enter_context(tracing.capture(enabled))
        registry = stack.enter_context(capture_registry())
        yield CapturedTelemetry(spans, registry)


class TelemetrySession(CapturedTelemetry):
    """Result handle of :func:`session`; adds the exported paths."""

    def __init__(self, spans, registry, export_dir: Optional[Path]):
        super().__init__(spans, registry)
        self.export_dir = export_dir
        self.paths: Dict[str, Path] = {}


@contextmanager
def session(
    export_dir: Optional[Union[str, Path]] = None,
    enabled: bool = True,
) -> Iterator[TelemetrySession]:
    """Enable telemetry for a block and export everything at the end.

    A :func:`capture` that additionally publishes the export directory
    to instrumentation (the suite runner writes its per-worker shards
    under it) and, on exit, writes the JSONL/Chrome/Prometheus outputs
    there.  The session object keeps the spans, the registry and the
    written ``paths`` for inspection after the block.
    """
    directory = Path(export_dir) if export_dir is not None else None
    handle: TelemetrySession
    with tracing.capture(enabled) as spans, capture_registry() as registry:
        tracing.configure(export_dir=directory)
        handle = TelemetrySession(spans, registry, directory)
        try:
            yield handle
        finally:
            tracing.configure(export_dir=None)
    if directory is not None and enabled:
        handle.paths = export_all(directory, handle.spans, handle.registry)
