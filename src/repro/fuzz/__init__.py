"""Differential fuzzing & metamorphic testing for the mapping stack.

Every optimised hot path in this repository keeps its reference twin
alive behind a flag (``SabreRouter(incremental=False)``,
``verify_mapping(batched=False)``, ``compute_metrics(vectorized=False)``,
``run_suite_parallel(workers=1)``).  This package hunts for inputs where
the twins disagree — the regression class that silently corrupts the
Fig. 3/5 reproductions — plus metamorphic properties that need no twin
at all (relabeling invariance, commutation invariance, QASM round-trips,
unitary preservation of mapping).

* :mod:`repro.fuzz.generator` — seeded adversarial circuit + topology
  sampler (one :class:`FuzzSeed` reproduces any sample exactly).
* :mod:`repro.fuzz.invariants` — the invariant bank: differential and
  metamorphic oracles evaluated per sample.
* :mod:`repro.fuzz.shrink` — delta-debugging minimizer (drop gates,
  merge qubits, shrink the topology) for failing samples.
* :mod:`repro.fuzz.runner` — the fuzzing loop, reproducer dumps under
  ``results/fuzz/``, and the planted-bug self-test that proves the
  harness can find and shrink a real router bug.
"""

from .generator import (
    CIRCUIT_CLASSES,
    TOPOLOGY_CLASSES,
    FuzzSample,
    FuzzSeed,
    generate_circuit,
    generate_sample,
    generate_topology,
    minimal_device,
    sample_block,
)
from .invariants import (
    INVARIANT_NAMES,
    Invariant,
    InvariantOutcome,
    check_sample,
    default_bank,
    parallel_determinism_failure,
)
from .shrink import ShrinkResult, shrink_circuit, shrink_sample
from .runner import (
    FuzzFailure,
    FuzzReport,
    InvariantStats,
    planted_bug_selftest,
    run_fuzz,
)

__all__ = [
    "CIRCUIT_CLASSES",
    "TOPOLOGY_CLASSES",
    "FuzzSample",
    "FuzzSeed",
    "generate_circuit",
    "generate_sample",
    "generate_topology",
    "minimal_device",
    "sample_block",
    "INVARIANT_NAMES",
    "Invariant",
    "InvariantOutcome",
    "check_sample",
    "default_bank",
    "parallel_determinism_failure",
    "ShrinkResult",
    "shrink_circuit",
    "shrink_sample",
    "FuzzFailure",
    "FuzzReport",
    "InvariantStats",
    "planted_bug_selftest",
    "run_fuzz",
]
