"""Seeded adversarial sample generator for the fuzz harness.

One :class:`FuzzSeed` (a ``(seed, index)`` pair) determines one
:class:`FuzzSample` — a circuit drawn from one of four circuit classes
and a device drawn from one of four topology classes — completely and
reproducibly, so any failure can be replayed from two integers.

The circuit classes mirror the benchmark families of the paper's suite
plus an explicitly *pathological* class (empty circuits, 1q-only
circuits, disconnected / duplicate-edge interaction graphs, directive
spam) that unit-test-driven development never samples but routing and
metric code must survive.  Topologies cover the paper's lattices (ring,
grid, Surface-17 crops) plus random-degree connected graphs, the shape
on which SWAP heuristics of this family are known to be fragile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..circuit import Circuit
from ..hardware import (
    CNOT_GATESET,
    CouplingGraph,
    Device,
    SURFACE17_CALIBRATION,
    SURFACE17_GATESET,
)
from ..hardware.library import grid, ring, surface_code_grid
from ..workloads import qaoa, random_circuits, reversible

__all__ = [
    "CIRCUIT_CLASSES",
    "TOPOLOGY_CLASSES",
    "FuzzSeed",
    "FuzzSample",
    "generate_circuit",
    "generate_topology",
    "generate_sample",
    "minimal_device",
    "sample_block",
]

#: The four circuit classes a seed block cycles through.
CIRCUIT_CLASSES: Tuple[str, ...] = (
    "random", "qaoa", "reversible", "pathological"
)

#: The four topology classes a seed block cycles through.
TOPOLOGY_CLASSES: Tuple[str, ...] = ("ring", "grid", "surface", "random")

#: Width cap for generated circuits: keeps every sample inside the dense
#: simulation oracle's budget, so the semantic invariants stay applicable.
MAX_CIRCUIT_QUBITS = 7

_PATHOLOGICAL_VARIANTS = (
    "empty",
    "one_qubit_only",
    "disconnected",
    "duplicate_edge",
    "directive_spam",
    "long_range_chain",
)


@dataclass(frozen=True)
class FuzzSeed:
    """Replayable coordinates of one fuzz sample.

    ``seed`` names the block, ``index`` the sample within it; the derived
    RNG streams are functions of both (plus a ``salt`` so independent
    consumers — generator, relabeling invariant — never share draws).
    """

    seed: int
    index: int

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng((self.seed, self.index, salt))


@dataclass(frozen=True)
class FuzzSample:
    """One generated test case: a circuit and a device that fits it."""

    seed: FuzzSeed
    circuit_class: str
    topology_class: str
    circuit: Circuit
    device: Device

    def describe(self) -> str:
        return (
            f"seed={self.seed.seed} index={self.seed.index} "
            f"circuit={self.circuit_class}({self.circuit.num_qubits}q,"
            f"{len(self.circuit)}ops) "
            f"topology={self.topology_class}({self.device.name},"
            f"{self.device.num_qubits}q)"
        )


# ---------------------------------------------------------------------------
# Circuit classes
# ---------------------------------------------------------------------------

def _pathological_circuit(variant: str, rng: np.random.Generator) -> Circuit:
    n = int(rng.integers(2, MAX_CIRCUIT_QUBITS + 1))
    circuit = Circuit(n, name=f"patho_{variant}_{n}q")
    if variant == "empty":
        return circuit
    if variant == "one_qubit_only":
        for _ in range(int(rng.integers(1, 15))):
            q = int(rng.integers(n))
            circuit.add(str(rng.choice(["x", "h", "t", "s", "z"])), q)
        return circuit
    if variant == "disconnected":
        # Two interaction islands with no cross edges (n >= 4).
        n = max(4, n)
        circuit = Circuit(n, name=f"patho_disconnected_{n}q")
        half = n // 2
        for _ in range(int(rng.integers(2, 10))):
            a, b = rng.choice(half, size=2, replace=False)
            circuit.cx(int(a), int(b))
            c, d = rng.choice(n - half, size=2, replace=False)
            circuit.cz(half + int(c), half + int(d))
        return circuit
    if variant == "duplicate_edge":
        # One pair hammered over and over: a maximally weighted edge.
        a, b = (0, 1) if n < 3 else tuple(
            int(q) for q in rng.choice(n, size=2, replace=False)
        )
        for _ in range(int(rng.integers(5, 25))):
            circuit.cx(a, b)
            if rng.random() < 0.3:
                circuit.h(a)
        return circuit
    if variant == "directive_spam":
        circuit.h(0)
        circuit.barrier()
        if n >= 2:
            circuit.cx(0, 1)
        circuit.barrier(0)
        for q in range(n):
            circuit.measure(q)
        return circuit
    if variant == "long_range_chain":
        # Nearest-neighbour chain plus one maximally long-range gate:
        # adversarial for look-ahead scoring on sparse topologies.
        for q in range(n - 1):
            circuit.cx(q, q + 1)
        circuit.cx(0, n - 1) if n > 2 else circuit.cx(0, 1)
        return circuit
    raise ValueError(f"unknown pathological variant {variant!r}")


def generate_circuit(circuit_class: str, rng: np.random.Generator) -> Circuit:
    """Draw one circuit of the given class from ``rng``."""
    if circuit_class == "random":
        num_qubits = int(rng.integers(2, MAX_CIRCUIT_QUBITS + 1))
        num_gates = int(rng.integers(1, 31))
        fraction = float(rng.uniform(0.1, 0.9))
        return random_circuits.random_circuit(
            num_qubits, num_gates, fraction, seed=int(rng.integers(2 ** 31))
        )
    if circuit_class == "qaoa":
        nodes = int(rng.integers(3, MAX_CIRCUIT_QUBITS + 1))
        max_edges = nodes * (nodes - 1) // 2
        edges = int(rng.integers(nodes - 1, max_edges + 1))
        instance = qaoa.random_maxcut_instance(
            nodes, edges, seed=int(rng.integers(2 ** 31))
        )
        return qaoa.qaoa_maxcut(
            nodes,
            instance,
            num_layers=int(rng.integers(1, 3)),
            seed=int(rng.integers(2 ** 31)),
        )
    if circuit_class == "reversible":
        num_qubits = int(rng.integers(3, MAX_CIRCUIT_QUBITS + 1))
        num_gates = int(rng.integers(1, 21))
        return reversible.random_reversible_circuit(
            num_qubits, num_gates, seed=int(rng.integers(2 ** 31))
        )
    if circuit_class == "pathological":
        variant = _PATHOLOGICAL_VARIANTS[
            int(rng.integers(len(_PATHOLOGICAL_VARIANTS)))
        ]
        return _pathological_circuit(variant, rng)
    raise ValueError(f"unknown circuit class {circuit_class!r}")


# ---------------------------------------------------------------------------
# Topology classes
# ---------------------------------------------------------------------------

def _random_connected_graph(
    num_qubits: int, rng: np.random.Generator
) -> CouplingGraph:
    """Random-degree connected simple graph: spanning tree + extra edges."""
    order = list(rng.permutation(num_qubits))
    edges = set()
    for i in range(1, num_qubits):
        j = int(rng.integers(i))
        edges.add(tuple(sorted((int(order[i]), int(order[j])))))
    candidates = [
        (a, b)
        for a in range(num_qubits)
        for b in range(a + 1, num_qubits)
        if (a, b) not in edges
    ]
    rng.shuffle(candidates)
    extra = int(rng.integers(0, len(candidates) + 1)) if candidates else 0
    for edge in candidates[:extra]:
        edges.add(edge)
    return CouplingGraph(
        num_qubits, sorted(edges), name=f"rand-{num_qubits}"
    )


def generate_topology(
    topology_class: str, min_qubits: int, rng: np.random.Generator
) -> Device:
    """Draw one device of the given class that fits ``min_qubits``."""
    width = max(1, min_qubits)
    if topology_class == "ring":
        n = max(3, width) + int(rng.integers(0, 4))
        return Device(ring(n), SURFACE17_CALIBRATION, CNOT_GATESET)
    if topology_class == "grid":
        rows = int(rng.integers(2, 4))
        cols = max(2, -(-width // rows) + int(rng.integers(0, 2)))
        return Device(grid(rows, cols), SURFACE17_CALIBRATION, CNOT_GATESET)
    if topology_class == "surface":
        # Crops of the Surface-17 lattice family (the paper's chips).
        n = max(width, int(rng.integers(7, 18)))
        return Device(
            surface_code_grid(n), SURFACE17_CALIBRATION, SURFACE17_GATESET
        )
    if topology_class == "random":
        n = width + int(rng.integers(0, 5))
        return Device(
            _random_connected_graph(max(2, n), rng),
            SURFACE17_CALIBRATION,
            CNOT_GATESET,
        )
    raise ValueError(f"unknown topology class {topology_class!r}")


def minimal_device(topology_class: str, min_qubits: int) -> Device:
    """The smallest device of a class fitting ``min_qubits`` (for shrinking).

    Deterministic (no RNG): the shrinker swaps a failing sample's device
    for this one and keeps the swap only if the failure survives.
    """
    width = max(1, min_qubits)
    if topology_class == "ring":
        return Device(ring(max(3, width)), SURFACE17_CALIBRATION, CNOT_GATESET)
    if topology_class == "grid":
        return Device(
            grid(2, max(2, -(-width // 2))), SURFACE17_CALIBRATION, CNOT_GATESET
        )
    if topology_class == "surface":
        return Device(
            surface_code_grid(max(2, width)),
            SURFACE17_CALIBRATION,
            SURFACE17_GATESET,
        )
    if topology_class == "random":
        # The minimal connected graph is a path.
        n = max(2, width)
        return Device(
            CouplingGraph(
                n, [(i, i + 1) for i in range(n - 1)], name=f"path-{n}"
            ),
            SURFACE17_CALIBRATION,
            CNOT_GATESET,
        )
    raise ValueError(f"unknown topology class {topology_class!r}")


# ---------------------------------------------------------------------------
# Samples
# ---------------------------------------------------------------------------

def generate_sample(seed: FuzzSeed) -> FuzzSample:
    """The sample at coordinates ``seed`` — pure function of its fields.

    Classes are assigned round-robin over the 16 circuit x topology
    combinations, so any block of >= 16 consecutive indices covers every
    generator-class pairing.
    """
    circuit_class = CIRCUIT_CLASSES[seed.index % len(CIRCUIT_CLASSES)]
    topology_class = TOPOLOGY_CLASSES[
        (seed.index // len(CIRCUIT_CLASSES)) % len(TOPOLOGY_CLASSES)
    ]
    rng = seed.rng()
    circuit = generate_circuit(circuit_class, rng)
    device = generate_topology(topology_class, circuit.num_qubits, rng)
    return FuzzSample(seed, circuit_class, topology_class, circuit, device)


def sample_block(
    seed: int, count: int, start: int = 0
) -> Iterator[FuzzSample]:
    """Yield the ``count`` samples of block ``seed`` from ``start`` on."""
    for index in range(start, start + count):
        yield generate_sample(FuzzSeed(seed, index))
