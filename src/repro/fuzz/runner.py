"""The fuzzing loop: sample, check, shrink, dump reproducers.

:func:`run_fuzz` drives a fixed seed block through the invariant bank,
shrinks every failure to a minimal reproducer and writes it out as a
QASM file plus a JSON sidecar (seed coordinates, invariant, message) so
``repro.fuzz.generator.FuzzSeed(seed, index)`` — or the dumped QASM —
replays it exactly.

:func:`planted_bug_selftest` is the harness's proof of life: it plants a
deliberate off-by-one in the incremental router's tie-break, fuzzes a
small block, and demands that the differential bank both *finds* the bug
and *shrinks* it to a handful of gates.  A green self-test means a red
fuzz run is worth trusting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..circuit import to_qasm
from ..compiler.routing import SabreRouter
from ..telemetry import metrics as telemetry_metrics
from ..telemetry import tracing
from ..telemetry.tracing import span
from ..workloads.suite import BenchmarkCircuit
from .generator import FuzzSeed, generate_sample
from .invariants import (
    Invariant,
    RouterFactory,
    SabreTwinInvariant,
    SkipInvariant,
    check_sample,
    default_bank,
    parallel_determinism_failure,
)
from .shrink import ShrinkResult, shrink_sample

__all__ = [
    "InvariantStats",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "planted_bug_selftest",
]

#: Gate-count ceiling the self-test demands of its shrunk reproducer.
SELFTEST_SHRINK_LIMIT = 8


@dataclass
class InvariantStats:
    """Per-invariant tallies over one fuzz run."""

    ok: int = 0
    skipped: int = 0
    failed: int = 0

    @property
    def checked(self) -> int:
        return self.ok + self.skipped + self.failed


@dataclass
class FuzzFailure:
    """One invariant violation, with its (possibly shrunk) reproducer."""

    seed: int
    index: int
    invariant: str
    message: str
    circuit_class: str
    topology_class: str
    shrunk: Optional[ShrinkResult] = None
    artifacts: List[Path] = field(default_factory=list)

    def describe(self) -> str:
        reproducer = self.shrunk.sample if self.shrunk else None
        size = (
            f" (shrunk to {len(reproducer.circuit)} gates, "
            f"{reproducer.circuit.num_qubits}q)"
            if reproducer is not None
            else ""
        )
        return (
            f"[{self.invariant}] seed={self.seed} index={self.index} "
            f"{self.circuit_class}/{self.topology_class}: "
            f"{self.message}{size}"
        )


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` call learned."""

    seed: int
    samples: int
    stats: Dict[str, InvariantStats]
    failures: List[FuzzFailure]
    parallel_message: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures and self.parallel_message is None

    def format(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.samples} samples, "
            f"{len(self.failures)} failure(s)"
        ]
        width = max((len(name) for name in self.stats), default=0)
        for name, stat in self.stats.items():
            lines.append(
                f"  {name:{width}s}  ok={stat.ok:4d}  "
                f"skipped={stat.skipped:4d}  failed={stat.failed:4d}"
            )
        if self.parallel_message is not None:
            lines.append(f"  parallel determinism: {self.parallel_message}")
        else:
            lines.append("  parallel determinism: ok")
        for failure in self.failures:
            lines.append("  " + failure.describe())
        return "\n".join(lines)


def _still_fails_predicate(invariant: Invariant):
    """Sample predicate: the same invariant still reports a failure."""

    def still_fails(sample) -> bool:
        try:
            return invariant.check(sample) is not None
        except SkipInvariant:
            return False

    return still_fails


def _dump_reproducer(
    out_dir: Path, failure: FuzzFailure
) -> List[Path]:
    """Write ``{seed}-{index}-{invariant}.qasm`` + ``.json`` sidecar."""
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{failure.seed}-{failure.index}-{failure.invariant}"
    sample = failure.shrunk.sample if failure.shrunk else None
    paths: List[Path] = []
    if sample is not None:
        qasm_path = out_dir / f"{stem}.qasm"
        qasm_path.write_text(to_qasm(sample.circuit))
        paths.append(qasm_path)
    sidecar = {
        "seed": failure.seed,
        "index": failure.index,
        "invariant": failure.invariant,
        "message": failure.message,
        "circuit_class": failure.circuit_class,
        "topology_class": failure.topology_class,
    }
    if failure.shrunk is not None:
        sidecar["shrunk"] = {
            "gates_before": failure.shrunk.gates_before,
            "gates_after": failure.shrunk.gates_after,
            "qubits_before": failure.shrunk.qubits_before,
            "qubits_after": failure.shrunk.qubits_after,
            "probes": failure.shrunk.probes,
            "device": failure.shrunk.sample.device.name,
        }
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(sidecar, indent=2) + "\n")
    paths.append(json_path)
    return paths


def run_fuzz(
    seed: int = 2022,
    samples: int = 200,
    bank: Optional[Sequence[Invariant]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    shrink: bool = True,
    router_factory: Optional[RouterFactory] = None,
    check_parallel: bool = True,
) -> FuzzReport:
    """Fuzz one seed block through the invariant bank.

    Parameters
    ----------
    seed / samples:
        Block coordinates: indices ``0..samples-1`` of block ``seed``.
    bank:
        Invariants to evaluate; defaults to the full
        :func:`~repro.fuzz.invariants.default_bank` (built with
        ``router_factory`` when one is given).
    out_dir:
        Where to dump minimal reproducers; ``None`` skips dumping.
    shrink:
        Minimize failing samples before dumping.
    router_factory:
        Router substitution hook, threaded into the default bank (the
        self-test plants its buggy router here).
    check_parallel:
        Also run the once-per-block ``workers=1`` vs ``workers=2`` suite
        determinism comparison on a slice of the generated samples.
    """
    if bank is None:
        bank = (
            default_bank(router_factory)
            if router_factory is not None
            else default_bank()
        )
    stats: Dict[str, InvariantStats] = {
        invariant.name: InvariantStats() for invariant in bank
    }
    failures: List[FuzzFailure] = []
    by_name = {invariant.name: invariant for invariant in bank}
    routable: List[BenchmarkCircuit] = []

    telemetry_on = tracing.is_enabled()
    with span("fuzz.run", seed=seed, samples=samples):
        for index in range(samples):
            sample = generate_sample(FuzzSeed(seed, index))
            if telemetry_on:
                telemetry_metrics.counter(
                    "fuzz_samples", circuit_class=sample.circuit_class
                ).inc()
            if (
                len(routable) < 6
                and len(sample.circuit) > 0
                and sample.circuit.num_qubits <= sample.device.num_qubits
            ):
                routable.append(
                    BenchmarkCircuit(sample.circuit, "random", sample.describe())
                )
            for outcome in check_sample(sample, bank):
                stat = stats[outcome.invariant]
                if telemetry_on:
                    telemetry_metrics.counter(
                        "fuzz_checks",
                        invariant=outcome.invariant,
                        status=outcome.status,
                    ).inc()
                if outcome.status == "ok":
                    stat.ok += 1
                    continue
                if outcome.status == "skipped":
                    stat.skipped += 1
                    continue
                stat.failed += 1
                failure = _register_failure(
                    seed, index, sample, outcome, by_name, shrink, out_dir
                )
                failures.append(failure)

    parallel_message = None
    if check_parallel and routable:
        parallel_message = parallel_determinism_failure(routable)

    return FuzzReport(
        seed=seed,
        samples=samples,
        stats=stats,
        failures=failures,
        parallel_message=parallel_message,
    )


def _register_failure(
    seed, index, sample, outcome, by_name, shrink, out_dir
) -> FuzzFailure:
    """Build (and optionally shrink/dump) one invariant violation."""
    if tracing.is_enabled():
        telemetry_metrics.counter(
            "fuzz_invariant_failures", invariant=outcome.invariant
        ).inc()
    failure = FuzzFailure(
        seed=seed,
        index=index,
        invariant=outcome.invariant,
        message=outcome.message,
        circuit_class=sample.circuit_class,
        topology_class=sample.topology_class,
    )
    if shrink:
        failure.shrunk = shrink_sample(
            sample,
            _still_fails_predicate(by_name[outcome.invariant]),
        )
    if out_dir is not None:
        failure.artifacts = _dump_reproducer(Path(out_dir), failure)
    return failure


# ---------------------------------------------------------------------------
# Planted-bug self-test
# ---------------------------------------------------------------------------

class _PlantedOffByOneRouter(SabreRouter):
    """SABRE with an off-by-one in the tie-break index.

    Whenever a swap-selection round has two or more tied candidates, the
    buggy router picks the slot *after* the RNG draw — exactly the class
    of silent divergence the differential bank exists to catch.
    """

    def _select(self, scores) -> int:
        import math as _math

        best_score = _math.inf
        best = []
        for index, score in enumerate(scores):
            if score < best_score - 1e-12:
                best_score = score
                best = [index]
            elif abs(score - best_score) <= 1e-12:
                best.append(index)
        draw = int(self._rng.integers(len(best)))
        return best[(draw + 1) % len(best)]  # planted bug


def planted_bug_selftest(
    seed: int = 2022, samples: int = 48
) -> FuzzReport:
    """Prove the harness finds and shrinks a real router bug.

    Plants the off-by-one tie-break in the *incremental* router only, so
    the ``sabre_twin`` differential invariant is the one that must fire.
    Raises :class:`RuntimeError` unless at least one failure is found
    and at least one reproducer shrinks to ``<= 8`` gates.
    """

    def buggy_factory(route_seed, incremental):
        router_cls = _PlantedOffByOneRouter if incremental else SabreRouter
        return router_cls(seed=route_seed, incremental=incremental)

    report = run_fuzz(
        seed=seed,
        samples=samples,
        bank=[SabreTwinInvariant(buggy_factory)],
        out_dir=None,
        shrink=True,
        router_factory=None,
        check_parallel=False,
    )
    if not report.failures:
        raise RuntimeError(
            "self-test failed: the planted off-by-one tie-break was not "
            f"detected in {samples} samples"
        )
    best = min(
        (
            f.shrunk
            for f in report.failures
            if f.shrunk is not None
        ),
        key=lambda s: len(s.sample.circuit),
        default=None,
    )
    if best is None or len(best.sample.circuit) > SELFTEST_SHRINK_LIMIT:
        size = "none" if best is None else str(len(best.sample.circuit))
        raise RuntimeError(
            "self-test failed: planted bug found but not shrunk to "
            f"<= {SELFTEST_SHRINK_LIMIT} gates (best reproducer: {size})"
        )
    return report
