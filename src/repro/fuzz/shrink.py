"""Delta-debugging minimizer for failing fuzz samples.

Given a sample and a predicate ``still_fails``, the shrinker greedily
applies three reductions while the predicate keeps holding:

1. **Drop gates** — ddmin-style chunk removal, halving the chunk size
   down to single gates and restarting after every successful cut.
2. **Merge qubits** — redirect one qubit onto another (dropping gates
   that would collapse onto a single wire) and compact the register.
3. **Shrink the topology** — swap the device for the deterministic
   smallest member of its class that still fits the circuit.

Shrinking is deterministic: same failing sample and predicate, same
minimal reproducer.  Predicates are treated as opaque — any exception
they raise counts as "does not fail", so flaky oracles cannot trap the
shrinker in an invalid region.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..circuit import Circuit, Gate
from .generator import FuzzSample, minimal_device

__all__ = ["ShrinkResult", "shrink_circuit", "shrink_sample"]

CircuitPredicate = Callable[[Circuit], bool]
SamplePredicate = Callable[[FuzzSample], bool]

#: Safety valve: total number of predicate evaluations per shrink.
_MAX_PROBES = 2000


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized sample plus the bookkeeping of how it got there."""

    sample: FuzzSample
    gates_before: int
    gates_after: int
    qubits_before: int
    qubits_after: int
    probes: int

    @property
    def reduced(self) -> bool:
        return (
            self.gates_after < self.gates_before
            or self.qubits_after < self.qubits_before
        )


class _ProbeBudget:
    """Counts predicate calls and swallows predicate exceptions."""

    def __init__(self, predicate, limit: int = _MAX_PROBES) -> None:
        self._predicate = predicate
        self._limit = limit
        self.used = 0

    def __call__(self, candidate) -> bool:
        if self.used >= self._limit:
            return False
        self.used += 1
        try:
            return bool(self._predicate(candidate))
        except Exception:
            return False


def _rebuild(circuit: Circuit, gates: List[Gate]) -> Circuit:
    return Circuit(circuit.num_qubits, gates, name=circuit.name)


def _compact(circuit: Circuit) -> Circuit:
    """Renumber to the touched qubits only (width >= 1)."""
    used = sorted({q for gate in circuit.gates for q in gate.qubits})
    if not used:
        return Circuit(1, name=circuit.name)
    mapping = {q: i for i, q in enumerate(used)}
    gates = [
        replace(gate, qubits=tuple(mapping[q] for q in gate.qubits))
        for gate in circuit.gates
    ]
    return Circuit(len(used), gates, name=circuit.name)


def _drop_gates(circuit: Circuit, still_fails: CircuitPredicate) -> Circuit:
    """ddmin over the gate list: remove chunks, restart on success."""
    gates = list(circuit.gates)
    chunk = max(1, len(gates) // 2)
    while chunk >= 1:
        start = 0
        removed_any = False
        while start < len(gates):
            candidate = gates[:start] + gates[start + chunk:]
            if still_fails(_rebuild(circuit, candidate)):
                gates = candidate
                removed_any = True
                # Do not advance: the next chunk slid into this slot.
            else:
                start += chunk
        if removed_any and chunk > 1:
            chunk = max(1, len(gates) // 2)
        else:
            chunk //= 2
    return _rebuild(circuit, gates)


def _merge_qubits(circuit: Circuit, still_fails: CircuitPredicate) -> Circuit:
    """Try redirecting each qubit onto a lower one, compacting after."""
    current = circuit
    improved = True
    while improved:
        improved = False
        for victim in range(current.num_qubits - 1, 0, -1):
            for target in range(victim):
                gates: List[Gate] = []
                for gate in current.gates:
                    qubits = tuple(
                        target if q == victim else q for q in gate.qubits
                    )
                    if len(set(qubits)) != len(qubits):
                        continue  # gate collapsed onto one wire: drop it
                    gates.append(replace(gate, qubits=qubits))
                candidate = _compact(_rebuild(current, gates))
                if candidate.num_qubits >= current.num_qubits:
                    continue
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current


def shrink_circuit(
    circuit: Circuit, still_fails: CircuitPredicate
) -> Circuit:
    """Minimize ``circuit`` while ``still_fails`` keeps returning true.

    The caller guarantees ``still_fails(circuit)`` holds on entry; the
    result is a (possibly identical) circuit on which it still holds.
    """
    budget = _ProbeBudget(still_fails)
    current = _drop_gates(circuit, budget)
    current = _merge_qubits(current, budget)
    # A second gate-drop pass: merging often unlocks more removals.
    current = _drop_gates(current, budget)
    compacted = _compact(current)
    if compacted.num_qubits < current.num_qubits and budget(compacted):
        current = compacted
    return current


def shrink_sample(
    sample: FuzzSample, still_fails: SamplePredicate
) -> ShrinkResult:
    """Minimize a failing sample: gates, then qubits, then the device."""
    budget = _ProbeBudget(still_fails)

    def circuit_fails(candidate: Circuit) -> bool:
        return budget(replace(sample, circuit=candidate))

    circuit = _drop_gates(sample.circuit, circuit_fails)
    circuit = _merge_qubits(circuit, circuit_fails)
    circuit = _drop_gates(circuit, circuit_fails)
    compacted = _compact(circuit)
    if compacted.num_qubits < circuit.num_qubits and circuit_fails(compacted):
        circuit = compacted
    current = replace(sample, circuit=circuit)

    try:
        smallest = minimal_device(
            sample.topology_class, circuit.num_qubits
        )
    except ValueError:
        smallest = None
    if (
        smallest is not None
        and smallest.num_qubits < current.device.num_qubits
    ):
        candidate = replace(current, device=smallest)
        if budget(candidate):
            current = candidate

    return ShrinkResult(
        sample=current,
        gates_before=len(sample.circuit),
        gates_after=len(current.circuit),
        qubits_before=sample.circuit.num_qubits,
        qubits_after=current.circuit.num_qubits,
        probes=budget.used,
    )
