"""The invariant bank: differential and metamorphic oracles per sample.

Two families of checks run on every :class:`~repro.fuzz.generator.FuzzSample`:

*Differential* — every optimised path against its live reference twin:
incremental vs legacy SABRE routing, batched vs serial equivalence
oracle, vectorized vs per-node Table I metrics, ``workers=1`` vs
``workers=N`` suite records.

*Metamorphic* — properties that need no second implementation: mapping
preserves unitary semantics, routed circuits respect the coupling graph,
metric vectors are invariant under qubit relabeling, the fidelity product
is invariant under commuting-gate exchange, QASM serialisation
round-trips.

Each invariant reports ``None`` (holds), a failure message, or raises
:class:`SkipInvariant` when the sample is outside its domain (e.g. too
wide for the dense oracle).  The bank is a plain list, so the runner, the
self-test and the tests can compose restricted banks freely.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuit import Circuit, parse_qasm, to_qasm
from ..compiler import (
    Layout,
    QuantumMapper,
    SabreRouter,
    TrivialPlacement,
    decompose_circuit,
)
from ..compiler.routing import NoiseAwareRouter, Router, RoutingResult
from ..core.interaction import InteractionGraph
from ..core.metrics import BETWEENNESS_METRICS, compute_metrics, metrics_twin_deltas
from ..hardware.drift import CalibrationStream, DriftPlan
from ..metrics.fidelity import product_fidelity
from .generator import FuzzSample

__all__ = [
    "SkipInvariant",
    "Invariant",
    "InvariantOutcome",
    "RouterFactory",
    "default_bank",
    "check_sample",
    "parallel_determinism_failure",
    "INVARIANT_NAMES",
]

#: Builds the router pair under test: ``factory(seed, incremental)``.
#: The self-test swaps in a deliberately broken incremental router here.
RouterFactory = Callable[[Optional[int], bool], Router]

#: Betweenness twins may differ by float accumulation order up to this.
_BETWEENNESS_ATOL = 1e-12

#: Tolerance for metamorphic metric comparisons (relabeling changes the
#: float accumulation order of reductions like ``std`` and assortativity).
_RELABEL_ATOL = 1e-9


class SkipInvariant(Exception):
    """Raised by a check whose sample lies outside the invariant's domain."""


def _default_router_factory(seed: Optional[int], incremental: bool) -> Router:
    return SabreRouter(seed=seed, incremental=incremental)


def _route_seed(sample: FuzzSample) -> int:
    # Per-sample tie-break seed: deterministic, but varied across the
    # block so the fuzzer explores many RNG paths.
    return 11 + sample.seed.index


class Invariant:
    """One oracle: a name plus a ``check(sample)`` returning a verdict."""

    name = "invariant"

    def check(self, sample: FuzzSample) -> Optional[str]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Differential invariants (optimised path vs reference twin)
# ---------------------------------------------------------------------------

class _RoutingMixin:
    """Shared routing plumbing for the router-level invariants."""

    def __init__(self, router_factory: RouterFactory = _default_router_factory):
        self.router_factory = router_factory

    @staticmethod
    def _prepare(sample: FuzzSample) -> Tuple[Circuit, Layout]:
        if sample.circuit.num_qubits > sample.device.num_qubits:
            raise SkipInvariant("circuit wider than device")
        circuit = decompose_circuit(sample.circuit, sample.device.gate_set)
        layout = Layout.trivial(circuit.num_qubits, sample.device.num_qubits)
        return circuit, layout

    def _route(self, sample: FuzzSample, incremental: bool) -> RoutingResult:
        circuit, layout = self._prepare(sample)
        router = self.router_factory(_route_seed(sample), incremental)
        return router.route(circuit, sample.device, layout)


class SabreTwinInvariant(_RoutingMixin, Invariant):
    """Incremental and legacy SABRE must emit identical routed circuits."""

    name = "sabre_twin"

    def check(self, sample: FuzzSample) -> Optional[str]:
        fast = self._route(sample, True)
        slow = self._route(sample, False)
        if fast.swap_count != slow.swap_count:
            return (
                f"swap counts diverge: incremental={fast.swap_count} "
                f"legacy={slow.swap_count}"
            )
        if fast.circuit != slow.circuit:
            for position, (a, b) in enumerate(
                zip(fast.circuit.gates, slow.circuit.gates)
            ):
                if a != b:
                    return (
                        f"routed gates diverge at position {position}: "
                        f"incremental={a} legacy={b}"
                    )
            return (
                f"routed lengths diverge: incremental={len(fast.circuit)} "
                f"legacy={len(slow.circuit)}"
            )
        if fast.final_layout != slow.final_layout:
            return "final layouts diverge"
        return None


class WorkspaceRoutingTwinInvariant(_RoutingMixin, Invariant):
    """Workspace-buffer SABRE scoring must match the allocating path.

    The zero-copy scoring transport (``use_workspace=True``: masked
    ``copyto`` substitution, flat-index gathers and ``out=`` reductions
    into preallocated buffers) is pure plumbing — same arithmetic, same
    RNG draws — so the routed circuit must be bit-for-bit identical to
    the reference implementation's.
    """

    name = "workspace_routing_twin"

    def check(self, sample: FuzzSample) -> Optional[str]:
        circuit, layout = self._prepare(sample)
        reference = self.router_factory(_route_seed(sample), True)
        if not hasattr(reference, "workspace_twin"):
            raise SkipInvariant("router has no workspace path")
        workspace = reference.workspace_twin()
        if not getattr(workspace, "use_workspace", False):
            # Factory already produced a workspace router; flip back so
            # the pair is (workspace on, workspace off) either way.
            reference, workspace = workspace, reference
        fast = workspace.route(circuit, sample.device, layout)
        slow = reference.route(circuit, sample.device, layout)
        if fast.swap_count != slow.swap_count:
            return (
                f"swap counts diverge: workspace={fast.swap_count} "
                f"reference={slow.swap_count}"
            )
        if fast.circuit != slow.circuit:
            return "routed circuits diverge between scoring transports"
        if fast.final_layout != slow.final_layout:
            return "final layouts diverge between scoring transports"
        return None


class WorkspaceSimTwinInvariant(Invariant):
    """Workspace-buffer batched simulation must match the allocating path.

    ``run_batched(..., workspace=Workspace())`` ping-pongs two
    preallocated buffers through ``np.dot(..., out=)`` — the contiguous
    operands are bitwise equal to the ones ``np.tensordot`` builds
    internally, so final state batches must agree bit for bit, not just
    within tolerance.
    """

    name = "workspace_sim_twin"

    #: Dense batched simulation is cheap only for narrow circuits.
    max_qubits = 12

    def check(self, sample: FuzzSample) -> Optional[str]:
        import numpy as np

        from ..sim.statevector import (
            Workspace,
            random_product_states,
            run_batched,
        )

        circuit = sample.circuit
        if circuit.num_qubits > self.max_qubits:
            raise SkipInvariant("circuit too wide for the dense twin")
        if circuit.num_qubits == 0:
            raise SkipInvariant("empty register")
        states = random_product_states(
            circuit.num_qubits, 2, sample.seed.rng(salt=2)
        )
        try:
            reference = run_batched(circuit, states)
            buffered = run_batched(circuit, states, workspace=Workspace())
        except ValueError as exc:  # measure/reset cannot be batched
            raise SkipInvariant(str(exc)) from None
        if (
            np.ascontiguousarray(reference).tobytes()
            != np.ascontiguousarray(buffered).tobytes()
        ):
            delta = float(np.max(np.abs(reference - buffered)))
            return (
                "workspace simulation diverges from the reference path "
                f"(max |delta|={delta!r})"
            )
        return None


class RoutedCouplingInvariant(_RoutingMixin, Invariant):
    """Routed output must respect the coupling graph and count its swaps."""

    name = "routed_coupling"

    def check(self, sample: FuzzSample) -> Optional[str]:
        result = self._route(sample, True)
        coupling = sample.device.coupling
        for position, gate in enumerate(result.circuit):
            if gate.is_two_qubit and not coupling.are_adjacent(*gate.qubits):
                return (
                    f"gate {gate.name}{gate.qubits} at position {position} "
                    "acts on uncoupled qubits"
                )
        emitted = sum(1 for g in result.circuit if g.name == "swap")
        if emitted != result.swap_count:
            return (
                f"swap_count={result.swap_count} but {emitted} swap "
                "gates emitted"
            )
        images = list(result.final_layout.values())
        if len(set(images)) != len(images):
            return "final layout is not injective"
        return None


class _MappingMixin:
    """Shared full-pipeline mapping for the oracle-level invariants."""

    def __init__(self, router_factory: RouterFactory = _default_router_factory):
        self.router_factory = router_factory

    def _map(self, sample: FuzzSample):
        if sample.circuit.num_qubits > sample.device.num_qubits:
            raise SkipInvariant("circuit wider than device")
        mapper = QuantumMapper(
            TrivialPlacement(),
            self.router_factory(_route_seed(sample), True),
            name="fuzz",
        )
        return mapper.map(sample.circuit, sample.device)


class OracleTwinInvariant(_MappingMixin, Invariant):
    """Batched and serial equivalence oracles must agree on the verdict."""

    name = "oracle_twin"

    def check(self, sample: FuzzSample) -> Optional[str]:
        result = self._map(sample)
        try:
            batched = result.verify(trials=2, seed=_route_seed(sample), batched=True)
            serial = result.verify(trials=2, seed=_route_seed(sample), batched=False)
        except ValueError as exc:  # too wide for the dense oracle
            raise SkipInvariant(str(exc)) from None
        if batched != serial:
            return f"oracle verdicts diverge: batched={batched} serial={serial}"
        return None


class MetricsTwinInvariant(Invariant):
    """Vectorized Table I metrics must match the per-node reference."""

    name = "metrics_twin"

    def check(self, sample: FuzzSample) -> Optional[str]:
        graph = InteractionGraph.from_circuit(sample.circuit)
        deltas = metrics_twin_deltas(graph)
        for name, delta in deltas.items():
            tolerance = _BETWEENNESS_ATOL if name in BETWEENNESS_METRICS else 0.0
            if delta > tolerance or math.isnan(delta):
                return f"metric {name} diverges by {delta!r}"
        return None


# ---------------------------------------------------------------------------
# Metamorphic invariants
# ---------------------------------------------------------------------------

class MappingSemanticsInvariant(_MappingMixin, Invariant):
    """Mapping must preserve the circuit's unitary semantics."""

    name = "mapping_semantics"

    def check(self, sample: FuzzSample) -> Optional[str]:
        result = self._map(sample)
        try:
            verdict = result.verify(trials=2, seed=_route_seed(sample))
        except ValueError as exc:
            raise SkipInvariant(str(exc)) from None
        if not verdict:
            return "mapped circuit is not equivalent to the original"
        return None


class RelabelMetricsInvariant(Invariant):
    """Metric vectors are invariant under qubit relabeling (isomorphism)."""

    name = "relabel_metrics"

    def check(self, sample: FuzzSample) -> Optional[str]:
        circuit = sample.circuit
        n = circuit.num_qubits
        if n < 2:
            raise SkipInvariant("nothing to permute")
        perm = sample.seed.rng(salt=1).permutation(n)
        relabeled = circuit.remap_qubits(
            {q: int(perm[q]) for q in range(n)}, num_qubits=n
        )
        base = compute_metrics(InteractionGraph.from_circuit(circuit)).as_dict()
        moved = compute_metrics(
            InteractionGraph.from_circuit(relabeled)
        ).as_dict()
        for name in base:
            if abs(base[name] - moved[name]) > _RELABEL_ATOL:
                return (
                    f"metric {name} not relabel-invariant: "
                    f"{base[name]!r} vs {moved[name]!r}"
                )
        return None


class CommutationFidelityInvariant(Invariant):
    """Exchanging disjoint adjacent gates keeps the fidelity product."""

    name = "commutation_fidelity"

    def check(self, sample: FuzzSample) -> Optional[str]:
        gates = list(sample.circuit.gates)
        swap_at = None
        for i in range(len(gates) - 1):
            a, b = gates[i], gates[i + 1]
            if a.is_unitary and b.is_unitary and not a.overlaps(b):
                swap_at = i
                break
        if swap_at is None:
            raise SkipInvariant("no disjoint adjacent gate pair")
        exchanged = list(gates)
        exchanged[swap_at], exchanged[swap_at + 1] = (
            exchanged[swap_at + 1],
            exchanged[swap_at],
        )
        calibration = sample.device.calibration
        before = product_fidelity(sample.circuit, calibration)
        after = product_fidelity(
            Circuit(sample.circuit.num_qubits, exchanged), calibration
        )
        if not math.isclose(before, after, rel_tol=1e-12, abs_tol=1e-300):
            return (
                f"fidelity product changed under commutation: "
                f"{before!r} -> {after!r}"
            )
        return None


class QasmRoundTripInvariant(Invariant):
    """``parse(dump(c))`` reproduces gates, params and qubit order."""

    name = "qasm_roundtrip"

    def check(self, sample: FuzzSample) -> Optional[str]:
        circuit = sample.circuit
        parsed = parse_qasm(to_qasm(circuit))
        if parsed.num_qubits != circuit.num_qubits:
            return (
                f"register width changed: {circuit.num_qubits} -> "
                f"{parsed.num_qubits}"
            )
        if len(parsed) != len(circuit):
            return f"gate count changed: {len(circuit)} -> {len(parsed)}"
        for position, (a, b) in enumerate(zip(circuit, parsed)):
            if a.name != b.name or a.qubits != b.qubits:
                return (
                    f"gate {position} changed: {a.name}{a.qubits} -> "
                    f"{b.name}{b.qubits}"
                )
            if len(a.params) != len(b.params) or any(
                abs(p - q) > 1e-12 for p, q in zip(a.params, b.params)
            ):
                return (
                    f"gate {position} params changed: {a.params} -> {b.params}"
                )
        return None


class _PinnedTableRouter(NoiseAwareRouter):
    """Noise-aware router forced onto one explicit distance table.

    Bypasses the memoised cache entirely so a differential check can
    route the *same* circuit against two independently produced tables
    (incrementally migrated vs wholesale rebuilt) and compare outcomes.
    """

    def __init__(self, table, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        if table.flags.writeable:
            table = table.copy()
            table.setflags(write=False)
        self._table = table

    def _distance_matrix(self, device):
        return self._table

    def _build_distance_matrix(self, device):
        return self._table


class DriftReplayTwinInvariant(_RoutingMixin, Invariant):
    """Incremental drift invalidation vs wholesale rebuild, bit for bit.

    Replays a seeded :class:`~repro.hardware.drift.DriftPlan` against
    the sample's device: after every update the incrementally migrated
    noise distance table (only rows reachable through changed edges
    recomputed) must be **byte-identical** to a from-scratch rebuild,
    and routing the sample circuit against either table must emit the
    same routed circuit.  One divergent float anywhere — a row the
    flagging logic failed to invalidate — fails the sample.
    """

    name = "drift_replay_twin"

    #: Updates replayed per sample; across a 200-sample block every
    #: topology class sees dozens of distinct seeded traces.
    num_updates = 2

    def check(self, sample: FuzzSample) -> Optional[str]:
        circuit, layout = self._prepare(sample)
        device = sample.device
        seed = _route_seed(sample)
        plan = DriftPlan.generate(
            device, num_updates=self.num_updates, seed=seed
        )
        stream = CalibrationStream(device.calibration)
        router = NoiseAwareRouter(seed=seed)
        incremental = router._build_distance_matrix(device)
        wholesale = incremental
        current = device
        for step, delta in enumerate(plan.updates):
            diff = stream.apply(delta)
            drifted = replace(current, calibration=stream.calibration)
            incremental, _, _ = router.refresh_distance_matrix(
                current, drifted, incremental, diff.changed_edges
            )
            wholesale = router._build_distance_matrix(drifted)
            if incremental.tobytes() != wholesale.tobytes():
                bad = int((incremental != wholesale).sum())
                return (
                    f"distance tables diverge after update "
                    f"{step + 1}/{len(plan)}: {bad} entries differ"
                )
            current = drifted
        fast = _PinnedTableRouter(incremental, seed=seed).route(
            circuit, current, layout.copy()
        )
        slow = _PinnedTableRouter(wholesale, seed=seed).route(
            circuit, current, layout.copy()
        )
        if [(g.name, g.qubits) for g in fast.circuit] != [
            (g.name, g.qubits) for g in slow.circuit
        ]:
            return "routed circuits diverge between drift-refreshed tables"
        if fast.final_layout != slow.final_layout:
            return "final layouts diverge between drift-refreshed tables"
        return None


# ---------------------------------------------------------------------------
# Suite-level differential invariant (runs once per fuzz run)
# ---------------------------------------------------------------------------

def parallel_determinism_failure(
    benchmarks: Sequence,
    workers_pair: Tuple[int, int] = (1, 2),
) -> Optional[str]:
    """Byte-compare suite records across two worker counts.

    Runs :func:`~repro.runtime.run_suite_parallel` twice on the same
    benchmarks and compares the pickled mapping records, the failure
    roster and the skip list — everything except wall times, which are
    legitimately nondeterministic.  Returns ``None`` when identical.
    """
    from ..runtime import run_suite_parallel

    first, second = (
        run_suite_parallel(benchmarks, workers=w) for w in workers_pair
    )
    if pickle.dumps(first.records) != pickle.dumps(second.records):
        return (
            f"records diverge between workers={workers_pair[0]} and "
            f"workers={workers_pair[1]}"
        )
    roster = lambda report: [(f.name, f.error) for f in report.failures]  # noqa: E731
    if roster(first) != roster(second):
        return "failure rosters diverge across worker counts"
    if first.skipped != second.skipped:
        return "skip lists diverge across worker counts"
    return None


# ---------------------------------------------------------------------------
# Bank assembly
# ---------------------------------------------------------------------------

def default_bank(
    router_factory: RouterFactory = _default_router_factory,
) -> List[Invariant]:
    """The full per-sample invariant bank, in evaluation order."""
    return [
        SabreTwinInvariant(router_factory),
        WorkspaceRoutingTwinInvariant(router_factory),
        RoutedCouplingInvariant(router_factory),
        OracleTwinInvariant(router_factory),
        MetricsTwinInvariant(),
        WorkspaceSimTwinInvariant(),
        MappingSemanticsInvariant(router_factory),
        RelabelMetricsInvariant(),
        CommutationFidelityInvariant(),
        QasmRoundTripInvariant(),
        DriftReplayTwinInvariant(router_factory),
    ]


INVARIANT_NAMES: Tuple[str, ...] = tuple(i.name for i in default_bank())


class InvariantOutcome:
    """Verdict of one invariant on one sample."""

    __slots__ = ("invariant", "status", "message")

    def __init__(self, invariant: str, status: str, message: str = "") -> None:
        self.invariant = invariant
        self.status = status  # "ok" | "skipped" | "failed"
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f": {self.message}" if self.message else ""
        return f"<{self.invariant} {self.status}{suffix}>"


def check_sample(
    sample: FuzzSample, bank: Optional[Sequence[Invariant]] = None
) -> List[InvariantOutcome]:
    """Evaluate every invariant of ``bank`` on one sample."""
    outcomes: List[InvariantOutcome] = []
    for invariant in bank if bank is not None else default_bank():
        try:
            message = invariant.check(sample)
        except SkipInvariant as skip:
            outcomes.append(
                InvariantOutcome(invariant.name, "skipped", str(skip))
            )
            continue
        if message is None:
            outcomes.append(InvariantOutcome(invariant.name, "ok"))
        else:
            outcomes.append(
                InvariantOutcome(invariant.name, "failed", message)
            )
    return outcomes
