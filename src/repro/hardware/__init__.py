"""Hardware models: coupling graphs, calibrations, gate sets, devices."""

from .topology import CouplingGraph, TopologyError
from .library import (
    TOPOLOGY_GENERATORS,
    fully_connected,
    grid,
    heavy_hex,
    line,
    ring,
    rotated_surface_code,
    square_grid,
    star,
    surface7,
    surface17,
    surface_code_grid,
)
from .calibration import (
    Calibration,
    IBM_FALCON_CALIBRATION,
    IDEAL_CALIBRATION,
    SURFACE17_CALIBRATION,
)
from .gateset import (
    CNOT_GATESET,
    GateSet,
    IBM_BASIS_GATESET,
    SURFACE17_GATESET,
    UNRESTRICTED_GATESET,
)
from .device import (
    Device,
    all_to_all_device,
    grid_device,
    line_device,
    surface17_device,
    surface17_extended_device,
    surface7_device,
)
from .config import device_from_json, device_to_json, load_device, save_device
from .drift import (
    CalibrationDelta,
    CalibrationStream,
    DriftDiff,
    DriftPlan,
    diff_calibrations,
)
from .registry import DEVICE_SPECS, resolve_device

__all__ = [
    "DEVICE_SPECS",
    "resolve_device",
    "CouplingGraph",
    "TopologyError",
    "TOPOLOGY_GENERATORS",
    "fully_connected",
    "grid",
    "heavy_hex",
    "line",
    "ring",
    "rotated_surface_code",
    "square_grid",
    "star",
    "surface7",
    "surface17",
    "surface_code_grid",
    "Calibration",
    "CalibrationDelta",
    "CalibrationStream",
    "DriftDiff",
    "DriftPlan",
    "diff_calibrations",
    "IBM_FALCON_CALIBRATION",
    "IDEAL_CALIBRATION",
    "SURFACE17_CALIBRATION",
    "CNOT_GATESET",
    "GateSet",
    "IBM_BASIS_GATESET",
    "SURFACE17_GATESET",
    "UNRESTRICTED_GATESET",
    "Device",
    "all_to_all_device",
    "grid_device",
    "line_device",
    "surface17_device",
    "surface17_extended_device",
    "surface7_device",
    "device_from_json",
    "device_to_json",
    "load_device",
    "save_device",
]
