"""Device-spec registry: one string names one device, everywhere.

``resolve_device`` turns the spec strings used across the CLI, the
service layer and the benchmarks into :class:`~repro.hardware.device.
Device` instances: the named chips (``surface7``/``surface17``/
``surface100``) plus the parametric families (``surface:N``, ``line:N``,
``grid:RxC``).  Specs are the unit of device identity in the service's
result-cache key, so resolution must be deterministic: the same spec
always yields a device with the same coupling graph and calibration.
"""

from __future__ import annotations

from typing import Callable, Dict

from .device import (
    Device,
    grid_device,
    line_device,
    surface17_device,
    surface17_extended_device,
    surface7_device,
)

__all__ = ["DEVICE_SPECS", "resolve_device"]

#: Named (non-parametric) device constructors.
DEVICE_SPECS: Dict[str, Callable[[], Device]] = {
    "surface7": surface7_device,
    "surface17": surface17_device,
    "surface100": lambda: surface17_extended_device(100),
}

_SPEC_HELP = "surface7|surface17|surface100|surface:N|line:N|grid:RxC"


def resolve_device(spec: str) -> Device:
    """Resolve a device spec string; raises ``ValueError`` when unknown."""
    if spec in DEVICE_SPECS:
        return DEVICE_SPECS[spec]()
    try:
        if spec.startswith("line:"):
            return line_device(int(spec.split(":", 1)[1]))
        if spec.startswith("grid:"):
            rows, cols = spec.split(":", 1)[1].lower().split("x")
            return grid_device(int(rows), int(cols))
        if spec.startswith("surface:"):
            return surface17_extended_device(int(spec.split(":", 1)[1]))
    except ValueError as exc:
        raise ValueError(f"bad device spec {spec!r} (use {_SPEC_HELP})") from exc
    raise ValueError(f"unknown device {spec!r} (use {_SPEC_HELP})")
