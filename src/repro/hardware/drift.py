"""Streaming calibration drift: deltas, epochs and replayable traces.

The paper's hardware-aware passes treat calibration as a *living* input:
per-edge error rates move between (and during) batch windows, and
routing quality depends on the current numbers, not last night's.  This
module is the streaming side of that story:

* a :class:`CalibrationDelta` is one incremental update — new absolute
  error rates for a handful of edges and/or qubits;
* a :class:`CalibrationStream` owns the current :class:`~repro.hardware.
  calibration.Calibration`, applies deltas, bumps a **monotonic epoch**
  per update and emits a structural :class:`DriftDiff` (which edges and
  qubits actually changed, by how much) to its subscribers;
* a :class:`DriftPlan` is a seeded, fully deterministic drift trace —
  the same ``(seed, device)`` pair always produces the same update
  sequence, so a drift scenario replays identically in one process, in
  every warm worker, and in the fuzz harness.

Consumers use the diff to invalidate derived state *incrementally*:
:func:`repro.compiler.routing.refresh_distance_caches` migrates the
memoised noise-distance tables by recomputing only the rows reachable
through changed edges (the wholesale rebuild stays available as its
differential twin), and the service pins each in-flight job to the
epoch it was admitted under (see docs/calibration.md).

Telemetry: ``calibration_epoch`` (gauge, labelled by stream name)
tracks the live epoch; ``drift_updates_total`` counts applied deltas.
The invalidation counters (``drift_invalidations_total``,
``drift_rows_recomputed_total``) live with the cache refresh logic in
:mod:`repro.compiler.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..telemetry import metrics as telemetry_metrics
from .calibration import Calibration

__all__ = [
    "CalibrationDelta",
    "DriftDiff",
    "CalibrationStream",
    "DriftPlan",
    "diff_calibrations",
]

#: Error rates are kept strictly inside (0, MAX_EDGE_ERROR] so the
#: noise-aware metric's ``-log(1 - 3e)`` stays finite.
MAX_EDGE_ERROR = 0.3
MIN_ERROR = 1e-6

EdgeKey = Tuple[int, int]


def _edge_key(edge: Union[EdgeKey, FrozenSet[int], Iterable[int]]) -> EdgeKey:
    a, b = sorted(edge)
    return (int(a), int(b))


@dataclass(frozen=True)
class CalibrationDelta:
    """One streaming update: new absolute error rates for a few sites.

    ``edges`` / ``qubits`` are sorted tuples of ``(site, new_error)``
    pairs — tuples rather than dicts so a delta is hashable, picklable
    and canonical (two deltas with the same content compare equal
    regardless of construction order).
    """

    edges: Tuple[Tuple[EdgeKey, float], ...] = ()
    qubits: Tuple[Tuple[int, float], ...] = ()

    @classmethod
    def of(
        cls,
        edge_errors: Optional[Mapping] = None,
        qubit_errors: Optional[Mapping[int, float]] = None,
    ) -> "CalibrationDelta":
        """Build a delta from plain dicts (any edge key spelling)."""
        edges = tuple(
            sorted((_edge_key(k), float(v)) for k, v in (edge_errors or {}).items())
        )
        qubits = tuple(
            sorted((int(q), float(v)) for q, v in (qubit_errors or {}).items())
        )
        return cls(edges=edges, qubits=qubits)

    def __post_init__(self) -> None:
        for site, value in tuple(self.edges) + tuple(self.qubits):
            if not 0.0 <= value < 1.0:
                raise ValueError(
                    f"drift error for {site!r} must be in [0, 1), got {value}"
                )

    @property
    def empty(self) -> bool:
        return not self.edges and not self.qubits

    def edge_errors(self) -> Dict[FrozenSet[int], float]:
        """Edge overrides keyed the way :class:`Calibration` stores them."""
        return {frozenset(edge): value for edge, value in self.edges}

    def qubit_errors(self) -> Dict[int, float]:
        return dict(self.qubits)


@dataclass(frozen=True)
class DriftDiff:
    """Structural diff of one applied delta: what actually changed.

    ``edge_changes`` / ``qubit_changes`` carry ``(site, old, new)`` for
    every site whose *effective* error rate moved (a delta writing the
    value a site already had produces no change entry).  ``epoch`` is
    the stream's epoch *after* the update.
    """

    epoch: int
    edge_changes: Tuple[Tuple[EdgeKey, float, float], ...] = ()
    qubit_changes: Tuple[Tuple[int, float, float], ...] = ()
    #: True when a *default* rate differs between the calibrations (only
    #: possible via :func:`diff_calibrations` on arbitrary pairs, never
    #: via stream deltas) — consumers must then rebuild wholesale.
    defaults_changed: bool = False

    @property
    def empty(self) -> bool:
        return (
            not self.edge_changes
            and not self.qubit_changes
            and not self.defaults_changed
        )

    @property
    def changed_edges(self) -> Tuple[EdgeKey, ...]:
        return tuple(edge for edge, _, _ in self.edge_changes)

    @property
    def changed_qubits(self) -> Tuple[int, ...]:
        return tuple(q for q, _, _ in self.qubit_changes)

    def magnitude(self) -> float:
        """Largest absolute error-rate movement in this diff."""
        moves = [abs(new - old) for _, old, new in self.edge_changes]
        moves += [abs(new - old) for _, old, new in self.qubit_changes]
        return max(moves, default=0.0)


def diff_calibrations(
    old: Calibration, new: Calibration, epoch: int = 0
) -> DriftDiff:
    """Structural diff between two calibrations (effective rates).

    Compares per-edge and per-qubit *effective* error rates (override or
    default) over the union of override sites; a change to any default
    field is reported via ``defaults_changed`` since it moves every
    un-overridden site at once.
    """
    edge_changes: List[Tuple[EdgeKey, float, float]] = []
    for key in sorted(
        {_edge_key(k) for k in old.edge_errors} | {_edge_key(k) for k in new.edge_errors}
    ):
        frozen = frozenset(key)
        before = old.edge_errors.get(frozen, old.two_qubit_error)
        after = new.edge_errors.get(frozen, new.two_qubit_error)
        if before != after:
            edge_changes.append((key, before, after))
    qubit_changes: List[Tuple[int, float, float]] = []
    for q in sorted(set(old.qubit_errors) | set(new.qubit_errors)):
        before = old.qubit_errors.get(q, old.single_qubit_error)
        after = new.qubit_errors.get(q, new.single_qubit_error)
        if before != after:
            qubit_changes.append((q, before, after))
    defaults_changed = (
        old.single_qubit_error != new.single_qubit_error
        or old.two_qubit_error != new.two_qubit_error
        or old.measurement_error != new.measurement_error
        or old.crosstalk_error != new.crosstalk_error
    )
    return DriftDiff(
        epoch=epoch,
        edge_changes=tuple(edge_changes),
        qubit_changes=tuple(qubit_changes),
        defaults_changed=defaults_changed,
    )


#: Subscriber signature: ``fn(diff, old_calibration, new_calibration)``.
DriftListener = Callable[[DriftDiff, Calibration, Calibration], None]


class CalibrationStream:
    """The living calibration: applies deltas, bumps epochs, emits diffs.

    The epoch is monotonic and bumps on **every** applied delta, even a
    no-op one — an epoch names a point in the update stream, not a
    distinct value (two epochs may share identical calibrations, e.g.
    after an A→B→A drift round trip; the digest-keyed result cache then
    legitimately serves the epoch-A artifact).
    """

    def __init__(
        self, calibration: Calibration, epoch: int = 0, name: str = ""
    ) -> None:
        self._calibration = calibration
        self._epoch = int(epoch)
        self.name = name or (calibration.name or "default")
        self._listeners: List[DriftListener] = []
        telemetry_metrics.gauge(
            "calibration_epoch", stream=self.name
        ).set(float(self._epoch))

    @property
    def calibration(self) -> Calibration:
        return self._calibration

    @property
    def epoch(self) -> int:
        return self._epoch

    def subscribe(self, listener: DriftListener) -> None:
        """Register a callback invoked after every applied delta."""
        self._listeners.append(listener)

    def apply(self, delta: CalibrationDelta) -> DriftDiff:
        """Apply one delta; returns the structural diff at the new epoch."""
        old = self._calibration
        new = old.with_updates(
            edge_errors=delta.edge_errors(), qubit_errors=delta.qubit_errors()
        )
        self._epoch += 1
        diff = diff_calibrations(old, new, epoch=self._epoch)
        self._calibration = new
        telemetry_metrics.gauge(
            "calibration_epoch", stream=self.name
        ).set(float(self._epoch))
        telemetry_metrics.counter(
            "drift_updates_total", stream=self.name
        ).inc()
        for listener in self._listeners:
            listener(diff, old, new)
        return diff


@dataclass(frozen=True)
class DriftPlan:
    """A seeded, replayable drift trace: ``seed`` in, same updates out.

    The plan is pure data — generating it twice from the same seed and
    device yields equal update tuples, and replaying it against any
    number of streams (one per worker, one in the parent, one in a
    test) walks every one of them through identical calibrations.  That
    is the whole point: a drift scenario is two integers, not a log
    file.
    """

    seed: int
    updates: Tuple[CalibrationDelta, ...] = ()

    @classmethod
    def generate(
        cls,
        device,
        num_updates: int,
        seed: int = 2022,
        max_edges_per_update: int = 3,
        magnitude: float = 0.5,
        qubit_fraction: float = 0.25,
    ) -> "DriftPlan":
        """Draw a deterministic trace of ``num_updates`` deltas.

        Each update multiplies the current effective error of 1..
        ``max_edges_per_update`` coupling edges by a factor in
        ``[1 - magnitude, 1 + magnitude]`` (clipped into
        ``(MIN_ERROR, MAX_EDGE_ERROR]``), occasionally touching a
        qubit's one-qubit rate too.  Rates wander multiplicatively, so
        long traces explore both drifted-up and recovered regimes.
        """
        if num_updates < 0:
            raise ValueError("num_updates must be >= 0")
        edges = sorted(_edge_key(e) for e in device.coupling.edges)
        calibration = device.calibration
        rng = np.random.default_rng((int(seed), 0xD21F7))
        # Track the *current* effective rates so successive updates
        # compound instead of re-drifting the original numbers.
        edge_now: Dict[EdgeKey, float] = {
            e: calibration.edge_errors.get(frozenset(e), calibration.two_qubit_error)
            for e in edges
        }
        qubit_now: Dict[int, float] = {
            q: calibration.qubit_errors.get(q, calibration.single_qubit_error)
            for q in range(device.num_qubits)
        }
        updates: List[CalibrationDelta] = []
        for _ in range(num_updates):
            edge_errors: Dict[EdgeKey, float] = {}
            if edges:
                count = int(rng.integers(1, min(max_edges_per_update, len(edges)) + 1))
                chosen = rng.choice(len(edges), size=count, replace=False)
                for index in sorted(int(i) for i in chosen):
                    edge = edges[index]
                    factor = 1.0 + magnitude * float(rng.uniform(-1.0, 1.0))
                    value = min(
                        MAX_EDGE_ERROR, max(MIN_ERROR, edge_now[edge] * factor)
                    )
                    edge_errors[edge] = value
                    edge_now[edge] = value
            qubit_errors: Dict[int, float] = {}
            if device.num_qubits and float(rng.random()) < qubit_fraction:
                q = int(rng.integers(device.num_qubits))
                factor = 1.0 + magnitude * float(rng.uniform(-1.0, 1.0))
                value = min(0.1, max(MIN_ERROR, qubit_now[q] * factor))
                qubit_errors[q] = value
                qubit_now[q] = value
            updates.append(
                CalibrationDelta.of(
                    edge_errors=edge_errors, qubit_errors=qubit_errors
                )
            )
        return cls(seed=int(seed), updates=tuple(updates))

    def __len__(self) -> int:
        return len(self.updates)

    def replay(
        self,
        stream: CalibrationStream,
        on_update: Optional[Callable[[DriftDiff], None]] = None,
    ) -> List[DriftDiff]:
        """Apply every update to ``stream`` in order; returns the diffs."""
        diffs: List[DriftDiff] = []
        for delta in self.updates:
            diff = stream.apply(delta)
            if on_update is not None:
                on_update(diff)
            diffs.append(diff)
        return diffs
