"""The :class:`Device`: topology + calibration + primitive gate set.

A device is the complete hardware description a compiler target needs —
the bottom layer of the full stack whose parameters "pierce bottom-up
through the stack" (Sec. I of the paper).  Convenience constructors build
the configurations used by the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .calibration import Calibration, IDEAL_CALIBRATION, SURFACE17_CALIBRATION
from .gateset import GateSet, SURFACE17_GATESET, CNOT_GATESET, UNRESTRICTED_GATESET
from .library import (
    fully_connected,
    grid,
    line,
    surface17,
    surface7,
    surface_code_grid,
)
from .topology import CouplingGraph

__all__ = [
    "Device",
    "surface7_device",
    "surface17_device",
    "surface17_extended_device",
    "grid_device",
    "line_device",
    "all_to_all_device",
]


@dataclass(frozen=True)
class Device:
    """A compiler target: coupling graph, calibration and gate set.

    Attributes
    ----------
    coupling:
        The chip's qubit-connectivity graph.
    calibration:
        Error/timing model (defaults to the Versluis Surface-17 numbers).
    gate_set:
        Natively supported gate kinds (defaults to the Surface-17 set).
    name:
        Report label; defaults to the coupling graph's name.
    """

    coupling: CouplingGraph
    calibration: Calibration = SURFACE17_CALIBRATION
    gate_set: GateSet = SURFACE17_GATESET
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.coupling.name or "device")

    @property
    def num_qubits(self) -> int:
        return self.coupling.num_qubits

    def fits(self, num_virtual_qubits: int) -> bool:
        """True when a circuit of that width can be placed on this chip."""
        return num_virtual_qubits <= self.num_qubits


def surface7_device(
    calibration: Optional[Calibration] = None, gate_set: Optional[GateSet] = None
) -> Device:
    """The 7-qubit chip of the paper's Fig. 2."""
    return Device(
        surface7(),
        calibration or SURFACE17_CALIBRATION,
        gate_set or SURFACE17_GATESET,
    )


def surface17_device(
    calibration: Optional[Calibration] = None, gate_set: Optional[GateSet] = None
) -> Device:
    """The 17-qubit Surface-17 chip (Versluis et al.)."""
    return Device(
        surface17(),
        calibration or SURFACE17_CALIBRATION,
        gate_set or SURFACE17_GATESET,
    )


def surface17_extended_device(
    num_qubits: int = 100,
    calibration: Optional[Calibration] = None,
    gate_set: Optional[GateSet] = None,
) -> Device:
    """The paper's evaluation device: Surface-17 extended to ``num_qubits``.

    Fig. 3 and Fig. 5 map every benchmark onto this 100-qubit
    configuration with the Versluis error rates.
    """
    return Device(
        surface_code_grid(num_qubits),
        calibration or SURFACE17_CALIBRATION,
        gate_set or SURFACE17_GATESET,
    )


def grid_device(
    rows: int,
    cols: int,
    calibration: Optional[Calibration] = None,
    gate_set: Optional[GateSet] = None,
) -> Device:
    """A square-grid device with CNOT basis (generic superconducting chip)."""
    return Device(
        grid(rows, cols),
        calibration or SURFACE17_CALIBRATION,
        gate_set or CNOT_GATESET,
    )


def line_device(
    num_qubits: int,
    calibration: Optional[Calibration] = None,
    gate_set: Optional[GateSet] = None,
) -> Device:
    """A linear-nearest-neighbour device."""
    return Device(
        line(num_qubits),
        calibration or SURFACE17_CALIBRATION,
        gate_set or CNOT_GATESET,
    )


def all_to_all_device(
    num_qubits: int,
    calibration: Optional[Calibration] = None,
    gate_set: Optional[GateSet] = None,
) -> Device:
    """Fully connected device (no routing needed; trapped-ion style)."""
    return Device(
        fully_connected(num_qubits),
        calibration or IDEAL_CALIBRATION,
        gate_set or UNRESTRICTED_GATESET,
    )
