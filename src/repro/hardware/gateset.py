"""Primitive gate sets: which gate kinds a device executes natively.

The paper lists the primitive gate set among the hardware constraints the
mapper must satisfy ("a quantum chip gate set does not necessarily have to
match the one used in the circuit to be run").  A :class:`GateSet` is a
predicate over gate kinds; the decomposition pass rewrites foreign gates
into members (see :mod:`repro.compiler.decompose`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from ..circuit.gates import Gate, STANDARD_GATES

__all__ = [
    "GateSet",
    "SURFACE17_GATESET",
    "IBM_BASIS_GATESET",
    "CNOT_GATESET",
    "UNRESTRICTED_GATESET",
]

_DIRECTIVES = frozenset({"measure", "reset", "barrier"})


@dataclass(frozen=True)
class GateSet:
    """A named set of natively supported gate kinds.

    Directives (measure/reset/barrier) are always allowed — they are
    control operations, not unitaries.
    """

    name: str
    gate_names: FrozenSet[str]

    def __post_init__(self) -> None:
        unknown = set(self.gate_names) - set(STANDARD_GATES)
        if unknown:
            raise ValueError(f"unknown gate kinds in gate set: {sorted(unknown)}")

    @classmethod
    def of(cls, name: str, names: Iterable[str]) -> "GateSet":
        return cls(name, frozenset(names))

    def supports(self, gate: Gate) -> bool:
        """True when the device can execute ``gate`` natively."""
        return gate.name in self.gate_names or gate.name in _DIRECTIVES

    def supports_name(self, gate_name: str) -> bool:
        return gate_name in self.gate_names or gate_name in _DIRECTIVES

    @property
    def two_qubit_primitives(self) -> FrozenSet[str]:
        """Native two-qubit gate kinds (what SWAPs decompose into)."""
        return frozenset(
            n for n in self.gate_names if STANDARD_GATES[n].num_qubits == 2
        )

    def __contains__(self, gate_name: str) -> bool:
        return self.supports_name(gate_name)


#: QuTech CC-Light / Surface-17 primitive set: single-qubit Cliffords +
#: T and rotations, with CZ as the only two-qubit primitive.
SURFACE17_GATESET = GateSet.of(
    "surface17",
    ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "cz"],
)

#: IBM basis: {rz, sx, x} + CNOT.
IBM_BASIS_GATESET = GateSet.of("ibm", ["i", "rz", "sx", "x", "cx"])

#: Text-book basis: every standard one-qubit gate + CNOT.
CNOT_GATESET = GateSet.of(
    "cnot",
    [
        "i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "rx", "ry", "rz", "p", "u2", "u3", "cx",
    ],
)

#: Accepts everything (mapping without decomposition).
UNRESTRICTED_GATESET = GateSet.of("unrestricted", list(STANDARD_GATES))
