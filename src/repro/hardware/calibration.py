"""Device calibration: error rates, durations and coherence times.

The paper computes circuit fidelity "as product of fidelities for all
one- and two-qubit gates in the circuit, based on the error-rate values
taken from [32]" (Versluis et al., Phys. Rev. Applied 8, 034021).  This
module encodes those numbers as :data:`SURFACE17_CALIBRATION` and provides
the lookup machinery (with optional per-qubit / per-edge overrides) that
the fidelity model and the noise-aware passes consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet

from ..circuit.gates import Gate

__all__ = [
    "Calibration",
    "SURFACE17_CALIBRATION",
    "IBM_FALCON_CALIBRATION",
    "IDEAL_CALIBRATION",
]


@dataclass(frozen=True)
class Calibration:
    """Gate-level error and timing model of a device.

    Attributes
    ----------
    single_qubit_error:
        Default error probability of any one-qubit unitary.
    two_qubit_error:
        Default error probability of any two-qubit unitary (CZ/CNOT/SWAP
        primitives; a decomposed SWAP pays per primitive instead).
    measurement_error:
        Readout assignment error probability.
    single_qubit_duration_ns / two_qubit_duration_ns /
    measurement_duration_ns:
        Gate durations in nanoseconds (used by the scheduler and the
        decoherence-aware fidelity model).
    t1_us / t2_us:
        Relaxation and dephasing times in microseconds.
    qubit_errors:
        Optional per-qubit override of the one-qubit error rate.
    edge_errors:
        Optional per-edge override of the two-qubit error rate, keyed by
        ``frozenset({a, b})``.
    """

    single_qubit_error: float = 0.001
    two_qubit_error: float = 0.01
    measurement_error: float = 0.01
    single_qubit_duration_ns: float = 20.0
    two_qubit_duration_ns: float = 40.0
    measurement_duration_ns: float = 300.0
    t1_us: float = 30.0
    t2_us: float = 20.0
    qubit_errors: Dict[int, float] = field(default_factory=dict)
    edge_errors: Dict[FrozenSet[int], float] = field(default_factory=dict)
    #: Extra error probability charged to each pair of *simultaneously
    #: executing two-qubit gates on adjacent edges* (gate-induced
    #: crosstalk; see repro.metrics.fidelity.crosstalk_fidelity).
    crosstalk_error: float = 0.005
    name: str = ""

    def __post_init__(self) -> None:
        for label, value in (
            ("single_qubit_error", self.single_qubit_error),
            ("two_qubit_error", self.two_qubit_error),
            ("measurement_error", self.measurement_error),
            ("crosstalk_error", self.crosstalk_error),
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{label} must be in [0, 1), got {value}")
        for label, value in (
            ("single_qubit_duration_ns", self.single_qubit_duration_ns),
            ("two_qubit_duration_ns", self.two_qubit_duration_ns),
            ("measurement_duration_ns", self.measurement_duration_ns),
            ("t1_us", self.t1_us),
            ("t2_us", self.t2_us),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")

    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Hashable fingerprint of every number that feeds a cost model.

        Acts as the calibration's *version*: two calibrations with equal
        keys produce identical error/timing lookups, so derived tables
        (e.g. the noise-aware router's distance matrix) may be shared.
        """
        return (
            self.single_qubit_error,
            self.two_qubit_error,
            self.measurement_error,
            self.single_qubit_duration_ns,
            self.two_qubit_duration_ns,
            self.measurement_duration_ns,
            self.t1_us,
            self.t2_us,
            self.crosstalk_error,
            tuple(sorted(self.qubit_errors.items())),
            tuple(
                sorted((tuple(sorted(k)), v) for k, v in self.edge_errors.items())
            ),
        )

    # ------------------------------------------------------------------
    def gate_error(self, gate: Gate) -> float:
        """Error probability of one gate application on physical qubits."""
        if gate.name == "barrier":
            return 0.0
        if gate.name == "measure":
            return self.measurement_error
        if gate.name == "reset":
            return self.measurement_error
        if gate.num_qubits == 1:
            return self.qubit_errors.get(gate.qubits[0], self.single_qubit_error)
        if gate.num_qubits == 2:
            key = frozenset(gate.qubits)
            return self.edge_errors.get(key, self.two_qubit_error)
        # Multi-qubit primitives cost like their CNOT decomposition; a
        # Toffoli needs six two-qubit gates.
        return min(0.999999, 6.0 * self.two_qubit_error)

    def gate_fidelity(self, gate: Gate) -> float:
        return 1.0 - self.gate_error(gate)

    def gate_duration_ns(self, gate: Gate) -> float:
        """Duration of one gate application in nanoseconds."""
        if gate.name == "barrier":
            return 0.0
        if gate.name in ("measure", "reset"):
            return self.measurement_duration_ns
        if gate.num_qubits == 1:
            return self.single_qubit_duration_ns
        if gate.num_qubits == 2:
            return self.two_qubit_duration_ns
        return 6.0 * self.two_qubit_duration_ns

    # ------------------------------------------------------------------
    def with_qubit_error(self, qubit: int, error: float) -> "Calibration":
        """Copy with a per-qubit one-qubit-gate error override."""
        overrides = dict(self.qubit_errors)
        overrides[qubit] = error
        return replace(self, qubit_errors=overrides)

    def with_edge_error(self, a: int, b: int, error: float) -> "Calibration":
        """Copy with a per-edge two-qubit-gate error override."""
        overrides = dict(self.edge_errors)
        overrides[frozenset((a, b))] = error
        return replace(self, edge_errors=overrides)

    def with_updates(
        self,
        edge_errors: "Dict[FrozenSet[int], float] | None" = None,
        qubit_errors: "Dict[int, float] | None" = None,
    ) -> "Calibration":
        """Copy with a batch of per-edge/per-qubit overrides merged in.

        The streaming-drift path (:mod:`repro.hardware.drift`) applies
        each :class:`~repro.hardware.drift.CalibrationDelta` through this
        method: existing overrides not named in the update are kept, and
        the result is a fresh frozen calibration whose
        :meth:`cache_key` reflects the new rates.
        """
        merged_edges = dict(self.edge_errors)
        for key, value in (edge_errors or {}).items():
            merged_edges[frozenset(key)] = value
        merged_qubits = dict(self.qubit_errors)
        for qubit, value in (qubit_errors or {}).items():
            merged_qubits[int(qubit)] = value
        return replace(
            self, edge_errors=merged_edges, qubit_errors=merged_qubits
        )

    def scaled(self, factor: float) -> "Calibration":
        """Copy with all error rates multiplied by ``factor`` (sweeps)."""
        clip = lambda e: min(0.999999, e * factor)  # noqa: E731
        return replace(
            self,
            single_qubit_error=clip(self.single_qubit_error),
            two_qubit_error=clip(self.two_qubit_error),
            measurement_error=clip(self.measurement_error),
            qubit_errors={q: clip(e) for q, e in self.qubit_errors.items()},
            edge_errors={k: clip(e) for k, e in self.edge_errors.items()},
        )


#: Error rates and timings of the Versluis et al. surface-code proposal:
#: 99.9% single-qubit and 99% CZ gate fidelity, 20/40 ns gate times,
#: transmon-typical coherence.  These are the numbers behind Fig. 3.
SURFACE17_CALIBRATION = Calibration(
    single_qubit_error=0.001,
    two_qubit_error=0.01,
    measurement_error=0.01,
    single_qubit_duration_ns=20.0,
    two_qubit_duration_ns=40.0,
    measurement_duration_ns=300.0,
    t1_us=30.0,
    t2_us=20.0,
    name="surface17-versluis",
)

#: Representative IBM Falcon-generation numbers, for cross-device sweeps.
IBM_FALCON_CALIBRATION = Calibration(
    single_qubit_error=0.0003,
    two_qubit_error=0.008,
    measurement_error=0.02,
    single_qubit_duration_ns=35.0,
    two_qubit_duration_ns=300.0,
    measurement_duration_ns=700.0,
    t1_us=100.0,
    t2_us=90.0,
    name="ibm-falcon",
)

#: Noise-free device (fidelity model degenerates to 1.0 everywhere).
IDEAL_CALIBRATION = Calibration(
    single_qubit_error=0.0,
    two_qubit_error=0.0,
    measurement_error=0.0,
    crosstalk_error=0.0,
    name="ideal",
)
