"""Coupling graphs: which pairs of physical qubits can interact.

The :class:`CouplingGraph` is the hardware-constraint object every mapping
pass consumes.  It is an undirected simple graph over physical qubit
indices ``0..num_qubits-1`` with cached all-pairs shortest-path data (the
router's inner loop is distance lookups, so those are precomputed into a
numpy matrix on first use).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["CouplingGraph", "TopologyError"]


class TopologyError(ValueError):
    """Raised for invalid coupling-graph constructions or queries."""


class CouplingGraph:
    """Undirected coupling graph of a quantum chip.

    Parameters
    ----------
    num_qubits:
        Number of physical qubits.
    edges:
        Iterable of undirected pairs ``(a, b)``; duplicates and reversed
        duplicates are merged, self-loops are rejected.
    name:
        Optional topology name (used in reports).
    positions:
        Optional ``{qubit: (x, y)}`` layout coordinates, for
        documentation, plotting and the lattice generators' tests.
    """

    def __init__(
        self,
        num_qubits: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "",
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        if num_qubits < 0:
            raise TopologyError("negative qubit count")
        self.num_qubits = int(num_qubits)
        self.name = name
        self.positions = dict(positions) if positions else None
        self._adjacency: List[Set[int]] = [set() for _ in range(self.num_qubits)]
        edge_set: Set[FrozenSet[int]] = set()
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise TopologyError(f"self-loop on qubit {a}")
            for q in (a, b):
                if not 0 <= q < self.num_qubits:
                    raise TopologyError(
                        f"edge ({a},{b}) leaves register of {self.num_qubits}"
                    )
            edge_set.add(frozenset((a, b)))
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._edges: Tuple[Tuple[int, int], ...] = tuple(
            sorted(tuple(sorted(e)) for e in edge_set)
        )
        self._distances: Optional[np.ndarray] = None
        self._next_hop: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of undirected edges ``(a, b)`` with ``a < b``."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, qubit: int) -> FrozenSet[int]:
        self._check(qubit)
        return frozenset(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        self._check(qubit)
        return len(self._adjacency[qubit])

    def max_degree(self) -> int:
        return max((len(a) for a in self._adjacency), default=0)

    def has_edge(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return b in self._adjacency[a]

    def are_adjacent(self, a: int, b: int) -> bool:
        """Alias used by routers; identical to :meth:`has_edge`."""
        return self.has_edge(a, b)

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise TopologyError(
                f"qubit {qubit} outside register of {self.num_qubits}"
            )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def _ensure_distances(self) -> None:
        if self._distances is not None:
            return
        n = self.num_qubits
        dist = np.full((n, n), -1, dtype=np.int32)
        if n == 0:
            self._distances = dist
            self._next_hop = dist.copy()
            return
        # All-sources BFS by boolean frontier expansion: level k holds every
        # (source, node) pair first reached after k hops.
        adjacency = np.zeros((n, n), dtype=bool)
        for a, b in self._edges:
            adjacency[a, b] = adjacency[b, a] = True
        np.fill_diagonal(dist, 0)
        reached = np.eye(n, dtype=bool)
        frontier = np.eye(n, dtype=bool)
        level = 0
        while frontier.any():
            level += 1
            frontier = (frontier @ adjacency) & ~reached
            dist[frontier] = level
            reached |= frontier
        # next_hop[a, b]: the smallest-index neighbor of a on a shortest
        # a->b path, found by comparing each neighbor's distance row
        # against dist[a, :] - 1 in bulk (disconnected pairs never match:
        # their -1 sentinel would need a neighbor at "distance" -2).
        hop = np.full((n, n), -1, dtype=np.int32)
        for a in range(n):
            if not self._adjacency[a]:
                continue
            neighbors = np.array(sorted(self._adjacency[a]), dtype=np.int32)
            on_path = dist[neighbors, :] == dist[a, :] - 1
            has_hop = on_path.any(axis=0)
            hop[a, has_hop] = neighbors[on_path.argmax(axis=0)[has_hop]]
        self._distances = dist
        self._next_hop = hop

    def distance(self, a: int, b: int) -> int:
        """Hop count between two physical qubits.

        Raises
        ------
        TopologyError
            If the qubits are in different connected components.
        """
        self._check(a)
        self._check(b)
        self._ensure_distances()
        d = int(self._distances[a, b])
        if d < 0:
            raise TopologyError(f"qubits {a} and {b} are disconnected")
        return d

    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop-count matrix (``-1`` marks disconnected pairs).

        Returns a read-only view; copy before modifying.
        """
        self._ensure_distances()
        view = self._distances.view()
        view.setflags(write=False)
        return view

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path from ``a`` to ``b`` inclusive."""
        self.distance(a, b)  # validates + ensures tables
        path = [a]
        current = a
        while current != b:
            current = int(self._next_hop[current, b])
            path.append(current)
        return path

    def diameter(self) -> int:
        """Longest shortest path; raises if the graph is disconnected."""
        if self.num_qubits == 0:
            return 0
        if not self.is_connected():
            raise TopologyError("diameter undefined on a disconnected graph")
        self._ensure_distances()
        return int(self._distances.max())

    def average_distance(self) -> float:
        """Mean hop count over distinct pairs (requires connectivity)."""
        if self.num_qubits < 2:
            return 0.0
        if not self.is_connected():
            raise TopologyError("average distance undefined when disconnected")
        self._ensure_distances()
        n = self.num_qubits
        return float(self._distances.sum()) / (n * (n - 1))

    def is_connected(self) -> bool:
        if self.num_qubits == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == self.num_qubits

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def truncate_connected(self, num_qubits: int) -> "CouplingGraph":
        """Keep a connected ``num_qubits``-node prefix in BFS order.

        Nodes are visited breadth-first from qubit 0 (ties broken by
        index), guaranteeing every prefix is connected; the kept nodes are
        relabelled ``0..num_qubits-1`` in visit order.  This is how the
        100-qubit "extended Surface-17" device of the paper's Fig. 3 is cut
        out of a larger surface-code lattice.
        """
        if num_qubits > self.num_qubits:
            raise TopologyError(
                f"cannot truncate {self.num_qubits} qubits to {num_qubits}"
            )
        if num_qubits == 0:
            return CouplingGraph(0, [], name=self.name)
        order: List[int] = []
        seen = {0}
        queue = deque([0])
        while queue and len(order) < num_qubits:
            current = queue.popleft()
            order.append(current)
            for neighbor in sorted(self._adjacency[current]):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        if len(order) < num_qubits:
            raise TopologyError("graph too disconnected to truncate")
        relabel = {old: new for new, old in enumerate(order)}
        kept = set(order)
        edges = [
            (relabel[a], relabel[b])
            for a, b in self._edges
            if a in kept and b in kept
        ]
        positions = None
        if self.positions:
            positions = {relabel[q]: self.positions[q] for q in order}
        return CouplingGraph(
            num_qubits, edges, name=f"{self.name}[:{num_qubits}]", positions=positions
        )

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (nodes carry positions)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self._edges)
        if self.positions:
            nx.set_node_attributes(graph, self.positions, "pos")
        return graph

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CouplingGraph):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self.num_qubits, self._edges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CouplingGraph{label}: {self.num_qubits} qubits, "
            f"{self.num_edges} edges>"
        )
