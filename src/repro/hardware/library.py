"""Topology generators: the chip layouts used by the paper and beyond.

The central ones are the QuTech surface-code lattices of Versluis et al.
(Phys. Rev. Applied 8, 034021): **Surface-7** (the paper's Fig. 2 chip),
**Surface-17** and the **100-qubit extension of Surface-17** on which every
mapping experiment of Fig. 3/5 runs.  The module also provides generic
grids, lines, rings, fully-connected graphs and IBM-style heavy-hex
lattices for the topology-sweep ablations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .topology import CouplingGraph, TopologyError

__all__ = [
    "surface7",
    "surface17",
    "rotated_surface_code",
    "surface_code_grid",
    "grid",
    "line",
    "ring",
    "fully_connected",
    "heavy_hex",
    "star",
    "TOPOLOGY_GENERATORS",
]


def surface7() -> CouplingGraph:
    """The Surface-7 chip of Versluis et al. / the paper's Fig. 2.

    Seven qubits in three diagonal rows (2-3-2); every qubit couples to
    its diagonal neighbours, giving the central qubit degree 4.
    """
    edges = [(0, 2), (0, 3), (1, 3), (1, 4), (2, 5), (3, 5), (3, 6), (4, 6)]
    positions = {
        0: (1.0, 2.0),
        1: (3.0, 2.0),
        2: (0.0, 1.0),
        3: (2.0, 1.0),
        4: (4.0, 1.0),
        5: (1.0, 0.0),
        6: (3.0, 0.0),
    }
    return CouplingGraph(7, edges, name="surface-7", positions=positions)


def rotated_surface_code(distance: int) -> CouplingGraph:
    """Coupling graph of a distance-``d`` rotated surface code chip.

    ``d**2`` data qubits sit on an integer grid, ``d**2 - 1`` ancillas on
    the dual (half-offset) grid: all ``(d-1)**2`` interior plaquettes plus
    alternating boundary plaquettes on each side.  Each ancilla couples to
    its 2 or 4 diagonal data neighbours — the familiar degree-<=4 lattice
    of superconducting surface-code devices (17 qubits for ``d=3``).

    Qubits are numbered row-major top-to-bottom in geometry order, so a
    BFS/row prefix of the lattice is connected.
    """
    if distance < 2:
        raise TopologyError("surface code distance must be >= 2")
    d = distance
    data = [(2 * col, 2 * row) for row in range(d) for col in range(d)]
    ancilla: List[Tuple[int, int]] = []
    for a in range(d + 1):  # half-grid column index, position x = 2a - 1
        for b in range(d + 1):  # half-grid row index, position y = 2b - 1
            x, y = 2 * a - 1, 2 * b - 1
            interior = 1 <= a <= d - 1 and 1 <= b <= d - 1
            top = b == 0 and 1 <= a <= d - 1 and a % 2 == 0
            bottom = b == d and 1 <= a <= d - 1 and a % 2 == 1
            left = a == 0 and 1 <= b <= d - 1 and b % 2 == 1
            right = a == d and 1 <= b <= d - 1 and b % 2 == 0
            if interior or top or bottom or left or right:
                ancilla.append((x, y))
    nodes = sorted(data + ancilla, key=lambda p: (p[1], p[0]))
    index = {pos: i for i, pos in enumerate(nodes)}
    data_set = set(data)
    edges = []
    for (x, y) in ancilla:
        for dx in (-1, 1):
            for dy in (-1, 1):
                neighbor = (x + dx, y + dy)
                if neighbor in data_set:
                    edges.append((index[(x, y)], index[neighbor]))
    positions = {i: (float(x), float(-y)) for (x, y), i in index.items()}
    return CouplingGraph(
        len(nodes), edges, name=f"surface-code-d{d}", positions=positions
    )


def surface17() -> CouplingGraph:
    """The 17-qubit Surface-17 chip (distance-3 rotated surface code)."""
    graph = rotated_surface_code(3)
    return CouplingGraph(
        graph.num_qubits, graph.edges, name="surface-17", positions=graph.positions
    )


def surface_code_grid(num_qubits: int) -> CouplingGraph:
    """Surface-code lattice extended/truncated to exactly ``num_qubits``.

    This reproduces the paper's evaluation device: "an extended 100-qubit
    version of the Surface-17 hardware configuration" (caption of Fig. 3).
    The smallest rotated-surface-code lattice with at least ``num_qubits``
    qubits is generated and cut down to a connected ``num_qubits``-node
    prefix in BFS order (see
    :meth:`~repro.hardware.topology.CouplingGraph.truncate_connected`).
    """
    if num_qubits < 1:
        raise TopologyError("need at least one qubit")
    if num_qubits <= 7:
        return surface7().truncate_connected(num_qubits)
    distance = 3
    while 2 * distance * distance - 1 < num_qubits:
        distance += 1
    lattice = rotated_surface_code(distance)
    if lattice.num_qubits == num_qubits:
        return lattice
    cut = lattice.truncate_connected(num_qubits)
    return CouplingGraph(
        cut.num_qubits,
        cut.edges,
        name=f"surface-code-{num_qubits}q",
        positions=cut.positions,
    )


def grid(rows: int, cols: int) -> CouplingGraph:
    """A ``rows x cols`` nearest-neighbour square grid."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    positions = {
        r * cols + c: (float(c), float(-r)) for r in range(rows) for c in range(cols)
    }
    return CouplingGraph(
        rows * cols, edges, name=f"grid-{rows}x{cols}", positions=positions
    )


def square_grid(num_qubits: int) -> CouplingGraph:
    """Near-square grid with exactly ``num_qubits`` qubits (BFS truncation)."""
    side = max(1, math.isqrt(num_qubits))
    if side * side < num_qubits:
        side += 1
    return grid(side, side).truncate_connected(num_qubits)


def line(num_qubits: int) -> CouplingGraph:
    """A 1D chain (linear nearest neighbour)."""
    if num_qubits < 1:
        raise TopologyError("need at least one qubit")
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    positions = {i: (float(i), 0.0) for i in range(num_qubits)}
    return CouplingGraph(num_qubits, edges, name=f"line-{num_qubits}", positions=positions)


def ring(num_qubits: int) -> CouplingGraph:
    """A 1D chain closed into a cycle."""
    if num_qubits < 3:
        raise TopologyError("a ring needs at least three qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    positions = {
        i: (
            math.cos(2 * math.pi * i / num_qubits),
            math.sin(2 * math.pi * i / num_qubits),
        )
        for i in range(num_qubits)
    }
    return CouplingGraph(num_qubits, edges, name=f"ring-{num_qubits}", positions=positions)


def fully_connected(num_qubits: int) -> CouplingGraph:
    """All-to-all connectivity (trapped-ion style; routing-free)."""
    if num_qubits < 1:
        raise TopologyError("need at least one qubit")
    edges = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"full-{num_qubits}")


def star(num_qubits: int) -> CouplingGraph:
    """One hub coupled to every other qubit (resonator-bus style)."""
    if num_qubits < 2:
        raise TopologyError("a star needs at least two qubits")
    edges = [(0, i) for i in range(1, num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"star-{num_qubits}")


def heavy_hex(rows: int = 2, cols: int = 2) -> CouplingGraph:
    """IBM-style heavy-hex lattice.

    Built as a hexagonal lattice with every edge subdivided by an extra
    qubit (the "heavy" flag qubits), which is exactly IBM's heavy-hex
    connectivity pattern; max degree 3.
    """
    import networkx as nx

    if rows < 1 or cols < 1:
        raise TopologyError("heavy-hex dimensions must be positive")
    hexagons = nx.hexagonal_lattice_graph(rows, cols)
    heavy = nx.Graph()
    nodes = sorted(hexagons.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    positions: Dict[int, Tuple[float, float]] = {}
    for node in nodes:
        pos = hexagons.nodes[node].get("pos", (float(node[0]), float(node[1])))
        positions[index[node]] = (float(pos[0]), float(pos[1]))
    next_id = len(nodes)
    edges = []
    for a, b in sorted(hexagons.edges()):
        midpoint = next_id
        next_id += 1
        pa, pb = positions[index[a]], positions[index[b]]
        positions[midpoint] = ((pa[0] + pb[0]) / 2, (pa[1] + pb[1]) / 2)
        edges.append((index[a], midpoint))
        edges.append((midpoint, index[b]))
    return CouplingGraph(
        next_id, edges, name=f"heavy-hex-{rows}x{cols}", positions=positions
    )


#: Name -> constructor map used by the topology-sweep benchmarks and CLI
#: examples.  Every generator takes a target qubit count.
TOPOLOGY_GENERATORS = {
    "line": line,
    "ring": ring,
    "grid": square_grid,
    "surface": surface_code_grid,
    "full": fully_connected,
    "star": star,
}
