"""Device description files (OpenQL-style JSON hardware configs).

OpenQL — the compiler whose trivial mapper the paper's experiments use —
describes chips through JSON "hardware configuration" files.  This module
round-trips :class:`~repro.hardware.device.Device` objects through an
equivalent JSON schema, so devices can be versioned alongside experiments
and foreign chips can be described without code::

    {
      "name": "my-chip",
      "qubits": 5,
      "edges": [[0, 1], [1, 2], ...],
      "gate_set": ["rz", "sx", "x", "cx"],
      "calibration": {"two_qubit_error": 0.01, ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from .calibration import Calibration
from .device import Device
from .gateset import GateSet
from .topology import CouplingGraph

__all__ = ["device_to_json", "device_from_json", "save_device", "load_device"]

_CALIBRATION_SCALARS = (
    "single_qubit_error",
    "two_qubit_error",
    "measurement_error",
    "crosstalk_error",
    "single_qubit_duration_ns",
    "two_qubit_duration_ns",
    "measurement_duration_ns",
    "t1_us",
    "t2_us",
)


def device_to_json(device: Device) -> str:
    """Serialise a device to the JSON hardware-config schema."""
    calibration = device.calibration
    payload: Dict = {
        "name": device.name,
        "qubits": device.num_qubits,
        "edges": [list(edge) for edge in device.coupling.edges],
        "gate_set": {
            "name": device.gate_set.name,
            "gates": sorted(device.gate_set.gate_names),
        },
        "calibration": {
            key: getattr(calibration, key) for key in _CALIBRATION_SCALARS
        },
    }
    payload["calibration"]["name"] = calibration.name
    if calibration.qubit_errors:
        payload["calibration"]["qubit_errors"] = {
            str(q): e for q, e in sorted(calibration.qubit_errors.items())
        }
    if calibration.edge_errors:
        payload["calibration"]["edge_errors"] = [
            [min(pair), max(pair), error]
            for pair, error in sorted(
                calibration.edge_errors.items(), key=lambda kv: sorted(kv[0])
            )
        ]
    if device.coupling.positions:
        payload["positions"] = {
            str(q): list(pos) for q, pos in sorted(device.coupling.positions.items())
        }
    return json.dumps(payload, indent=2) + "\n"


def device_from_json(text: str) -> Device:
    """Parse a JSON hardware config into a :class:`Device`.

    Raises
    ------
    ValueError
        On missing required fields or inconsistent data (the underlying
        validators of CouplingGraph / Calibration / GateSet apply).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid device JSON: {exc}") from None
    for required in ("qubits", "edges", "gate_set", "calibration"):
        if required not in payload:
            raise ValueError(f"device config missing {required!r}")

    positions = None
    if "positions" in payload:
        positions = {
            int(q): tuple(pos) for q, pos in payload["positions"].items()
        }
    coupling = CouplingGraph(
        int(payload["qubits"]),
        [tuple(edge) for edge in payload["edges"]],
        name=payload.get("name", ""),
        positions=positions,
    )

    gate_config = payload["gate_set"]
    gate_set = GateSet.of(
        gate_config.get("name", "custom"), gate_config["gates"]
    )

    calibration_config = dict(payload["calibration"])
    qubit_errors = {
        int(q): float(e)
        for q, e in calibration_config.pop("qubit_errors", {}).items()
    }
    edge_errors = {
        frozenset((int(a), int(b))): float(e)
        for a, b, e in calibration_config.pop("edge_errors", [])
    }
    calibration = Calibration(
        qubit_errors=qubit_errors,
        edge_errors=edge_errors,
        **calibration_config,
    )
    return Device(
        coupling,
        calibration,
        gate_set,
        name=payload.get("name", coupling.name),
    )


def save_device(device: Device, path: Union[str, Path]) -> Path:
    """Write a device's JSON config to ``path``."""
    path = Path(path)
    path.write_text(device_to_json(device))
    return path


def load_device(path: Union[str, Path]) -> Device:
    """Read a device from a JSON config file."""
    return device_from_json(Path(path).read_text())
