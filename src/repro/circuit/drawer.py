"""Plain-text circuit rendering.

``draw(circuit)`` produces a fixed-width ASCII diagram — one wire per
qubit, one column per ASAP moment, with multi-qubit gates drawn as
control dots, targets and vertical connectors.  Used by the examples and
handy when debugging mapping output.
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit
from .gates import Gate

__all__ = ["draw"]

_SYMBOLS_2Q = {
    "cx": ("●", "X"),
    "cz": ("●", "●"),
    "cp": ("●", "P"),
    "crx": ("●", "Rx"),
    "cry": ("●", "Ry"),
    "crz": ("●", "Rz"),
    "ch": ("●", "H"),
    "swap": ("x", "x"),
    "iswap": ("*", "*"),
    "iswapdg": ("*", "*"),
    "rzz": ("ZZ", "ZZ"),
    "rxx": ("XX", "XX"),
    "ryy": ("YY", "YY"),
}
_SYMBOLS_3Q = {
    "ccx": ("●", "●", "X"),
    "ccz": ("●", "●", "●"),
    "cswap": ("●", "x", "x"),
}


def _format_angle(value: float) -> str:
    text = f"{value:.2g}"
    return text


def _cell_labels(gate: Gate) -> List[str]:
    """Per-qubit cell text for one gate, in gate-operand order."""
    if gate.name == "measure":
        return ["M"]
    if gate.name == "reset":
        return ["|0>"]
    if gate.name == "barrier":
        return ["░"] * gate.num_qubits
    if gate.num_qubits == 1:
        if gate.params:
            return [f"{gate.name.capitalize()}({_format_angle(gate.params[0])})"]
        return [gate.name.upper()]
    if gate.name in _SYMBOLS_2Q:
        first, second = _SYMBOLS_2Q[gate.name]
        if gate.params:
            second = f"{second}({_format_angle(gate.params[0])})"
        return [first, second]
    if gate.name in _SYMBOLS_3Q:
        return list(_SYMBOLS_3Q[gate.name])
    return [gate.name.upper()] * gate.num_qubits  # pragma: no cover


def draw(circuit: Circuit, max_width: int = 0) -> str:
    """Render ``circuit`` as an ASCII diagram.

    Parameters
    ----------
    circuit:
        The circuit to draw.
    max_width:
        Wrap the diagram into blocks of at most this many characters per
        line (0 = never wrap).
    """
    n = circuit.num_qubits
    if n == 0:
        return "(empty register)"
    moments = circuit.moments()
    num_rows = 2 * n - 1  # qubit wires interleaved with connector rows

    columns: List[List[str]] = []
    for moment in moments:
        cells = [""] * num_rows
        connect: List[bool] = [False] * num_rows
        for gate in moment:
            labels = _cell_labels(gate)
            rows = [2 * q for q in gate.qubits]
            for row, label in zip(rows, labels):
                cells[row] = label
            low, high = min(rows), max(rows)
            if gate.name != "barrier":
                for row in range(low + 1, high):
                    connect[row] = True
            else:
                for row in range(low + 1, high):
                    if row % 2 == 1:
                        cells[row] = "░"
        width = max((len(c) for c in cells), default=1)
        width = max(width, 1)
        column = []
        for row in range(num_rows):
            text = cells[row]
            if row % 2 == 0:  # qubit wire
                if text:
                    pad = width - len(text)
                    column.append("─" * (pad // 2) + text + "─" * (pad - pad // 2))
                elif connect[row]:
                    pad = width - 1
                    column.append("─" * (pad // 2) + "┼" + "─" * (pad - pad // 2))
                else:
                    column.append("─" * width)
            else:  # gap row
                if text:
                    pad = width - len(text)
                    column.append(" " * (pad // 2) + text + " " * (pad - pad // 2))
                elif connect[row]:
                    pad = width - 1
                    column.append(" " * (pad // 2) + "│" + " " * (pad - pad // 2))
                else:
                    column.append(" " * width)
        columns.append(column)

    labels = [f"q{q}: " for q in range(n)]
    label_width = max(len(l) for l in labels)
    lines = []
    for row in range(num_rows):
        if row % 2 == 0:
            prefix = labels[row // 2].rjust(label_width)
            body = "─".join(column[row] for column in columns)
        else:
            prefix = " " * label_width
            body = " ".join(column[row] for column in columns)
        lines.append(prefix + body)

    if max_width and lines and len(lines[0]) > max_width:
        return _wrap(lines, label_width, max_width)
    return "\n".join(lines)


def _wrap(lines: List[str], label_width: int, max_width: int) -> str:
    """Split wide diagrams into stacked blocks."""
    body_width = max_width - label_width
    blocks = []
    position = label_width
    total = len(lines[0])
    while position < total:
        end = min(total, position + body_width)
        block = []
        for line in lines:
            prefix = line[:label_width] if position == label_width else " " * label_width
            block.append(prefix + line[position:end])
        blocks.append("\n".join(block))
        position = end
    return ("\n" + "." * max_width + "\n").join(blocks)
