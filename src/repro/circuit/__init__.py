"""Circuit intermediate representation: gates, circuits, DAGs and QASM I/O."""

from .gates import (
    Gate,
    GateDefinition,
    STANDARD_GATES,
    gate_definition,
    gate_matrix,
    gate_inverse,
    gates_commute,
)
from .circuit import Circuit, CircuitError
from .dag import CircuitDag, ExecutionFrontier
from .qasm import QasmError, parse_qasm, to_qasm
from .stats import SizeParameters, size_parameters
from .drawer import draw

__all__ = [
    "Gate",
    "GateDefinition",
    "STANDARD_GATES",
    "gate_definition",
    "gate_matrix",
    "gate_inverse",
    "gates_commute",
    "Circuit",
    "CircuitError",
    "CircuitDag",
    "ExecutionFrontier",
    "QasmError",
    "parse_qasm",
    "to_qasm",
    "SizeParameters",
    "size_parameters",
    "draw",
]
