"""Gate model: definitions, matrices, inverses and commutation rules.

This module defines the immutable :class:`Gate` value type used throughout
the library together with a registry of standard gate definitions.  The
registry records, for every supported gate name, its arity, its parameter
count, a unitary-matrix constructor and an inverse rule.

Matrix convention
-----------------
For a multi-qubit gate acting on ``qubits = (a, b, ...)`` the matrix is
expressed in the computational basis where the *first listed qubit is the
most significant bit*.  For example ``cx`` on ``(control, target)`` is::

    |c t>   00  01  10  11
            1   .   .   .
            .   1   .   .
            .   .   .   1
            .   .   1   .

The state-vector simulator in :mod:`repro.sim` uses the same convention.
"""

from __future__ import annotations

import cmath
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateDefinition",
    "STANDARD_GATES",
    "gate_definition",
    "gate_matrix",
    "gate_inverse",
    "gates_commute",
    "is_directive",
    "is_diagonal_gate",
    "SELF_INVERSE_GATES",
    "DIAGONAL_GATES",
    "TWO_QUBIT_GATE_NAMES",
]

_SQ2 = 1.0 / math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Matrix constructors
# ---------------------------------------------------------------------------

def _mat_i(_: Sequence[float]) -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h(_: Sequence[float]) -> np.ndarray:
    return np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)


def _mat_s(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _mat_sdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _mat_t(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def _mat_tdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def _mat_rx(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _mat_ry(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _mat_rz(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def _mat_p(params: Sequence[float]) -> np.ndarray:
    lam = params[0]
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _mat_sx(_: Sequence[float]) -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _mat_sxdg(_: Sequence[float]) -> np.ndarray:
    return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)


def _mat_u3(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _mat_u2(params: Sequence[float]) -> np.ndarray:
    phi, lam = params
    return _mat_u3((math.pi / 2, phi, lam))


def _mat_cx(_: Sequence[float]) -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[[2, 3]] = m[[3, 2]]
    return m


def _mat_cz(_: Sequence[float]) -> np.ndarray:
    return np.diag([1, 1, 1, -1]).astype(complex)


def _mat_swap(_: Sequence[float]) -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[[1, 2]] = m[[2, 1]]
    return m


def _mat_iswap(_: Sequence[float]) -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]],
        dtype=complex,
    )


def _mat_iswapdg(_: Sequence[float]) -> np.ndarray:
    return _mat_iswap(()).conj().T


def _controlled(mat1q: np.ndarray) -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[2:, 2:] = mat1q
    return m


def _mat_cp(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_p(params))


def _mat_crx(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_rx(params))


def _mat_cry(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_ry(params))


def _mat_crz(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_rz(params))


def _mat_ch(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_h(()))


def _mat_rxx(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.diag([c, c, c, c]).astype(complex)
    anti = -1j * s
    m[0, 3] = m[3, 0] = anti
    m[1, 2] = m[2, 1] = anti
    return m


def _mat_ryy(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.diag([c, c, c, c]).astype(complex)
    m[0, 3] = m[3, 0] = 1j * s
    m[1, 2] = m[2, 1] = -1j * s
    return m


def _mat_rzz(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    e_neg = cmath.exp(-1j * theta / 2)
    e_pos = cmath.exp(1j * theta / 2)
    return np.diag([e_neg, e_pos, e_pos, e_neg]).astype(complex)


def _mat_ccx(_: Sequence[float]) -> np.ndarray:
    m = np.eye(8, dtype=complex)
    m[[6, 7]] = m[[7, 6]]
    return m


def _mat_ccz(_: Sequence[float]) -> np.ndarray:
    return np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex)


def _mat_cswap(_: Sequence[float]) -> np.ndarray:
    m = np.eye(8, dtype=complex)
    m[[5, 6]] = m[[6, 5]]
    return m


# ---------------------------------------------------------------------------
# Gate definitions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateDefinition:
    """Static description of a gate kind.

    Attributes
    ----------
    name:
        Canonical lower-case gate name (e.g. ``"cx"``).
    num_qubits:
        Arity of the gate; ``None`` for variable-arity directives
        (``barrier``).
    num_params:
        Number of real parameters.
    matrix_fn:
        Callable mapping the parameter tuple to the unitary matrix, or
        ``None`` for non-unitary directives (``measure``, ``reset``,
        ``barrier``).
    self_inverse:
        ``True`` when the gate is its own inverse.
    inverse_name:
        Name of the inverse gate kind when it differs (``s`` -> ``sdg``).
        Parameterised rotations negate their parameters instead.
    diagonal:
        ``True`` when the unitary is diagonal in the computational basis
        for every parameter value.
    """

    name: str
    num_qubits: Optional[int]
    num_params: int
    matrix_fn: Optional[Callable[[Sequence[float]], np.ndarray]]
    self_inverse: bool = False
    inverse_name: Optional[str] = None
    diagonal: bool = False
    negate_params_for_inverse: bool = False


def _defs() -> Dict[str, GateDefinition]:
    d = {}

    def add(name, nq, npar, fn, **kw):
        d[name] = GateDefinition(name, nq, npar, fn, **kw)

    # Single-qubit, parameter free.
    add("i", 1, 0, _mat_i, self_inverse=True, diagonal=True)
    add("x", 1, 0, _mat_x, self_inverse=True)
    add("y", 1, 0, _mat_y, self_inverse=True)
    add("z", 1, 0, _mat_z, self_inverse=True, diagonal=True)
    add("h", 1, 0, _mat_h, self_inverse=True)
    add("s", 1, 0, _mat_s, inverse_name="sdg", diagonal=True)
    add("sdg", 1, 0, _mat_sdg, inverse_name="s", diagonal=True)
    add("t", 1, 0, _mat_t, inverse_name="tdg", diagonal=True)
    add("tdg", 1, 0, _mat_tdg, inverse_name="t", diagonal=True)
    add("sx", 1, 0, _mat_sx, inverse_name="sxdg")
    add("sxdg", 1, 0, _mat_sxdg, inverse_name="sx")

    # Single-qubit rotations.
    add("rx", 1, 1, _mat_rx, negate_params_for_inverse=True)
    add("ry", 1, 1, _mat_ry, negate_params_for_inverse=True)
    add("rz", 1, 1, _mat_rz, diagonal=True, negate_params_for_inverse=True)
    add("p", 1, 1, _mat_p, diagonal=True, negate_params_for_inverse=True)
    add("u2", 1, 2, _mat_u2)
    add("u3", 1, 3, _mat_u3)

    # Two-qubit gates.
    add("cx", 2, 0, _mat_cx, self_inverse=True)
    add("cz", 2, 0, _mat_cz, self_inverse=True, diagonal=True)
    add("swap", 2, 0, _mat_swap, self_inverse=True)
    add("iswap", 2, 0, _mat_iswap, inverse_name="iswapdg")
    add("iswapdg", 2, 0, _mat_iswapdg, inverse_name="iswap")
    add("cp", 2, 1, _mat_cp, diagonal=True, negate_params_for_inverse=True)
    add("crx", 2, 1, _mat_crx, negate_params_for_inverse=True)
    add("cry", 2, 1, _mat_cry, negate_params_for_inverse=True)
    add("crz", 2, 1, _mat_crz, diagonal=True, negate_params_for_inverse=True)
    add("ch", 2, 0, _mat_ch, self_inverse=True)
    add("rxx", 2, 1, _mat_rxx, negate_params_for_inverse=True)
    add("ryy", 2, 1, _mat_ryy, negate_params_for_inverse=True)
    add("rzz", 2, 1, _mat_rzz, diagonal=True, negate_params_for_inverse=True)

    # Three-qubit gates.
    add("ccx", 3, 0, _mat_ccx, self_inverse=True)
    add("ccz", 3, 0, _mat_ccz, self_inverse=True, diagonal=True)
    add("cswap", 3, 0, _mat_cswap, self_inverse=True)

    # Non-unitary directives.
    add("measure", 1, 0, None)
    add("reset", 1, 0, None)
    add("barrier", None, 0, None, self_inverse=True)
    return d


STANDARD_GATES: Dict[str, GateDefinition] = _defs()

#: Names whose gates act on exactly two qubits (routing cares about these).
TWO_QUBIT_GATE_NAMES = frozenset(
    name for name, d in STANDARD_GATES.items() if d.num_qubits == 2
)

SELF_INVERSE_GATES = frozenset(
    name for name, d in STANDARD_GATES.items() if d.self_inverse
)

DIAGONAL_GATES = frozenset(
    name for name, d in STANDARD_GATES.items() if d.diagonal
)

_DIRECTIVES = frozenset({"measure", "reset", "barrier"})

#: Aliases accepted on input (QuTech / cQASM spellings map onto our kinds).
GATE_ALIASES: Dict[str, Tuple[str, Tuple[float, ...]]] = {
    "id": ("i", ()),
    "cnot": ("cx", ()),
    "toffoli": ("ccx", ()),
    "fredkin": ("cswap", ()),
    "u1": ("p", ()),
    "phase": ("p", ()),
    "cu1": ("cp", ()),
    "cphase": ("cp", ()),
    "prepz": ("reset", ()),
    "prep_z": ("reset", ()),
    "x90": ("rx", (math.pi / 2,)),
    "xm90": ("rx", (-math.pi / 2,)),
    "mx90": ("rx", (-math.pi / 2,)),
    "y90": ("ry", (math.pi / 2,)),
    "ym90": ("ry", (-math.pi / 2,)),
    "my90": ("ry", (-math.pi / 2,)),
}


def gate_definition(name: str) -> GateDefinition:
    """Return the :class:`GateDefinition` for ``name``.

    Raises
    ------
    KeyError
        If the gate kind is unknown (aliases are *not* resolved here; use
        :func:`resolve_alias` first when reading external input).
    """
    try:
        return STANDARD_GATES[name]
    except KeyError:
        raise KeyError(f"unknown gate kind: {name!r}") from None


def resolve_alias(name: str) -> Tuple[str, Tuple[float, ...]]:
    """Map an input gate spelling onto ``(canonical_name, implicit_params)``.

    Unknown names are returned unchanged with no implicit parameters so the
    caller can produce its own error.
    """
    lowered = name.lower()
    if lowered in STANDARD_GATES:
        return lowered, ()
    return GATE_ALIASES.get(lowered, (lowered, ()))


# ---------------------------------------------------------------------------
# The Gate value type
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Gate:
    """A gate application: a kind, target qubits and real parameters.

    ``Gate`` is an immutable value type; circuits store sequences of them.
    Qubits are integer indices into the circuit's qubit register.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        definition = gate_definition(self.name)
        if definition.num_qubits is not None:
            if len(self.qubits) != definition.num_qubits:
                raise ValueError(
                    f"gate {self.name!r} expects {definition.num_qubits} "
                    f"qubits, got {self.qubits!r}"
                )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits!r}")
        if len(self.params) != definition.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {definition.num_params} "
                f"parameters, got {self.params!r}"
            )

    # -- structural queries -------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_directive(self) -> bool:
        """True for non-unitary pseudo operations (measure/reset/barrier)."""
        return self.name in _DIRECTIVES

    @property
    def is_unitary(self) -> bool:
        return not self.is_directive

    @property
    def is_two_qubit(self) -> bool:
        """True for unitary gates on exactly two qubits.

        Barriers spanning two qubits are *not* two-qubit gates: they carry
        no interaction, so they never contribute to interaction graphs nor
        require routing.
        """
        return self.num_qubits == 2 and not self.is_directive

    @property
    def is_diagonal(self) -> bool:
        return gate_definition(self.name).diagonal

    def acts_on(self, qubit: int) -> bool:
        return qubit in self.qubits

    def overlaps(self, other: "Gate") -> bool:
        """True when the two gates share at least one qubit."""
        mine = set(self.qubits)
        return any(q in mine for q in other.qubits)

    # -- transformations ----------------------------------------------------
    def remap(self, mapping: Dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def matrix(self) -> np.ndarray:
        """Unitary matrix of this gate (see module docstring for ordering)."""
        return gate_matrix(self)

    def inverse(self) -> "Gate":
        """The inverse gate application (same qubits)."""
        return gate_inverse(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            pars = ", ".join(f"{p:g}" for p in self.params)
            return f"{self.name}({pars}) {args}"
        return f"{self.name} {args}"


def is_directive(gate: Gate) -> bool:
    return gate.is_directive


def is_diagonal_gate(gate: Gate) -> bool:
    return gate.is_diagonal


#: LRU cache of gate matrices keyed on ``(name, params)``.  Parameter-free
#: gates and the handful of hot rotation angles of a workload stay resident;
#: under parameter churn (e.g. randomised circuits) the least recently used
#: matrices are evicted instead of the cache silently going read-only.
_MATRIX_CACHE: "OrderedDict[Tuple[str, Tuple[float, ...]], np.ndarray]" = (
    OrderedDict()
)
_MATRIX_CACHE_SIZE = 4096


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of ``gate`` (cached, read-only).

    Raises
    ------
    ValueError
        For non-unitary directives, which have no matrix.
    """
    definition = gate_definition(gate.name)
    if definition.matrix_fn is None:
        raise ValueError(f"gate {gate.name!r} has no unitary matrix")
    key = (gate.name, gate.params)
    cached = _MATRIX_CACHE.get(key)
    if cached is None:
        cached = definition.matrix_fn(gate.params)
        cached.setflags(write=False)
        _MATRIX_CACHE[key] = cached
        if len(_MATRIX_CACHE) > _MATRIX_CACHE_SIZE:
            _MATRIX_CACHE.popitem(last=False)
    else:
        _MATRIX_CACHE.move_to_end(key)
    return cached


def gate_inverse(gate: Gate) -> Gate:
    """Return the gate whose unitary is the adjoint of ``gate``'s.

    Raises
    ------
    ValueError
        For ``measure``/``reset``, which are not invertible.
    """
    definition = gate_definition(gate.name)
    if definition.self_inverse:
        return gate
    if definition.inverse_name is not None:
        return Gate(definition.inverse_name, gate.qubits, gate.params)
    if definition.negate_params_for_inverse:
        return Gate(gate.name, gate.qubits, tuple(-p for p in gate.params))
    if gate.name == "u3":
        theta, phi, lam = gate.params
        return Gate("u3", gate.qubits, (-theta, -lam, -phi))
    if gate.name == "u2":
        phi, lam = gate.params
        return Gate("u3", gate.qubits, (-math.pi / 2, -lam, -phi))
    raise ValueError(f"gate {gate.name!r} is not invertible")


# ---------------------------------------------------------------------------
# Commutation
# ---------------------------------------------------------------------------

def _shared_qubits(a: Gate, b: Gate) -> Tuple[int, ...]:
    return tuple(q for q in a.qubits if q in b.qubits)


def gates_commute(a: Gate, b: Gate, numeric_fallback: bool = True) -> bool:
    """Decide whether two gate applications commute.

    Fast symbolic rules cover the common cases (disjoint supports, both
    diagonal, CX pairs sharing a control or a target, Z-like rotations on a
    CX control, X-like rotations on a CX target).  When
    ``numeric_fallback`` is true, undecided pairs on a small joint support
    are resolved by comparing the two operator orderings numerically;
    otherwise undecided pairs conservatively return ``False``.

    Directives never commute with gates they overlap (a barrier is a
    scheduling fence, and measurement does not commute with unitaries).
    """
    shared = _shared_qubits(a, b)
    if not shared:
        return True
    if a.is_directive or b.is_directive:
        return False
    if a == b:
        return True
    if a.is_diagonal and b.is_diagonal:
        return True

    # CX / CZ structural rules.
    if a.name == "cx" and b.name == "cx":
        same_control = a.qubits[0] == b.qubits[0]
        same_target = a.qubits[1] == b.qubits[1]
        if same_control and not a.qubits[1] == b.qubits[1]:
            return True
        if same_target and not same_control:
            return True
        return same_control and same_target
    z_like = {"z", "s", "sdg", "t", "tdg", "rz", "p"}
    x_like = {"x", "rx", "sx", "sxdg"}
    for ctrl, other in ((a, b), (b, a)):
        if ctrl.name == "cx":
            control, target = ctrl.qubits
            if other.num_qubits == 1:
                q = other.qubits[0]
                if q == control and other.name in z_like:
                    return True
                if q == target and other.name in x_like:
                    return True
        if ctrl.name in {"cz", "cp", "crz", "rzz"} and other.num_qubits == 1:
            if other.name in z_like:
                return True

    if not numeric_fallback:
        return False
    support = sorted(set(a.qubits) | set(b.qubits))
    if len(support) > 3:
        return False
    return _numeric_commute(a, b, support)


def _embed(gate: Gate, support: Sequence[int]) -> np.ndarray:
    """Matrix of ``gate`` embedded on the ordered qubit list ``support``.

    ``support`` must contain every qubit the gate acts on; the first entry
    of ``support`` is the most significant bit of the returned matrix.
    """
    n = len(support)
    index = {q: i for i, q in enumerate(support)}
    tensor = gate_matrix(gate).reshape((2,) * (2 * gate.num_qubits))
    op = np.eye(2 ** n, dtype=complex).reshape((2,) * (2 * n))
    axes = [index[q] for q in gate.qubits]
    op = _apply_tensor(op, tensor, axes, n)
    return op.reshape(2 ** n, 2 ** n)


def _apply_tensor(
    op: np.ndarray, gate_tensor: np.ndarray, axes: Sequence[int], n: int
) -> np.ndarray:
    """Contract ``gate_tensor`` into the output axes ``axes`` of ``op``.

    ``op`` has ``2n`` axes (outputs then inputs); ``gate_tensor`` has
    ``2k`` axes (outputs then inputs) for a ``k``-qubit gate.
    """
    k = len(axes)
    contracted = np.tensordot(gate_tensor, op, axes=(range(k, 2 * k), axes))
    # tensordot result axes: gate outputs first, then the surviving op axes
    # in their original order.  Build the permutation that restores the
    # original axis layout with gate outputs in place of the contracted axes.
    placement = {axis: i for i, axis in enumerate(axes)}
    remaining = [i for i in range(2 * n) if i not in placement]
    for i, axis in enumerate(remaining):
        placement[axis] = k + i
    perm = [placement[axis] for axis in range(2 * n)]
    return np.transpose(contracted, perm)


def _numeric_commute(a: Gate, b: Gate, support: Sequence[int]) -> bool:
    ma = _embed(a, support)
    mb = _embed(b, support)
    return bool(np.allclose(ma @ mb, mb @ ma, atol=1e-10))
