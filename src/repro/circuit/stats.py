"""Common circuit size parameters.

These are the three "classical" benchmark descriptors the paper contrasts
with interaction-graph profiling (Sec. III/IV): number of qubits, number
of gates and two-qubit-gate percentage, plus circuit depth.  They are
collected into a small record so experiment code and the profiler share
one definition.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

from .circuit import Circuit

__all__ = ["SizeParameters", "size_parameters"]


@dataclass(frozen=True)
class SizeParameters:
    """The common algorithm parameters used in the literature.

    Attributes
    ----------
    num_qubits:
        Qubits *used* by the circuit (idle register tails excluded, which
        matches how benchmark suites report qubit counts).
    num_gates:
        Proper gate count (directives excluded).
    num_two_qubit_gates:
        Count of two-qubit unitary gates.
    two_qubit_fraction:
        ``num_two_qubit_gates / num_gates`` (0 for empty circuits).
    depth:
        Dependency depth of the circuit.
    """

    num_qubits: int
    num_gates: int
    num_two_qubit_gates: int
    two_qubit_fraction: float
    depth: int

    @property
    def two_qubit_percentage(self) -> float:
        """Two-qubit-gate share in percent, as plotted in Fig. 3(b)."""
        return 100.0 * self.two_qubit_fraction

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


def size_parameters(circuit: Circuit) -> SizeParameters:
    """Compute the :class:`SizeParameters` of ``circuit``."""
    return SizeParameters(
        num_qubits=len(circuit.used_qubits()),
        num_gates=circuit.num_gates,
        num_two_qubit_gates=circuit.num_two_qubit_gates,
        two_qubit_fraction=circuit.two_qubit_fraction,
        depth=circuit.depth(),
    )
