"""The :class:`Circuit` container: an ordered list of gates on a register.

A circuit owns a fixed number of qubits (indexed ``0..num_qubits-1``) and a
sequence of :class:`~repro.circuit.gates.Gate` applications.  It offers the
builder-style methods used by the workload generators (``c.h(0)``,
``c.cx(0, 1)``), structural queries used by the profiler (gate counts,
two-qubit fraction, depth) and the transformations used by the compiler
(remapping, composition, inversion).
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate, gate_inverse, resolve_alias

__all__ = ["Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structurally invalid circuit operations."""


class Circuit:
    """An ordered quantum circuit over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.
    gates:
        Optional initial gate sequence (validated against the register).
    name:
        Optional human-readable name, carried through compilation and used
        in experiment reports.
    """

    __slots__ = ("num_qubits", "_gates", "name")

    def __init__(
        self,
        num_qubits: int,
        gates: Optional[Iterable[Gate]] = None,
        name: str = "",
    ) -> None:
        if num_qubits < 0:
            raise CircuitError(f"negative qubit count: {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def __hash__(self):  # circuits are mutable
        raise TypeError("Circuit is unhashable (mutable)")

    def content_hash(self) -> str:
        """Stable hex digest of the circuit's semantic content.

        Covers the register size and the exact gate sequence (names,
        qubits, parameter bit patterns) but *not* the cosmetic ``name``,
        so two structurally identical circuits hash alike across
        processes and sessions.  Used to memoise per-circuit derived data
        (e.g. the Table I graph-metric vectors).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(struct.pack("<q", self.num_qubits))
        for gate in self._gates:
            digest.update(gate.name.encode("utf-8"))
            digest.update(struct.pack(f"<B{len(gate.qubits)}q", 0, *gate.qubits))
            digest.update(struct.pack(f"<B{len(gate.params)}d", 1, *gate.params))
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Circuit{label}: {self.num_qubits} qubits, "
            f"{len(self._gates)} gates>"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a validated gate; returns ``self`` for chaining."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"gate {gate} addresses qubit {q} outside register of "
                    f"size {self.num_qubits}"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "Circuit":
        """Append a gate by name, resolving input aliases (``cnot`` etc.)."""
        canonical, implicit = resolve_alias(name)
        return self.append(Gate(canonical, tuple(qubits), implicit + tuple(params)))

    # Builder shorthands -------------------------------------------------
    def i(self, q: int) -> "Circuit":
        return self.append(Gate("i", (q,)))

    def x(self, q: int) -> "Circuit":
        return self.append(Gate("x", (q,)))

    def y(self, q: int) -> "Circuit":
        return self.append(Gate("y", (q,)))

    def z(self, q: int) -> "Circuit":
        return self.append(Gate("z", (q,)))

    def h(self, q: int) -> "Circuit":
        return self.append(Gate("h", (q,)))

    def s(self, q: int) -> "Circuit":
        return self.append(Gate("s", (q,)))

    def sdg(self, q: int) -> "Circuit":
        return self.append(Gate("sdg", (q,)))

    def t(self, q: int) -> "Circuit":
        return self.append(Gate("t", (q,)))

    def tdg(self, q: int) -> "Circuit":
        return self.append(Gate("tdg", (q,)))

    def sx(self, q: int) -> "Circuit":
        return self.append(Gate("sx", (q,)))

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.append(Gate("rx", (q,), (theta,)))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.append(Gate("ry", (q,), (theta,)))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.append(Gate("rz", (q,), (theta,)))

    def p(self, lam: float, q: int) -> "Circuit":
        return self.append(Gate("p", (q,), (lam,)))

    def u2(self, phi: float, lam: float, q: int) -> "Circuit":
        return self.append(Gate("u2", (q,), (phi, lam)))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.append(Gate("u3", (q,), (theta, phi, lam)))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append(Gate("cx", (control, target)))

    def cz(self, a: int, b: int) -> "Circuit":
        return self.append(Gate("cz", (a, b)))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append(Gate("swap", (a, b)))

    def iswap(self, a: int, b: int) -> "Circuit":
        return self.append(Gate("iswap", (a, b)))

    def cp(self, lam: float, control: int, target: int) -> "Circuit":
        return self.append(Gate("cp", (control, target), (lam,)))

    def crz(self, lam: float, control: int, target: int) -> "Circuit":
        return self.append(Gate("crz", (control, target), (lam,)))

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.append(Gate("rzz", (a, b), (theta,)))

    def rxx(self, theta: float, a: int, b: int) -> "Circuit":
        return self.append(Gate("rxx", (a, b), (theta,)))

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.append(Gate("ccx", (c1, c2, target)))

    def ccz(self, a: int, b: int, c: int) -> "Circuit":
        return self.append(Gate("ccz", (a, b, c)))

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        return self.append(Gate("cswap", (control, a, b)))

    def measure(self, q: int) -> "Circuit":
        return self.append(Gate("measure", (q,)))

    def measure_all(self) -> "Circuit":
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def reset(self, q: int) -> "Circuit":
        return self.append(Gate("reset", (q,)))

    def barrier(self, *qubits: int) -> "Circuit":
        qs = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Gate("barrier", qs))

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        """Number of proper gates, excluding directives."""
        return sum(1 for g in self._gates if not g.is_directive)

    @property
    def num_operations(self) -> int:
        """Number of all operations including measure/reset/barrier."""
        return len(self._gates)

    def count_ops(self) -> Counter:
        """Histogram of operation names."""
        return Counter(g.name for g in self._gates)

    def two_qubit_gates(self) -> List[Gate]:
        """All unitary gates acting on exactly two qubits, in order."""
        return [g for g in self._gates if g.is_two_qubit]

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self._gates if g.is_two_qubit)

    @property
    def two_qubit_fraction(self) -> float:
        """Fraction of proper gates that are two-qubit gates (0 when empty)."""
        total = self.num_gates
        if total == 0:
            return 0.0
        return self.num_two_qubit_gates / total

    def used_qubits(self) -> List[int]:
        """Sorted qubit indices touched by at least one operation."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return sorted(used)

    def depth(self, count_directives: bool = False) -> int:
        """Circuit depth: longest qubit-dependency chain.

        Barriers synchronise the qubits they span; with
        ``count_directives=False`` (the default) they and measure/reset do
        not add a level of their own but still order later gates.
        """
        level: Dict[int, int] = {}
        for gate in self._gates:
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            advance = 1 if (count_directives or not gate.is_directive) else 0
            for q in gate.qubits:
                level[q] = start + advance if advance else max(level.get(q, 0), start)
        return max(level.values(), default=0)

    def moments(self) -> List[List[Gate]]:
        """Greedy ASAP layering of the circuit.

        Each moment is a list of operations on pairwise-disjoint qubits.
        Directives occupy their own slot on their qubits, so the number of
        moments equals ``depth(count_directives=True)``.
        """
        level: Dict[int, int] = {}
        layers: List[List[Gate]] = []
        for gate in self._gates:
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            while len(layers) <= start:
                layers.append([])
            layers[start].append(gate)
            for q in gate.qubits:
                level[q] = start + 1
        return layers

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "Circuit":
        clone = Circuit(self.num_qubits, name=self.name)
        clone._gates = list(self._gates)
        return clone

    def inverse(self) -> "Circuit":
        """The adjoint circuit (gates inverted, order reversed).

        Raises
        ------
        ValueError
            If the circuit contains ``measure`` or ``reset``.
        """
        inv = Circuit(self.num_qubits, name=f"{self.name}_dg" if self.name else "")
        for gate in reversed(self._gates):
            if gate.name == "barrier":
                inv.append(gate)
            else:
                inv.append(gate_inverse(gate))
        return inv

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``.

        The register size is the maximum of the two operands'.
        """
        out = Circuit(max(self.num_qubits, other.num_qubits), name=self.name)
        out._gates = list(self._gates) + list(other._gates)
        return out

    def remap_qubits(
        self, mapping: Dict[int, int], num_qubits: Optional[int] = None
    ) -> "Circuit":
        """Relabel qubits through ``mapping``.

        Parameters
        ----------
        mapping:
            Maps every used qubit index to its new index.  Must be
            injective on the used qubits.
        num_qubits:
            Register size of the result; defaults to the current size (or
            the largest mapped index + 1 if that is bigger).
        """
        used = self.used_qubits()
        images = [mapping[q] for q in used]
        if len(set(images)) != len(images):
            raise CircuitError("qubit remapping is not injective on used qubits")
        size = max([self.num_qubits] + [i + 1 for i in images])
        if num_qubits is not None:
            if images and num_qubits < max(images) + 1:
                raise CircuitError(
                    f"register of {num_qubits} too small for remapped indices"
                )
            size = num_qubits
        out = Circuit(size, name=self.name)
        for gate in self._gates:
            out.append(gate.remap(mapping))
        return out

    def without_directives(self) -> "Circuit":
        """A copy with measure/reset/barrier removed (for unitary checks)."""
        out = Circuit(self.num_qubits, name=self.name)
        out._gates = [g for g in self._gates if not g.is_directive]
        return out

    def repeated(self, times: int) -> "Circuit":
        """The circuit concatenated with itself ``times`` times."""
        if times < 0:
            raise CircuitError("repetition count must be non-negative")
        out = Circuit(self.num_qubits, name=self.name)
        out._gates = list(self._gates) * times
        return out
