"""Gate-dependency DAG over a circuit.

The DAG records, for every gate, which earlier gates it depends on through
shared qubits.  It is the workhorse behind the SABRE-style router (front
layer + successors), the schedulers (ready sets) and depth computations.

Nodes are integer indices into the circuit's gate list, so the DAG stays
valid as long as the circuit is not mutated.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Set, Tuple

from .circuit import Circuit
from .gates import Gate

__all__ = ["CircuitDag"]


class CircuitDag:
    """Qubit-dependency DAG of a circuit.

    Two gates are ordered iff they share a qubit; each gate depends
    directly on the *last* previous gate on each of its qubits.  This is
    the standard "gate dependency graph" used by mapping papers.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        n = len(circuit)
        self._preds: List[List[int]] = [[] for _ in range(n)]
        self._succs: List[List[int]] = [[] for _ in range(n)]
        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(circuit):
            seen_preds: Set[int] = set()
            for q in gate.qubits:
                prev = last_on_qubit.get(q)
                if prev is not None and prev not in seen_preds:
                    seen_preds.add(prev)
                    self._preds[index].append(prev)
                    self._succs[prev].append(index)
                last_on_qubit[q] = index
        self._indegree = [len(p) for p in self._preds]

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._preds)

    def gate(self, node: int) -> Gate:
        return self.circuit[node]

    def predecessors(self, node: int) -> Tuple[int, ...]:
        return tuple(self._preds[node])

    def successors(self, node: int) -> Tuple[int, ...]:
        return tuple(self._succs[node])

    def in_degree(self, node: int) -> int:
        return self._indegree[node]

    def front_layer(self) -> List[int]:
        """Nodes with no predecessors (executable first)."""
        return [i for i, d in enumerate(self._indegree) if d == 0]

    # ------------------------------------------------------------------
    def topological_order(self) -> Iterator[int]:
        """Kahn topological iteration (equals original order for us, but
        kept generic so consumers do not rely on that accident)."""
        indegree = list(self._indegree)
        ready = deque(i for i, d in enumerate(indegree) if d == 0)
        emitted = 0
        while ready:
            node = ready.popleft()
            emitted += 1
            yield node
            for succ in self._succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if emitted != self.num_nodes:  # pragma: no cover - defensive
            raise RuntimeError("dependency graph contains a cycle")

    def layers(self) -> List[List[int]]:
        """ASAP layering: each layer's gates have all deps in earlier layers."""
        depth = [0] * self.num_nodes
        for node in self.topological_order():
            for succ in self._succs[node]:
                depth[succ] = max(depth[succ], depth[node] + 1)
        if not depth:
            return []
        layers: List[List[int]] = [[] for _ in range(max(depth) + 1)]
        for node, d in enumerate(depth):
            layers[d].append(node)
        return layers

    def longest_path_length(self) -> int:
        """Number of nodes on the longest dependency chain."""
        layer_list = self.layers()
        return len(layer_list)

    def descendants(self, node: int) -> Set[int]:
        """All nodes reachable from ``node`` (excluding itself)."""
        seen: Set[int] = set()
        stack = list(self._succs[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._succs[current])
        return seen


class ExecutionFrontier:
    """Mutable 'front layer' view used by routers and schedulers.

    Starts at the DAG's front layer; :meth:`complete` retires a node and
    reveals newly-ready successors.  The frontier is exhausted when every
    node has been completed.
    """

    def __init__(self, dag: CircuitDag) -> None:
        self.dag = dag
        self._indegree = [dag.in_degree(i) for i in range(dag.num_nodes)]
        self._ready: Set[int] = {i for i, d in enumerate(self._indegree) if d == 0}
        self._done = 0

    @property
    def ready(self) -> Set[int]:
        """Currently executable node set (do not mutate)."""
        return self._ready

    @property
    def exhausted(self) -> bool:
        return self._done == self.dag.num_nodes

    def complete(self, node: int) -> List[int]:
        """Retire ``node``; return the list of newly ready nodes."""
        if node not in self._ready:
            raise ValueError(f"node {node} is not ready")
        self._ready.discard(node)
        self._done += 1
        revealed = []
        for succ in self.dag.successors(node):
            self._indegree[succ] -= 1
            if self._indegree[succ] == 0:
                self._ready.add(succ)
                revealed.append(succ)
        return revealed


__all__.append("ExecutionFrontier")
