"""OpenQASM 2.0 subset reader and writer.

Supports the fragment of OpenQASM 2.0 that the benchmark suites of the
paper (qbench / RevLib exports) use:

* ``OPENQASM 2.0;`` header and ``include`` statements (includes are
  ignored; the ``qelib1.inc`` gate vocabulary is built in),
* ``qreg`` / ``creg`` declarations (multiple quantum registers are
  flattened into one contiguous index space),
* gate applications with parameter expressions over ``pi``, numeric
  literals, ``+ - * / ^`` and parentheses,
* register broadcasting (``h q;`` applies to every qubit of ``q``),
* ``measure``, ``reset``, ``barrier``,
* user ``gate`` macro definitions, expanded inline at application time,
* ``//`` comments.

Unsupported constructs (``if``, ``opaque``) raise :class:`QasmError` with
the offending line number.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .circuit import Circuit
from .gates import Gate, STANDARD_GATES, gate_definition, resolve_alias

__all__ = ["QasmError", "parse_qasm", "to_qasm"]


class QasmError(ValueError):
    """Raised on malformed or unsupported QASM input."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Expression evaluation (parameters)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[()+\-*/^]))"
)


def _tokenize_expr(text: str, line: int) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise QasmError(f"bad expression near {text[pos:]!r}", line)
        pos = match.end()
        for kind in ("num", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _ExprParser:
    """Recursive-descent parser for QASM parameter expressions."""

    _FUNCTIONS = {
        "sin": math.sin,
        "cos": math.cos,
        "tan": math.tan,
        "exp": math.exp,
        "ln": math.log,
        "sqrt": math.sqrt,
    }

    def __init__(self, tokens: List[Tuple[str, str]], env: Dict[str, float], line: int):
        self.tokens = tokens
        self.pos = 0
        self.env = env
        self.line = line

    def parse(self) -> float:
        value = self._expr()
        if self.pos != len(self.tokens):
            raise QasmError("trailing tokens in expression", self.line)
        return value

    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _take(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QasmError("unexpected end of expression", self.line)
        self.pos += 1
        return token

    def _expr(self) -> float:
        value = self._term()
        while True:
            token = self._peek()
            if token == ("op", "+"):
                self._take()
                value += self._term()
            elif token == ("op", "-"):
                self._take()
                value -= self._term()
            else:
                return value

    def _term(self) -> float:
        value = self._unary()
        while True:
            token = self._peek()
            if token == ("op", "*"):
                self._take()
                value *= self._unary()
            elif token == ("op", "/"):
                self._take()
                divisor = self._unary()
                if divisor == 0:
                    raise QasmError("division by zero in expression", self.line)
                value /= divisor
            else:
                return value

    def _unary(self) -> float:
        token = self._peek()
        if token == ("op", "-"):
            self._take()
            return -self._unary()
        if token == ("op", "+"):
            self._take()
            return self._unary()
        return self._power()

    def _power(self) -> float:
        base = self._atom()
        if self._peek() == ("op", "^"):
            self._take()
            return base ** self._unary()
        return base

    def _atom(self) -> float:
        kind, value = self._take()
        if kind == "num":
            return float(value)
        if kind == "name":
            if value in self._FUNCTIONS:
                if self._take() != ("op", "("):
                    raise QasmError(f"expected '(' after {value}", self.line)
                arg = self._expr()
                if self._take() != ("op", ")"):
                    raise QasmError(f"missing ')' after {value}(...", self.line)
                return self._FUNCTIONS[value](arg)
            if value == "pi":
                return math.pi
            if value in self.env:
                return self.env[value]
            raise QasmError(f"unknown identifier {value!r} in expression", self.line)
        if (kind, value) == ("op", "("):
            inner = self._expr()
            if self._take() != ("op", ")"):
                raise QasmError("missing ')'", self.line)
            return inner
        raise QasmError(f"unexpected token {value!r}", self.line)


def _eval_expr(text: str, env: Dict[str, float], line: int) -> float:
    return _ExprParser(_tokenize_expr(text, line), env, line).parse()


def _split_args(text: str, line: int) -> List[str]:
    """Split a comma-separated list, respecting parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QasmError("unbalanced parentheses", line)
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

@dataclass
class _GateMacro:
    name: str
    params: List[str]
    qubits: List[str]
    body: List[Tuple[str, int]]  # statements with their source line


_STMT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?:\s*\((?P<params>.*)\))?"
    r"\s*(?P<args>[^;{]*)$"
)
_REG_REF_RE = re.compile(r"^(?P<reg>[A-Za-z_][A-Za-z_0-9]*)(?:\[(?P<idx>\d+)\])?$")


class _QasmParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, int] = {}
        self.macros: Dict[str, _GateMacro] = {}
        self.num_qubits = 0
        self.gates: List[Gate] = []

    # -- statement stream ------------------------------------------------
    def _statements(self) -> List[Tuple[str, int]]:
        """Split source into ';'-terminated statements plus '{'/'}' tokens."""
        statements: List[Tuple[str, int]] = []
        current: List[str] = []
        current_line = 1
        line = 1
        i = 0
        text = self.text
        while i < len(text):
            ch = text[i]
            if ch == "/" and text[i : i + 2] == "//":
                while i < len(text) and text[i] != "\n":
                    i += 1
                continue
            if ch == "\n":
                line += 1
                i += 1
                continue
            if ch in ";{}":
                stmt = "".join(current).strip()
                if stmt:
                    statements.append((stmt, current_line))
                if ch in "{}":
                    statements.append((ch, line))
                current = []
                current_line = line
                i += 1
                continue
            if not current and ch.isspace():
                current_line = line
            current.append(ch)
            i += 1
        tail = "".join(current).strip()
        if tail:
            raise QasmError(f"unterminated statement {tail!r}", current_line)
        return statements

    # -- top level ---------------------------------------------------------
    def parse(self) -> Circuit:
        statements = self._statements()
        index = 0
        while index < len(statements):
            stmt, line = statements[index]
            index += 1
            if stmt in "{}":
                raise QasmError("unexpected brace", line)
            head = stmt.split(None, 1)[0]
            if head == "OPENQASM":
                continue
            if head == "include":
                continue
            if head == "qreg":
                self._declare_qreg(stmt, line)
                continue
            if head == "creg":
                self._declare_creg(stmt, line)
                continue
            if head == "gate":
                index = self._parse_macro(statements, index - 1)
                continue
            if head in {"if", "opaque"}:
                raise QasmError(f"unsupported statement kind {head!r}", line)
            self._apply_statement(stmt, line, env={}, qubit_env=None)
        circuit = Circuit(self.num_qubits, name="")
        for gate in self.gates:
            circuit.append(gate)
        return circuit

    _DECL_RE = re.compile(r"^(qreg|creg)\s+([A-Za-z_][A-Za-z_0-9]*)\[(\d+)\]$")

    def _declare_qreg(self, stmt: str, line: int) -> None:
        match = self._DECL_RE.match(stmt)
        if not match:
            raise QasmError(f"malformed qreg declaration {stmt!r}", line)
        name, size = match.group(2), int(match.group(3))
        if name in self.qregs:
            raise QasmError(f"duplicate qreg {name!r}", line)
        self.qregs[name] = (self.num_qubits, size)
        self.num_qubits += size

    def _declare_creg(self, stmt: str, line: int) -> None:
        match = self._DECL_RE.match(stmt)
        if not match:
            raise QasmError(f"malformed creg declaration {stmt!r}", line)
        self.cregs[match.group(2)] = int(match.group(3))

    # -- macros --------------------------------------------------------------
    def _parse_macro(self, statements: List[Tuple[str, int]], start: int) -> int:
        header, line = statements[start]
        match = _STMT_RE.match(header[len("gate") :].strip())
        if not match:
            raise QasmError(f"malformed gate definition {header!r}", line)
        name = match.group("name")
        params = (
            [p.strip() for p in match.group("params").split(",") if p.strip()]
            if match.group("params")
            else []
        )
        qubit_names = [q.strip() for q in match.group("args").split(",") if q.strip()]
        index = start + 1
        if index >= len(statements) or statements[index][0] != "{":
            raise QasmError(f"gate {name!r} definition missing body", line)
        index += 1
        body: List[Tuple[str, int]] = []
        while index < len(statements) and statements[index][0] != "}":
            body.append(statements[index])
            index += 1
        if index >= len(statements):
            raise QasmError(f"gate {name!r} body is not closed", line)
        self.macros[name] = _GateMacro(name, params, qubit_names, body)
        return index + 1

    # -- applications ----------------------------------------------------
    def _resolve_qubits(
        self, args: str, line: int, qubit_env: Optional[Dict[str, int]]
    ) -> List[List[int]]:
        """Resolve operand list to per-operand qubit index lists.

        Whole-register operands keep their full extent so the caller can
        broadcast.  Inside a macro body (``qubit_env`` given) operands are
        formal names bound to single qubits.
        """
        operands = []
        for arg in _split_args(args, line):
            if qubit_env is not None:
                if arg not in qubit_env:
                    raise QasmError(f"unknown macro qubit {arg!r}", line)
                operands.append([qubit_env[arg]])
                continue
            match = _REG_REF_RE.match(arg)
            if not match:
                raise QasmError(f"malformed operand {arg!r}", line)
            reg = match.group("reg")
            if reg not in self.qregs:
                raise QasmError(f"unknown quantum register {reg!r}", line)
            offset, size = self.qregs[reg]
            if match.group("idx") is not None:
                idx = int(match.group("idx"))
                if idx >= size:
                    raise QasmError(
                        f"index {idx} out of range for qreg {reg}[{size}]", line
                    )
                operands.append([offset + idx])
            else:
                operands.append([offset + i for i in range(size)])
        return operands

    def _apply_statement(
        self,
        stmt: str,
        line: int,
        env: Dict[str, float],
        qubit_env: Optional[Dict[str, int]],
    ) -> None:
        if stmt.startswith("measure"):
            self._apply_measure(stmt, line, qubit_env)
            return
        match = _STMT_RE.match(stmt)
        if not match:
            raise QasmError(f"malformed statement {stmt!r}", line)
        name = match.group("name")
        raw_params = match.group("params")
        params = (
            [_eval_expr(p, env, line) for p in _split_args(raw_params, line)]
            if raw_params
            else []
        )
        operands = self._resolve_qubits(match.group("args"), line, qubit_env)
        if name == "barrier":
            qubits = [q for operand in operands for q in operand]
            self.gates.append(Gate("barrier", tuple(qubits)))
            return
        for qubit_tuple in _broadcast(operands, line):
            self._emit(name, params, qubit_tuple, line)

    def _apply_measure(
        self, stmt: str, line: int, qubit_env: Optional[Dict[str, int]]
    ) -> None:
        if qubit_env is not None:
            raise QasmError("measure not allowed inside gate body", line)
        body = stmt[len("measure") :].strip()
        parts = body.split("->")
        if len(parts) != 2:
            raise QasmError(f"malformed measure {stmt!r}", line)
        operands = self._resolve_qubits(parts[0].strip(), line, None)
        for q in operands[0]:
            self.gates.append(Gate("measure", (q,)))

    def _emit(
        self, name: str, params: List[float], qubits: Tuple[int, ...], line: int
    ) -> None:
        canonical, implicit = resolve_alias(name)
        if canonical in STANDARD_GATES:
            definition = gate_definition(canonical)
            all_params = tuple(implicit) + tuple(params)
            if definition.num_params != len(all_params):
                raise QasmError(
                    f"gate {name!r} expects {definition.num_params} params, "
                    f"got {len(params)}",
                    line,
                )
            try:
                self.gates.append(Gate(canonical, qubits, all_params))
            except ValueError as exc:
                raise QasmError(str(exc), line) from None
            return
        if name in self.macros:
            self._expand_macro(self.macros[name], params, qubits, line)
            return
        raise QasmError(f"unknown gate {name!r}", line)

    def _expand_macro(
        self,
        macro: _GateMacro,
        params: List[float],
        qubits: Tuple[int, ...],
        line: int,
    ) -> None:
        if len(params) != len(macro.params):
            raise QasmError(
                f"macro {macro.name!r} expects {len(macro.params)} params", line
            )
        if len(qubits) != len(macro.qubits):
            raise QasmError(
                f"macro {macro.name!r} expects {len(macro.qubits)} qubits", line
            )
        env = dict(zip(macro.params, params))
        qubit_env = dict(zip(macro.qubits, qubits))
        for stmt, body_line in macro.body:
            self._apply_statement(stmt, body_line, env, qubit_env)


def _broadcast(operands: List[List[int]], line: int) -> List[Tuple[int, ...]]:
    """OpenQASM register broadcasting.

    All multi-qubit operands must have equal length; single-qubit operands
    are repeated.  ``h q;`` on a 3-qubit register yields three single-qubit
    applications; ``cx q, r;`` zips the registers.
    """
    lengths = {len(op) for op in operands if len(op) > 1}
    if len(lengths) > 1:
        raise QasmError("mismatched register lengths in broadcast", line)
    width = lengths.pop() if lengths else 1
    result = []
    for i in range(width):
        result.append(tuple(op[i] if len(op) > 1 else op[0] for op in operands))
    return result


def parse_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 source into a :class:`Circuit`."""
    return _QasmParser(text).parse()


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

_EMIT_NAMES = {"i": "id", "p": "u1", "cp": "cu1", "reset": "reset"}


def _format_param(value: float) -> str:
    """Render a parameter, folding exact multiples of pi/16 to 'pi' syntax."""
    for denom in (1, 2, 3, 4, 8, 16):
        ratio = value * denom / math.pi
        nearest = round(ratio)
        if nearest != 0 and abs(ratio - nearest) < 1e-12:
            sign = "-" if nearest < 0 else ""
            mag = abs(nearest)
            num = "pi" if mag == 1 else f"{mag}*pi"
            return f"{sign}{num}" if denom == 1 else f"{sign}{num}/{denom}"
    return repr(value)


def to_qasm(circuit: Circuit, qreg: str = "q", creg: str = "c") -> str:
    """Serialise a circuit to OpenQASM 2.0.

    Measurements are emitted as ``measure q[i] -> c[i]``.  The output
    round-trips through :func:`parse_qasm`.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {qreg}[{circuit.num_qubits}];",
    ]
    if any(g.name == "measure" for g in circuit):
        lines.append(f"creg {creg}[{circuit.num_qubits}];")
    for gate in circuit:
        operands = ", ".join(f"{qreg}[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            q = gate.qubits[0]
            lines.append(f"measure {qreg}[{q}] -> {creg}[{q}];")
            continue
        name = _EMIT_NAMES.get(gate.name, gate.name)
        if gate.params:
            rendered = ", ".join(_format_param(p) for p in gate.params)
            lines.append(f"{name}({rendered}) {operands};")
        else:
            lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"
