"""eQASM-lite: a timed quantum instruction set (the QISA layer of Fig. 1).

The paper's full stack lowers compiler output into "low-level
instructions ... further translated into specific pulses".  This module
models that interface in the spirit of eQASM (Fu et al., HPCA 2019): a
program is a sequence of *bundles* — sets of operations issued in the
same cycle — separated by explicit ``qwait`` timing instructions, which
is exactly the information the control electronics needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import Gate
from ..compiler.scheduling import Schedule

__all__ = ["Instruction", "Bundle", "IsaProgram", "compile_to_isa"]

#: Gate-kind -> ISA mnemonic (QuTech CC-Light style).
_MNEMONICS = {
    "i": "I",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "sx": "X90",
    "sxdg": "XM90",
    "rx": "RX",
    "ry": "RY",
    "rz": "RZ",
    "p": "RZ",
    "cz": "CZ",
    "cx": "CNOT",
    "swap": "SWAP",
    "measure": "MEASZ",
    "reset": "PREPZ",
}


@dataclass(frozen=True)
class Instruction:
    """One ISA operation on explicit physical qubits."""

    mnemonic: str
    qubits: Tuple[int, ...]
    angle: Optional[float] = None

    def to_text(self) -> str:
        operands = ", ".join(f"Q{q}" for q in self.qubits)
        if self.angle is not None:
            return f"{self.mnemonic} {operands}, {self.angle:.6f}"
        return f"{self.mnemonic} {operands}"


@dataclass(frozen=True)
class Bundle:
    """Operations issued in the same cycle, plus the wait that precedes it.

    Attributes
    ----------
    wait_cycles:
        ``qwait`` inserted before this bundle (0 for back-to-back issue).
    instructions:
        Parallel operations (pairwise disjoint qubit sets).
    """

    wait_cycles: int
    instructions: Tuple[Instruction, ...]

    def to_text(self) -> str:
        parallel = " | ".join(i.to_text() for i in self.instructions)
        if self.wait_cycles > 0:
            return f"qwait {self.wait_cycles}\n{parallel}"
        return parallel


@dataclass
class IsaProgram:
    """A timed instruction stream for one mapped circuit.

    Attributes
    ----------
    bundles:
        The issue schedule.
    cycle_ns:
        Hardware cycle duration the timing is quantised to.
    num_qubits:
        Width of the physical register addressed.
    """

    bundles: List[Bundle]
    cycle_ns: float
    num_qubits: int

    @property
    def num_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.bundles)

    @property
    def duration_cycles(self) -> int:
        """Issue time of the final bundle (sum of waits + bundle count)."""
        return sum(b.wait_cycles for b in self.bundles) + len(self.bundles)

    def to_text(self) -> str:
        """Render the program as eQASM-like assembly text."""
        header = [
            f"# eqasm-lite program: {self.num_qubits} qubits, "
            f"cycle {self.cycle_ns:g} ns",
        ]
        return "\n".join(header + [b.to_text() for b in self.bundles]) + "\n"

    def instruction_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for bundle in self.bundles:
            for instruction in bundle.instructions:
                histogram[instruction.mnemonic] = (
                    histogram.get(instruction.mnemonic, 0) + 1
                )
        return histogram


def _to_instruction(gate: Gate) -> Optional[Instruction]:
    if gate.name == "barrier":
        return None
    mnemonic = _MNEMONICS.get(gate.name)
    if mnemonic is None:
        mnemonic = gate.name.upper()
    angle = gate.params[0] if gate.params else None
    return Instruction(mnemonic, gate.qubits, angle)


def compile_to_isa(schedule: Schedule, cycle_ns: float = 20.0) -> IsaProgram:
    """Lower a timed schedule into an eQASM-lite program.

    Gates starting in the same hardware cycle form one bundle; gaps
    between consecutive bundles become ``qwait`` instructions.  Gate start
    times are quantised to ``cycle_ns``.
    """
    if cycle_ns <= 0:
        raise ValueError("cycle duration must be positive")
    by_cycle: Dict[int, List[Instruction]] = {}
    for entry in schedule.entries:
        instruction = _to_instruction(entry.gate)
        if instruction is None:
            continue
        cycle = int(round(entry.start_ns / cycle_ns))
        by_cycle.setdefault(cycle, []).append(instruction)
    bundles: List[Bundle] = []
    previous = 0
    for cycle in sorted(by_cycle):
        wait = cycle - previous if bundles else cycle
        bundles.append(Bundle(max(0, wait), tuple(by_cycle[cycle])))
        previous = cycle + 1
    return IsaProgram(
        bundles=bundles,
        cycle_ns=cycle_ns,
        num_qubits=schedule.circuit.num_qubits,
    )
