"""Pulse-level lowering: the control-electronics output of Fig. 1.

"The output of the compiler, low-level instructions, are then further
translated into specific pulses to operate and control the chip's
qubits" (Sec. II).  This module performs that final translation for the
simulated stack: each scheduled gate becomes an analog waveform on a
control channel —

* one-qubit gates: DRAG-corrected Gaussian microwave pulses on the
  qubit's *drive* channel (amplitude scaled by rotation angle),
* two-qubit CZ/CX primitives: flat-top flux pulses on the pair's *flux*
  channel,
* measurements: long square pulses on the *readout* channel.

Waveforms are sampled numpy arrays, so the control layer is inspectable
and testable (pulse areas, channel occupancy, collision freedom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..circuit.gates import Gate
from ..compiler.scheduling import Schedule
from ..hardware.calibration import Calibration, SURFACE17_CALIBRATION

__all__ = [
    "Waveform",
    "Pulse",
    "PulseSchedule",
    "gaussian_envelope",
    "drag_envelope",
    "flat_top_envelope",
    "square_envelope",
    "compile_to_pulses",
]


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------

def gaussian_envelope(
    duration_ns: float, amplitude: float, sample_rate_gsps: float = 1.0
) -> np.ndarray:
    """Gaussian envelope truncated at +-2 sigma, peak ``amplitude``."""
    samples = max(2, int(round(duration_ns * sample_rate_gsps)))
    t = np.linspace(-2.0, 2.0, samples)
    return amplitude * np.exp(-0.5 * t ** 2)


def drag_envelope(
    duration_ns: float,
    amplitude: float,
    beta: float = 0.2,
    sample_rate_gsps: float = 1.0,
) -> np.ndarray:
    """DRAG pulse: complex Gaussian with derivative quadrature.

    The imaginary part is ``beta`` times the envelope derivative — the
    standard leakage-suppression correction for weakly anharmonic
    transmons.
    """
    samples = max(2, int(round(duration_ns * sample_rate_gsps)))
    t = np.linspace(-2.0, 2.0, samples)
    in_phase = amplitude * np.exp(-0.5 * t ** 2)
    quadrature = beta * (-t) * in_phase
    return in_phase + 1j * quadrature


def flat_top_envelope(
    duration_ns: float,
    amplitude: float,
    rise_fraction: float = 0.2,
    sample_rate_gsps: float = 1.0,
) -> np.ndarray:
    """Square pulse with cosine-ramped rise and fall (flux pulses)."""
    if not 0.0 <= rise_fraction <= 0.5:
        raise ValueError("rise_fraction must be within [0, 0.5]")
    samples = max(4, int(round(duration_ns * sample_rate_gsps)))
    rise = max(1, int(samples * rise_fraction))
    envelope = np.full(samples, amplitude, dtype=float)
    ramp = 0.5 * (1 - np.cos(np.linspace(0.0, math.pi, rise)))
    envelope[:rise] = amplitude * ramp
    envelope[-rise:] = amplitude * ramp[::-1]
    return envelope


def square_envelope(
    duration_ns: float, amplitude: float, sample_rate_gsps: float = 1.0
) -> np.ndarray:
    """Constant envelope (readout tones)."""
    samples = max(1, int(round(duration_ns * sample_rate_gsps)))
    return np.full(samples, amplitude, dtype=float)


# ---------------------------------------------------------------------------
# Pulses and schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Waveform:
    """Sampled analog waveform.

    Attributes
    ----------
    samples:
        Complex or real amplitude samples (|amplitude| <= 1).
    sample_rate_gsps:
        Sampling rate in gigasamples per second (samples per ns).
    """

    samples: np.ndarray
    sample_rate_gsps: float = 1.0

    @property
    def duration_ns(self) -> float:
        return len(self.samples) / self.sample_rate_gsps

    @property
    def area(self) -> float:
        """Integral of the (real-part) envelope — proportional to the
        driven rotation angle for resonant pulses."""
        return float(np.real(self.samples).sum() / self.sample_rate_gsps)

    @property
    def peak(self) -> float:
        return float(np.max(np.abs(self.samples))) if len(self.samples) else 0.0


@dataclass(frozen=True)
class Pulse:
    """One waveform on one channel at one time.

    Channels follow the conventional naming: ``d<q>`` qubit drive,
    ``f<a>-<b>`` pair flux, ``m<q>`` readout.
    """

    channel: str
    start_ns: float
    waveform: Waveform
    label: str = ""

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.waveform.duration_ns


@dataclass
class PulseSchedule:
    """The complete analog program of one circuit execution."""

    pulses: List[Pulse]
    sample_rate_gsps: float

    @property
    def duration_ns(self) -> float:
        return max((p.end_ns for p in self.pulses), default=0.0)

    @property
    def num_pulses(self) -> int:
        return len(self.pulses)

    def channels(self) -> List[str]:
        return sorted({p.channel for p in self.pulses})

    def pulses_on(self, channel: str) -> List[Pulse]:
        return sorted(
            (p for p in self.pulses if p.channel == channel),
            key=lambda p: p.start_ns,
        )

    def has_collisions(self) -> bool:
        """True when two pulses overlap on the same channel."""
        for channel in self.channels():
            sequence = self.pulses_on(channel)
            for first, second in zip(sequence, sequence[1:]):
                if second.start_ns < first.end_ns - 1e-9:
                    return True
        return False

    def total_samples(self) -> int:
        return sum(len(p.waveform.samples) for p in self.pulses)

    def channel_occupancy(self, channel: str) -> float:
        """Fraction of the schedule during which the channel is driven."""
        duration = self.duration_ns
        if duration == 0:
            return 0.0
        busy = sum(p.waveform.duration_ns for p in self.pulses_on(channel))
        return busy / duration


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

_DRIVE_AMPLITUDE = 0.8  # peak amplitude of a pi rotation
_FLUX_AMPLITUDE = 0.5
_READOUT_AMPLITUDE = 0.3


def _rotation_angle(gate: Gate) -> float:
    """Effective rotation angle of a one-qubit gate (for amplitude scaling)."""
    if gate.params:
        return abs(gate.params[0])
    half_turn = {"x", "y", "z", "h"}
    quarter = {"s", "sdg", "sx", "sxdg"}
    eighth = {"t", "tdg"}
    if gate.name in half_turn:
        return math.pi
    if gate.name in quarter:
        return math.pi / 2.0
    if gate.name in eighth:
        return math.pi / 4.0
    return math.pi


def compile_to_pulses(
    schedule: Schedule,
    calibration: Calibration = SURFACE17_CALIBRATION,
    sample_rate_gsps: float = 1.0,
) -> PulseSchedule:
    """Lower a timed gate schedule to channel waveforms.

    Virtual-Z rotations (``rz``/``p``/``z``/``s``/``t`` family) are
    implemented in software on real hardware — they become zero-length
    frame updates and emit no waveform, which is also how this lowering
    treats them.
    """
    if sample_rate_gsps <= 0:
        raise ValueError("sample rate must be positive")
    virtual_z = {"z", "s", "sdg", "t", "tdg", "rz", "p", "i"}
    pulses: List[Pulse] = []
    for entry in schedule.entries:
        gate = entry.gate
        if gate.name == "barrier" or gate.name in virtual_z and gate.num_qubits == 1:
            continue
        if gate.name in ("measure", "reset"):
            waveform = Waveform(
                square_envelope(
                    entry.duration_ns, _READOUT_AMPLITUDE, sample_rate_gsps
                ),
                sample_rate_gsps,
            )
            pulses.append(
                Pulse(f"m{gate.qubits[0]}", entry.start_ns, waveform, gate.name)
            )
            continue
        if gate.num_qubits == 1:
            amplitude = _DRIVE_AMPLITUDE * _rotation_angle(gate) / math.pi
            waveform = Waveform(
                drag_envelope(
                    entry.duration_ns, amplitude, sample_rate_gsps=sample_rate_gsps
                ),
                sample_rate_gsps,
            )
            pulses.append(
                Pulse(f"d{gate.qubits[0]}", entry.start_ns, waveform, gate.name)
            )
            continue
        # Two-qubit primitives: one flux pulse on the pair channel.
        a, b = sorted(gate.qubits[:2])
        waveform = Waveform(
            flat_top_envelope(
                entry.duration_ns, _FLUX_AMPLITUDE, sample_rate_gsps=sample_rate_gsps
            ),
            sample_rate_gsps,
        )
        pulses.append(Pulse(f"f{a}-{b}", entry.start_ns, waveform, gate.name))
    pulses.sort(key=lambda p: (p.start_ns, p.channel))
    return PulseSchedule(pulses, sample_rate_gsps)
