"""The full-stack pipeline of the paper's Fig. 1.

:class:`FullStack` wires the functional elements together — quantum
application (a :class:`~repro.circuit.Circuit`), compiler (a
:class:`~repro.compiler.mapper.QuantumMapper`), QISA code generation,
control-electronics constraints and the quantum device — and executes a
circuit end to end, producing an :class:`ExecutionReport` with every
layer's artefact.

The grey co-design arrows of Fig. 1 are visible in the data flow: device
calibration feeds the mapper and the fidelity estimate (bottom-up), and
the application's interaction-graph profile can steer mapper selection
via :class:`~repro.core.codesign.MapperAdvisor` (top-down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit import Circuit
from ..compiler.mapper import MappingResult, QuantumMapper, trivial_mapper
from ..compiler.scheduling import Schedule
from ..core.codesign import MapperAdvisor
from ..hardware.device import Device
from ..metrics.fidelity import decoherence_fidelity
from .control import ControlModel
from .isa import IsaProgram, compile_to_isa

__all__ = ["ExecutionReport", "FullStack"]

_SIM_LIMIT = 16


@dataclass
class ExecutionReport:
    """Everything one run through the stack produced.

    Attributes
    ----------
    mapping:
        Compiler output (physical circuit, layouts, overhead, fidelity).
    schedule:
        Timed realisation under the control constraints.
    program:
        The eQASM-lite instruction stream.
    estimated_fidelity:
        Gate-product fidelity including decoherence exposure.
    counts:
        Measurement histogram from the state-vector backend (only for
        circuits narrow enough to simulate; ``None`` otherwise).
    """

    mapping: MappingResult
    schedule: Schedule
    program: IsaProgram
    estimated_fidelity: float
    counts: Optional[Dict[str, int]] = None

    @property
    def latency_ns(self) -> float:
        return self.schedule.latency_ns


class FullStack:
    """An executable full-stack quantum computing system.

    Parameters
    ----------
    device:
        The bottom layer (topology + calibration + gate set).
    mapper:
        The compiler; defaults to the trivial mapper.  Pass an
        :class:`~repro.core.codesign.MapperAdvisor` via ``advisor`` to
        let the application profile choose the mapper instead.
    control:
        Control-electronics constraints (optional).
    cycle_ns:
        QISA timing quantum.
    """

    def __init__(
        self,
        device: Device,
        mapper: Optional[QuantumMapper] = None,
        advisor: Optional[MapperAdvisor] = None,
        control: Optional[ControlModel] = None,
        cycle_ns: float = 20.0,
    ) -> None:
        if mapper is not None and advisor is not None:
            raise ValueError("pass either a fixed mapper or an advisor, not both")
        self.device = device
        self.mapper = mapper if mapper is not None else trivial_mapper()
        self.advisor = advisor
        self.control = control
        self.cycle_ns = cycle_ns

    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit) -> MappingResult:
        """Run the compiler layer only."""
        if self.advisor is not None:
            return self.advisor.map(circuit, self.device)
        return self.mapper.map(circuit, self.device)

    def execute(
        self,
        circuit: Circuit,
        shots: int = 0,
        seed: Optional[int] = None,
    ) -> ExecutionReport:
        """Push a circuit through every layer of the stack.

        With ``shots > 0`` and a sufficiently narrow mapped circuit, the
        state-vector backend samples a measurement histogram (the "quantum
        device" at the bottom of the stack is the simulator here — the
        substitution DESIGN.md documents).
        """
        mapping = self.compile(circuit)
        max_parallel = self.control.max_parallel_2q if self.control else None
        schedule = mapping.schedule(max_parallel_2q=max_parallel)
        program = compile_to_isa(schedule, cycle_ns=self.cycle_ns)
        fidelity = decoherence_fidelity(schedule, self.device.calibration)
        counts = None
        if shots > 0:
            counts = self._sample(mapping, shots, seed)
        return ExecutionReport(
            mapping=mapping,
            schedule=schedule,
            program=program,
            estimated_fidelity=fidelity,
            counts=counts,
        )

    def _sample(
        self, mapping: MappingResult, shots: int, seed: Optional[int]
    ) -> Optional[Dict[str, int]]:
        from ..sim.statevector import sample_counts

        compact, _, _ = mapping._compact()
        if compact.num_qubits > _SIM_LIMIT:
            return None
        return sample_counts(compact.without_directives(), shots, seed=seed)
