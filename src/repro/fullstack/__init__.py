"""Full-stack integration: QISA, control electronics, end-to-end pipeline."""

from .isa import Bundle, Instruction, IsaProgram, compile_to_isa
from .control import ControlConstraintViolation, ControlModel
from .pulses import (
    Pulse,
    PulseSchedule,
    Waveform,
    compile_to_pulses,
    drag_envelope,
    flat_top_envelope,
    gaussian_envelope,
    square_envelope,
)
from .stack import ExecutionReport, FullStack

__all__ = [
    "Bundle",
    "Instruction",
    "IsaProgram",
    "compile_to_isa",
    "ControlConstraintViolation",
    "ControlModel",
    "Pulse",
    "PulseSchedule",
    "Waveform",
    "compile_to_pulses",
    "drag_envelope",
    "flat_top_envelope",
    "gaussian_envelope",
    "square_envelope",
    "ExecutionReport",
    "FullStack",
]
