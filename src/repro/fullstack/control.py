"""Control-electronics model (the classical-control layer of Fig. 1).

The paper lists "classical control constraints that come from the use of
shared control electronics" among the hardware limitations — shared
waveform generators limit how many operations of a kind can run at once.
This module models such a controller and checks/was-enforces the
constraint on schedules and ISA programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..compiler.scheduling import Schedule, asap_schedule
from ..hardware.calibration import Calibration, SURFACE17_CALIBRATION

__all__ = ["ControlConstraintViolation", "ControlModel"]


@dataclass(frozen=True)
class ControlConstraintViolation:
    """One point in time where the controller is oversubscribed.

    Attributes
    ----------
    time_ns:
        Start time at which the violation occurs.
    kind:
        ``"two-qubit"`` or ``"measurement"``.
    count / limit:
        How many operations overlapped vs how many the hardware allows.
    """

    time_ns: float
    kind: str
    count: int
    limit: int


@dataclass(frozen=True)
class ControlModel:
    """Shared-control resource limits of the classical electronics.

    Attributes
    ----------
    max_parallel_2q:
        Simultaneously driveable two-qubit gates (flux pulser channels);
        ``None`` means unconstrained.
    max_parallel_measure:
        Simultaneously running measurements (readout feedlines).
    """

    max_parallel_2q: Optional[int] = None
    max_parallel_measure: Optional[int] = None
    name: str = "controller"

    def __post_init__(self) -> None:
        for label, limit in (
            ("max_parallel_2q", self.max_parallel_2q),
            ("max_parallel_measure", self.max_parallel_measure),
        ):
            if limit is not None and limit < 1:
                raise ValueError(f"{label} must be at least 1")

    # ------------------------------------------------------------------
    def violations(self, schedule: Schedule) -> List[ControlConstraintViolation]:
        """All constraint violations of a schedule."""
        found: List[ControlConstraintViolation] = []
        found.extend(
            self._check(
                schedule,
                lambda e: e.gate.is_two_qubit,
                self.max_parallel_2q,
                "two-qubit",
            )
        )
        found.extend(
            self._check(
                schedule,
                lambda e: e.gate.name == "measure",
                self.max_parallel_measure,
                "measurement",
            )
        )
        return found

    def _check(
        self, schedule: Schedule, selector, limit: Optional[int], kind: str
    ) -> List[ControlConstraintViolation]:
        if limit is None:
            return []
        entries = [e for e in schedule.entries if selector(e)]
        violations = []
        for entry in entries:
            overlapping = sum(
                1
                for other in entries
                if other.start_ns < entry.end_ns and other.end_ns > entry.start_ns
            )
            if overlapping > limit:
                violations.append(
                    ControlConstraintViolation(
                        entry.start_ns, kind, overlapping, limit
                    )
                )
        return violations

    def satisfies(self, schedule: Schedule) -> bool:
        return not self.violations(schedule)

    # ------------------------------------------------------------------
    def reschedule(
        self,
        schedule: Schedule,
        calibration: Calibration = SURFACE17_CALIBRATION,
    ) -> Schedule:
        """Re-run ASAP scheduling with this controller's 2q limit enforced.

        Measurement limits are not rescheduled (measurements sit at the
        end of NISQ circuits; the checker reports them instead).
        """
        return asap_schedule(
            schedule.circuit, calibration, max_parallel_2q=self.max_parallel_2q
        )
