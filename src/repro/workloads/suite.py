"""The benchmark-suite sampler (substitute for the qbench suite [34]).

The paper's evaluation uses 200 circuits "of a large variety in size
(1-54 qubits, 5-100000 gates, 10-90% two-qubit gate percentage) and type
(random, reversible ones and those corresponding to real algorithms)".
:func:`evaluation_suite` samples exactly such a population: one third
uniformly-random circuits, one third random Toffoli networks (the RevLib
class) and one third instances of real algorithm families.

Gate counts are drawn log-uniformly so the suite covers the full range
while keeping its mass at tractable sizes — the same shape the original
suite has (most qbench circuits are small; a few are huge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..circuit import Circuit
from . import algorithms, qaoa, random_circuits, reversible

__all__ = ["BenchmarkCircuit", "evaluation_suite", "small_suite", "FAMILIES"]

#: The three benchmark classes of the paper.
FAMILIES = ("random", "reversible", "real")


@dataclass(frozen=True)
class BenchmarkCircuit:
    """A suite member: the circuit plus its provenance.

    Attributes
    ----------
    circuit:
        The benchmark circuit itself.
    family:
        One of :data:`FAMILIES` — "random" and "reversible" are the
        synthetic classes (squares in Figs. 3/5), "real" are algorithm
        instances (circles).
    source:
        Generator name and parameters, for reports.
    """

    circuit: Circuit
    family: str
    source: str

    @property
    def is_synthetic(self) -> bool:
        """The paper plots random *and* reversible circuits as synthetic."""
        return self.family != "real"


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> int:
    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))


def _sample_random(rng: np.random.Generator, max_qubits: int, max_gates: int) -> BenchmarkCircuit:
    num_qubits = int(rng.integers(2, max_qubits + 1))
    num_gates = max(5, _log_uniform(rng, 5, max_gates))
    fraction = float(rng.uniform(0.1, 0.9))
    circuit = random_circuits.random_circuit(
        num_qubits, num_gates, fraction, seed=int(rng.integers(2 ** 31))
    )
    return BenchmarkCircuit(circuit, "random", circuit.name)


def _sample_reversible(rng: np.random.Generator, max_qubits: int, max_gates: int) -> BenchmarkCircuit:
    choice = rng.random()
    if choice < 0.6:
        num_qubits = int(rng.integers(3, max_qubits + 1))
        num_gates = max(5, _log_uniform(rng, 5, max_gates))
        circuit = reversible.random_reversible_circuit(
            num_qubits, num_gates, seed=int(rng.integers(2 ** 31))
        )
    elif choice < 0.75:
        bits = int(rng.integers(2, max(3, (max_qubits - 2) // 2) + 1))
        circuit = reversible.cuccaro_adder(bits)
    elif choice < 0.9:
        bits = int(rng.integers(2, min(16, max_qubits) + 1))
        circuit = reversible.increment_circuit(bits)
    else:
        bits = int(rng.integers(2, max_qubits))
        circuit = reversible.parity_circuit(bits)
    return BenchmarkCircuit(circuit, "reversible", circuit.name)


def _sample_real(rng: np.random.Generator, max_qubits: int, max_gates: int) -> BenchmarkCircuit:
    families: List[Callable[[], Circuit]] = []
    small = int(rng.integers(2, min(16, max_qubits) + 1))
    medium = int(rng.integers(2, min(30, max_qubits) + 1))
    wide = int(rng.integers(2, max_qubits + 1))
    layers = int(rng.integers(1, 9))
    seed = int(rng.integers(2 ** 31))
    families = [
        lambda: algorithms.ghz_state(wide),
        lambda: algorithms.w_state(medium),
        lambda: algorithms.qft(small),
        lambda: algorithms.quantum_phase_estimation(min(small, 12)),
        lambda: algorithms.bernstein_vazirani(
            [int(b) for b in np.random.default_rng(seed).integers(0, 2, size=max(1, wide - 1))]
        ),
        lambda: algorithms.deutsch_jozsa(max(1, medium - 1)),
        lambda: algorithms.grover(min(small, 8)),
        lambda: algorithms.vqe_ansatz(medium, num_layers=layers, seed=seed),
        lambda: qaoa.qaoa_maxcut(
            max(3, small),
            qaoa.random_maxcut_instance(
                max(3, small),
                min(
                    max(3, small) * (max(3, small) - 1) // 2,
                    max(3, small) - 1 + int(rng.integers(0, max(3, small))),
                ),
                seed=seed,
            ),
            num_layers=layers,
            entangler="cx",
            seed=seed,
        ),
        lambda: random_circuits.supremacy_style_circuit(
            max(2, small // 2), max(2, small // 2), depth=layers + 2, seed=seed
        ),
    ]
    builder = families[int(rng.integers(len(families)))]
    circuit = builder()
    return BenchmarkCircuit(circuit, "real", circuit.name)


_SAMPLERS = {
    "random": _sample_random,
    "reversible": _sample_reversible,
    "real": _sample_real,
}


def evaluation_suite(
    num_circuits: int = 200,
    seed: int = 2022,
    max_qubits: int = 54,
    max_gates: int = 20000,
    families: Sequence[str] = FAMILIES,
) -> List[BenchmarkCircuit]:
    """Sample the paper's 200-circuit evaluation population.

    Parameters
    ----------
    num_circuits:
        Suite size (the paper uses 200).
    seed:
        Master seed; the suite is fully deterministic in it.
    max_qubits / max_gates:
        Upper bounds of the size distribution.  The paper quotes up to
        100000 gates; the default caps at 20000 to keep a full mapping
        sweep of the suite in the minutes range — pass a larger value to
        match the quoted bound exactly.
    families:
        Which benchmark classes to include (cycled round-robin).
    """
    if num_circuits < 1:
        raise ValueError("need at least one circuit")
    unknown = set(families) - set(FAMILIES)
    if unknown:
        raise ValueError(f"unknown families: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    suite = []
    for index in range(num_circuits):
        family = families[index % len(families)]
        suite.append(_SAMPLERS[family](rng, max_qubits, max_gates))
    return suite


def small_suite(num_circuits: int = 12, seed: int = 7) -> List[BenchmarkCircuit]:
    """A fast, small-circuit suite for tests and examples."""
    return evaluation_suite(
        num_circuits=num_circuits, seed=seed, max_qubits=10, max_gates=200
    )
