"""Mirror-circuit benchmarks (application-oriented device benchmarking).

The paper cites application-oriented benchmark efforts (Lubinski et al.,
Mills et al.) among the works motivating deeper circuit characterisation.
Mirror circuits are their workhorse: run a circuit, a random Pauli
frame, then the circuit's inverse — the ideal output is a *known
computational basis state*, so success probability is directly
measurable on hardware (or our noisy simulator) without classical
simulation of the circuit itself.

``mirror_circuit`` builds the benchmark; ``mirror_expected_bits``
predicts the ideal outcome; ``mirror_success_probability`` scores a
measurement histogram.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import Gate

__all__ = [
    "mirror_circuit",
    "mirror_expected_bits",
    "mirror_success_probability",
]


def _random_pauli_frame(
    num_qubits: int, rng: np.random.Generator
) -> List[Gate]:
    """One random X/Z-layer Pauli per qubit (identity allowed)."""
    frame = []
    for q in range(num_qubits):
        choice = int(rng.integers(4))
        if choice:
            frame.append(Gate(("x", "y", "z")[choice - 1], (q,)))
    return frame


def mirror_circuit(
    base: Circuit,
    seed: Optional[int] = None,
    name: str = "",
    frame: str = "end",
) -> Circuit:
    """Build the mirror benchmark of ``base``.

    Structure: ``base``, ``base`` inverted, and a random Pauli frame,
    then a measurement of every qubit.  The unitary part composes to a
    bare Pauli string, so on the |0...0> input the ideal output is the
    single basis state :func:`mirror_expected_bits` computes — the
    benchmark is self-verifying without simulating ``base``.

    Parameters
    ----------
    base:
        Measurement-free circuit to mirror.
    frame:
        Where the random Pauli frame sits:

        * ``"end"`` (default) — after the inverse; valid for *any* base
          circuit,
        * ``"middle"`` — between ``base`` and its inverse, the classic
          randomised-mirroring position; the conjugated Pauli is only a
          Pauli again when ``base`` is a Clifford circuit, so the ideal
          output is only guaranteed to be a basis state then.
    """
    if any(g.name in ("measure", "reset") for g in base):
        raise ValueError("mirror circuits need a measurement-free base")
    if frame not in ("end", "middle"):
        raise ValueError("frame must be 'end' or 'middle'")
    rng = np.random.default_rng(seed)
    mirrored = Circuit(
        base.num_qubits, name=name or f"mirror_{base.name or 'circuit'}"
    )
    paulis = _random_pauli_frame(base.num_qubits, rng)
    for gate in base:
        mirrored.append(gate)
    if frame == "middle":
        for pauli in paulis:
            mirrored.append(pauli)
    for gate in base.inverse():
        mirrored.append(gate)
    if frame == "end":
        for pauli in paulis:
            mirrored.append(pauli)
    mirrored.measure_all()
    return mirrored


def mirror_expected_bits(mirrored: Circuit) -> str:
    """The ideal (noise-free) measurement outcome of a mirror circuit.

    Computed with the state-vector oracle on the unitary part; the
    result is guaranteed to be a single basis state (asserted), returned
    as a bit string with qubit 0 leftmost.
    """
    from ..sim.statevector import statevector

    amplitudes = statevector(mirrored.without_directives()).reshape(-1)
    probabilities = np.abs(amplitudes) ** 2
    winner = int(np.argmax(probabilities))
    if probabilities[winner] < 1.0 - 1e-6:
        raise ValueError(
            "circuit is not a valid mirror benchmark (ideal output is "
            "not a basis state)"
        )
    return format(winner, f"0{mirrored.num_qubits}b")


def mirror_success_probability(
    counts: Dict[str, int], expected_bits: str
) -> float:
    """Fraction of shots that produced the ideal outcome."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty measurement histogram")
    return counts.get(expected_bits, 0) / total
