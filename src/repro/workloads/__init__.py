"""Benchmark workloads: random, reversible and real-algorithm circuits."""

from .random_circuits import (
    random_circuit,
    random_clifford_circuit,
    supremacy_style_circuit,
)
from .qaoa import (
    FIG4_NUM_GATES,
    FIG4_NUM_QUBITS,
    FIG4_TWO_QUBIT_FRACTION,
    fig4_qaoa_circuit,
    fig4_random_circuit,
    qaoa_maxcut,
    random_maxcut_instance,
)
from .algorithms import (
    bernstein_vazirani,
    deutsch_jozsa,
    ghz_state,
    grover,
    inverse_qft,
    qft,
    quantum_phase_estimation,
    quantum_volume,
    vqe_ansatz,
    w_state,
)
from .reversible import (
    cuccaro_adder,
    increment_circuit,
    majority_vote_circuit,
    parity_circuit,
    random_reversible_circuit,
)
from .suite import FAMILIES, BenchmarkCircuit, evaluation_suite, small_suite
from .trotter import (
    heisenberg_chain,
    ising_chain,
    ising_grid,
    ising_ring,
    two_local_trotter,
)
from .io import load_suite, save_suite
from .reporting import SuiteSummary, format_suite_summary, summarize_suite
from .mirror import (
    mirror_circuit,
    mirror_expected_bits,
    mirror_success_probability,
)

__all__ = [
    "random_circuit",
    "random_clifford_circuit",
    "supremacy_style_circuit",
    "FIG4_NUM_GATES",
    "FIG4_NUM_QUBITS",
    "FIG4_TWO_QUBIT_FRACTION",
    "fig4_qaoa_circuit",
    "fig4_random_circuit",
    "qaoa_maxcut",
    "random_maxcut_instance",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "ghz_state",
    "grover",
    "inverse_qft",
    "qft",
    "quantum_phase_estimation",
    "quantum_volume",
    "vqe_ansatz",
    "w_state",
    "cuccaro_adder",
    "increment_circuit",
    "majority_vote_circuit",
    "parity_circuit",
    "random_reversible_circuit",
    "FAMILIES",
    "BenchmarkCircuit",
    "evaluation_suite",
    "small_suite",
    "heisenberg_chain",
    "ising_chain",
    "ising_grid",
    "ising_ring",
    "two_local_trotter",
    "load_suite",
    "save_suite",
    "SuiteSummary",
    "format_suite_summary",
    "summarize_suite",
    "mirror_circuit",
    "mirror_expected_bits",
    "mirror_success_probability",
]
