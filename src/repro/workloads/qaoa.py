"""QAOA workloads (the "real algorithm" of the paper's Fig. 4).

The Quantum Approximate Optimization Algorithm for MaxCut applies, per
round, one two-qubit phase-separator per *problem-graph edge* and a
single-qubit mixer on every qubit.  Its interaction graph therefore *is*
the problem graph — sparse and structured — which is exactly the property
Fig. 4 uses to contrast real algorithms with random circuits of identical
size parameters.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit

__all__ = [
    "qaoa_maxcut",
    "random_maxcut_instance",
    "fig4_qaoa_circuit",
    "fig4_random_circuit",
    "FIG4_NUM_QUBITS",
    "FIG4_NUM_GATES",
    "FIG4_TWO_QUBIT_FRACTION",
]


def random_maxcut_instance(
    num_nodes: int,
    num_edges: int,
    seed: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """A random connected MaxCut problem graph (simple, undirected).

    A spanning tree is laid first so the instance is connected, then the
    remaining edges are drawn uniformly from the unused pairs.
    """
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges < num_nodes - 1 or num_edges > max_edges:
        raise ValueError(
            f"edge count {num_edges} out of range for {num_nodes} nodes"
        )
    rng = np.random.default_rng(seed)
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    edges = set()
    for i in range(1, num_nodes):
        j = int(rng.integers(i))
        edges.add(tuple(sorted((nodes[i], nodes[j]))))
    candidates = [
        (a, b)
        for a in range(num_nodes)
        for b in range(a + 1, num_nodes)
        if (a, b) not in edges
    ]
    rng.shuffle(candidates)
    for edge in candidates[: num_edges - len(edges)]:
        edges.add(edge)
    return sorted(edges)


def qaoa_maxcut(
    num_qubits: int,
    edges: Iterable[Tuple[int, int]],
    num_layers: int = 1,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    entangler: str = "rzz",
    mixer_rotations: int = 1,
    seed: Optional[int] = None,
) -> Circuit:
    """Build a ``p``-layer QAOA MaxCut ansatz.

    Parameters
    ----------
    num_qubits:
        Problem size (one qubit per graph node).
    edges:
        MaxCut problem-graph edges.
    num_layers:
        Number of (phase separator, mixer) rounds ``p``.
    gammas / betas:
        Per-layer angles; random angles are drawn when omitted.
    entangler:
        ``"rzz"`` applies one native ZZ-rotation per edge; ``"cx"``
        expands each into ``cx, rz, cx`` (CNOT-basis form).
    mixer_rotations:
        Number of rotations per qubit in each mixer layer (1 = plain
        ``rx`` mixer; larger values model richer mixers and let callers
        tune the two-qubit-gate percentage without touching structure).
    """
    edges = [tuple(e) for e in edges]
    if entangler not in ("rzz", "cx"):
        raise ValueError("entangler must be 'rzz' or 'cx'")
    if mixer_rotations < 1:
        raise ValueError("mixer needs at least one rotation per qubit")
    rng = np.random.default_rng(seed)
    if gammas is None:
        gammas = rng.uniform(0, 2 * math.pi, size=num_layers).tolist()
    if betas is None:
        betas = rng.uniform(0, math.pi, size=num_layers).tolist()
    if len(gammas) != num_layers or len(betas) != num_layers:
        raise ValueError("need one gamma and one beta per layer")

    circuit = Circuit(num_qubits, name=f"qaoa_{num_qubits}q_p{num_layers}")
    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(num_layers):
        gamma, beta = gammas[layer], betas[layer]
        for a, b in edges:
            if entangler == "rzz":
                circuit.rzz(2 * gamma, a, b)
            else:
                circuit.cx(a, b)
                circuit.rz(2 * gamma, b)
                circuit.cx(a, b)
        for q in range(num_qubits):
            circuit.rx(2 * beta, q)
            for extra in range(mixer_rotations - 1):
                # Richer mixers interleave Z- and X-rotations.
                if extra % 2 == 0:
                    circuit.rz(2 * beta, q)
                else:
                    circuit.rx(2 * beta, q)
    return circuit


# --- The exact Fig. 4 configuration ---------------------------------------

FIG4_NUM_QUBITS = 6
FIG4_NUM_GATES = 456
FIG4_TWO_QUBIT_FRACTION = 0.135


def fig4_qaoa_circuit(seed: int = 7) -> Circuit:
    """QAOA circuit with (as close as constructible) the Fig. 4 size
    parameters: 6 qubits, 456 gates, ~13.5% two-qubit gates.

    A 6-node MaxCut instance with 8 edges is run for enough layers to
    reach 62 two-qubit gates (13.6%), and the mixer is padded with extra
    single-qubit rotations to land on exactly 456 gates.  The padding only
    touches single-qubit structure, so the interaction graph — the point
    of the figure — is untouched: its edges are exactly the MaxCut-graph
    edges, with weights proportional to the layer count.
    """
    edges = random_maxcut_instance(FIG4_NUM_QUBITS, 8, seed=seed)
    target_two = int(round(FIG4_NUM_GATES * FIG4_TWO_QUBIT_FRACTION))  # 62
    num_layers = max(1, round(target_two / len(edges)))  # 8 layers -> 64
    circuit = qaoa_maxcut(
        FIG4_NUM_QUBITS, edges, num_layers=num_layers, entangler="rzz", seed=seed
    )
    rng = np.random.default_rng(seed)
    while circuit.num_gates < FIG4_NUM_GATES:
        q = int(rng.integers(FIG4_NUM_QUBITS))
        circuit.rz(float(rng.uniform(0, 2 * math.pi)), q)
    circuit.name = "qaoa_fig4"
    return circuit


def fig4_random_circuit(seed: int = 7) -> Circuit:
    """The matching random circuit of Fig. 4: identical size parameters."""
    from .random_circuits import random_circuit

    circuit = random_circuit(
        FIG4_NUM_QUBITS,
        FIG4_NUM_GATES,
        FIG4_TWO_QUBIT_FRACTION,
        seed=seed,
        two_qubit_gates=("cx", "cz"),
    )
    circuit.name = "random_fig4"
    return circuit
