"""Benchmark-corpus I/O: persist suites as OpenQASM directories.

The paper's qbench suite ships as a directory of QASM files.  This module
round-trips our generated suites through the same representation — a
directory of ``.qasm`` files plus a ``manifest.tsv`` recording each
circuit's family and name — so suites can be archived, diffed against
other tools and re-read without regeneration.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..circuit import parse_qasm, to_qasm
from .suite import BenchmarkCircuit, FAMILIES

__all__ = ["save_suite", "load_suite", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.tsv"
_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


def _file_name(index: int, benchmark: BenchmarkCircuit) -> str:
    stem = _SAFE_NAME.sub("_", benchmark.circuit.name or benchmark.source or "circuit")
    return f"{index:04d}_{stem}.qasm"


def _render_benchmark(benchmark: BenchmarkCircuit) -> str:
    """Serialise one suite member; module-level so workers can import it."""
    return to_qasm(benchmark.circuit)


def save_suite(
    suite: Sequence[BenchmarkCircuit],
    directory: Union[str, Path],
    workers: Optional[int] = None,
) -> List[Path]:
    """Write a suite to ``directory`` (one QASM file each + manifest).

    The directory is created if needed; existing files are overwritten.
    Returns the written circuit paths (manifest excluded).

    ``workers`` fans the QASM serialisation out over that many processes
    (serialisation is pure, so the written files are byte-identical to a
    serial run); ``None`` or ``1`` keeps the serial loop.  All filesystem
    writes happen in the parent either way.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suite = list(suite)
    if workers is not None and workers > 1:
        from ..runtime.parallel import parallel_map

        result = parallel_map(_render_benchmark, suite, workers=workers)
        failed = [o for o in result.outcomes if not o.ok]
        if failed:
            raise RuntimeError(
                f"serialising benchmark {failed[0].index} failed: "
                f"{failed[0].error}"
            )
        sources = [o.value for o in result.outcomes]
    else:
        sources = [_render_benchmark(benchmark) for benchmark in suite]
    paths: List[Path] = []
    manifest_rows = ["index\tfile\tfamily\tname"]
    for index, (benchmark, source) in enumerate(zip(suite, sources)):
        name = _file_name(index, benchmark)
        path = directory / name
        path.write_text(source)
        paths.append(path)
        manifest_rows.append(
            f"{index}\t{name}\t{benchmark.family}\t{benchmark.source}"
        )
    (directory / MANIFEST_NAME).write_text("\n".join(manifest_rows) + "\n")
    return paths


def load_suite(directory: Union[str, Path]) -> List[BenchmarkCircuit]:
    """Read a suite written by :func:`save_suite`.

    Raises
    ------
    FileNotFoundError
        When the directory or its manifest is missing.
    ValueError
        On malformed manifest rows or unknown families.
    """
    directory = Path(directory)
    manifest = directory / MANIFEST_NAME
    if not manifest.is_file():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    suite: List[BenchmarkCircuit] = []
    lines = manifest.read_text().splitlines()
    for line_number, row in enumerate(lines[1:], start=2):
        if not row.strip():
            continue
        parts = row.split("\t")
        if len(parts) != 4:
            raise ValueError(f"{manifest}:{line_number}: malformed row {row!r}")
        _, file_name, family, name = parts
        if family not in FAMILIES:
            raise ValueError(
                f"{manifest}:{line_number}: unknown family {family!r}"
            )
        circuit = parse_qasm((directory / file_name).read_text())
        circuit.name = name
        suite.append(BenchmarkCircuit(circuit, family, name))
    return suite
