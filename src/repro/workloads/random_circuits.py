"""Synthetic (random) benchmark circuits.

Random circuits are the "synthetic" class of the paper's benchmark suite
(squares in Figs. 3 and 5).  They are parameterised by exactly the three
classical size parameters — qubit count, gate count and two-qubit-gate
fraction — and draw their interactions uniformly over all qubit pairs,
which is what gives them the dense, near-uniform interaction graphs that
Fig. 4 contrasts with real algorithms.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..circuit.gates import Gate

__all__ = [
    "random_circuit",
    "random_clifford_circuit",
    "supremacy_style_circuit",
]

_DEFAULT_1Q = ("x", "y", "z", "h", "s", "t", "rx", "ry", "rz")
_DEFAULT_2Q = ("cx", "cz")
_PARAMETRIC = {"rx", "ry", "rz", "p", "cp", "crz", "rzz", "rxx"}


def random_circuit(
    num_qubits: int,
    num_gates: int,
    two_qubit_fraction: float,
    seed: Optional[int] = None,
    one_qubit_gates: Sequence[str] = _DEFAULT_1Q,
    two_qubit_gates: Sequence[str] = _DEFAULT_2Q,
    name: str = "",
) -> Circuit:
    """Uniformly random circuit with exact size parameters.

    Exactly ``round(num_gates * two_qubit_fraction)`` two-qubit gates are
    placed (on uniformly random qubit pairs) and the remainder are
    one-qubit gates on uniformly random qubits, in shuffled order.
    Parametric gates draw angles uniformly from ``[0, 2*pi)``.

    Parameters
    ----------
    num_qubits:
        Register width; must be >= 2 whenever two-qubit gates are requested.
    num_gates:
        Total gate count of the result.
    two_qubit_fraction:
        Target share of two-qubit gates in ``[0, 1]``.
    seed:
        RNG seed for reproducibility.
    """
    if num_qubits < 1:
        raise ValueError("random circuit needs at least one qubit")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise ValueError("two_qubit_fraction must be within [0, 1]")
    num_two = int(round(num_gates * two_qubit_fraction))
    if num_two > 0 and num_qubits < 2:
        raise ValueError("two-qubit gates need at least two qubits")
    rng = np.random.default_rng(seed)
    kinds = [2] * num_two + [1] * (num_gates - num_two)
    rng.shuffle(kinds)
    circuit = Circuit(
        num_qubits, name=name or f"random_{num_qubits}q_{num_gates}g"
    )
    for kind in kinds:
        if kind == 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            gate_name = str(rng.choice(two_qubit_gates))
            qubits: Tuple[int, ...] = (int(a), int(b))
        else:
            gate_name = str(rng.choice(one_qubit_gates))
            qubits = (int(rng.integers(num_qubits)),)
        params: Tuple[float, ...] = ()
        if gate_name in _PARAMETRIC:
            params = (float(rng.uniform(0.0, 2.0 * math.pi)),)
        circuit.append(Gate(gate_name, qubits, params))
    return circuit


def random_clifford_circuit(
    num_qubits: int,
    num_gates: int,
    two_qubit_fraction: float = 0.3,
    seed: Optional[int] = None,
) -> Circuit:
    """Random circuit restricted to Clifford gates (H, S, X, Y, Z, CX, CZ)."""
    return random_circuit(
        num_qubits,
        num_gates,
        two_qubit_fraction,
        seed=seed,
        one_qubit_gates=("h", "s", "sdg", "x", "y", "z"),
        two_qubit_gates=("cx", "cz"),
        name=f"clifford_{num_qubits}q_{num_gates}g",
    )


def supremacy_style_circuit(
    rows: int,
    cols: int,
    depth: int,
    seed: Optional[int] = None,
) -> Circuit:
    """Google-supremacy-style layered random circuit on a virtual grid.

    Alternates a layer of random sqrt-gates (sx / "sy" / t) on every qubit
    with a layer of CZ gates along one of four grid-edge orientations,
    cycling orientations per layer — the structure of the Sycamore
    benchmark circuits, here over ``rows*cols`` virtual qubits.  Unlike
    :func:`random_circuit` its interaction graph is a sparse grid, so it
    profiles like a "real" structured workload despite being random.
    """
    if rows < 1 or cols < 1 or depth < 1:
        raise ValueError("rows, cols and depth must be positive")
    rng = np.random.default_rng(seed)
    n = rows * cols
    circuit = Circuit(n, name=f"supremacy_{rows}x{cols}_d{depth}")
    for q in range(n):
        circuit.h(q)

    def node(r: int, c: int) -> int:
        return r * cols + c

    orientations: List[List[Tuple[int, int]]] = [[], [], [], []]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                orientations[2 * (c % 2)].append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                orientations[1 + 2 * (r % 2)].append((node(r, c), node(r + 1, c)))
    one_qubit_pool = ("sx", "t", "h")
    for layer in range(depth):
        for q in range(n):
            circuit.add(str(rng.choice(one_qubit_pool)), q)
        for a, b in orientations[layer % 4]:
            circuit.cz(a, b)
    return circuit
