"""Trotterized 2-local Hamiltonian-simulation workloads.

The paper cites 2QAN (Lao & Browne) — a compiler specialised for
"2-local qubit Hamiltonian simulation algorithms" — as an example of
application-specific compilation.  This module generates that workload
class: first-order Trotter circuits for transverse-field Ising and
Heisenberg models on chains, rings, grids or arbitrary interaction
graphs.  Their interaction graphs equal the model's coupling graph, so
they profile as structured "real" algorithms.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple


from ..circuit import Circuit

__all__ = [
    "ising_chain",
    "ising_ring",
    "ising_grid",
    "heisenberg_chain",
    "two_local_trotter",
]


def two_local_trotter(
    num_qubits: int,
    edges: Iterable[Tuple[int, int]],
    steps: int = 1,
    zz_angle: float = 0.3,
    x_angle: float = 0.2,
    z_angle: float = 0.0,
    name: str = "",
) -> Circuit:
    """First-order Trotter circuit for ``H = sum ZZ + sum X (+ sum Z)``.

    Per Trotter step, every coupling-graph edge contributes one
    ``rzz(2 * zz_angle)`` and every qubit one ``rx(2 * x_angle)`` (plus an
    ``rz`` term when ``z_angle`` is non-zero) — the canonical 2-local
    digital-quantum-simulation template.

    Parameters
    ----------
    num_qubits / edges:
        The simulated model's lattice.
    steps:
        Number of Trotter steps (circuit depth scales linearly).
    zz_angle / x_angle / z_angle:
        Per-step evolution angles (``J*dt``, ``h*dt`` style).
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if steps < 1:
        raise ValueError("need at least one Trotter step")
    edges = [tuple(e) for e in edges]
    for a, b in edges:
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ValueError(f"bad edge ({a}, {b})")
    circuit = Circuit(num_qubits, name=name or f"trotter_{num_qubits}q_s{steps}")
    for _ in range(steps):
        for a, b in edges:
            circuit.rzz(2.0 * zz_angle, a, b)
        for q in range(num_qubits):
            circuit.rx(2.0 * x_angle, q)
            if z_angle != 0.0:
                circuit.rz(2.0 * z_angle, q)
    return circuit


def ising_chain(
    num_qubits: int, steps: int = 3, coupling: float = 0.3, field: float = 0.2
) -> Circuit:
    """Transverse-field Ising model on an open chain."""
    edges = [(q, q + 1) for q in range(num_qubits - 1)]
    return two_local_trotter(
        num_qubits,
        edges,
        steps=steps,
        zz_angle=coupling,
        x_angle=field,
        name=f"ising_chain_{num_qubits}q_s{steps}",
    )


def ising_ring(
    num_qubits: int, steps: int = 3, coupling: float = 0.3, field: float = 0.2
) -> Circuit:
    """Transverse-field Ising model on a closed ring."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least three qubits")
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    return two_local_trotter(
        num_qubits,
        edges,
        steps=steps,
        zz_angle=coupling,
        x_angle=field,
        name=f"ising_ring_{num_qubits}q_s{steps}",
    )


def ising_grid(
    rows: int, cols: int, steps: int = 2, coupling: float = 0.3, field: float = 0.2
) -> Circuit:
    """Transverse-field Ising model on a rows x cols square lattice."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return two_local_trotter(
        rows * cols,
        edges,
        steps=steps,
        zz_angle=coupling,
        x_angle=field,
        name=f"ising_grid_{rows}x{cols}_s{steps}",
    )


def heisenberg_chain(
    num_qubits: int, steps: int = 2, coupling: float = 0.25, field: float = 0.1
) -> Circuit:
    """Heisenberg XXX chain: per step, XX+YY+ZZ on every bond + Z field.

    Each bond contributes ``rxx``, ``ryy``-equivalent and ``rzz``
    rotations (the YY term is synthesised as ``rx``-conjugated ``rzz`` so
    the circuit stays in the library's standard gate vocabulary).
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    circuit = Circuit(
        num_qubits, name=f"heisenberg_{num_qubits}q_s{steps}"
    )
    theta = 2.0 * coupling
    half = math.pi / 2.0
    for _ in range(steps):
        for q in range(num_qubits - 1):
            circuit.rxx(theta, q, q + 1)
            # YY via basis rotation: RY Y-basis == RX(pi/2)-conjugated ZZ.
            circuit.rx(half, q)
            circuit.rx(half, q + 1)
            circuit.rzz(theta, q, q + 1)
            circuit.rx(-half, q)
            circuit.rx(-half, q + 1)
            circuit.rzz(theta, q, q + 1)
        for q in range(num_qubits):
            circuit.rz(2.0 * field, q)
    return circuit
