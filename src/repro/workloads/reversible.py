"""Reversible-logic benchmark circuits (RevLib-style Toffoli networks).

The paper's benchmark suite includes "reversible ones [48]" — classical
reversible functions realised over {X, CNOT, Toffoli}.  This module
provides the classic arithmetic networks (Cuccaro ripple-carry adder,
incrementer, parity) plus a generator of random Toffoli networks in the
RevLib spirit.  All circuits here are purely classical-reversible, so
their semantics can be verified on computational basis states.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuit import Circuit

__all__ = [
    "cuccaro_adder",
    "parity_circuit",
    "increment_circuit",
    "majority_vote_circuit",
    "random_reversible_circuit",
]


def cuccaro_adder(num_bits: int) -> Circuit:
    """Cuccaro et al. ripple-carry adder: ``b := a + b (mod 2^n)`` + carry.

    Register layout (total ``2*num_bits + 2`` qubits)::

        0                carry-in  c0
        1 .. n           b_0 .. b_{n-1}   (LSB first; receives the sum)
        n+1 .. 2n        a_0 .. a_{n-1}
        2n+1             carry-out z

    Built from the MAJ / UMA blocks of the original paper; only X, CNOT
    and Toffoli gates are used.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    n = num_bits
    total = 2 * n + 2
    circuit = Circuit(total, name=f"cuccaro_adder_{n}b")
    b = [1 + i for i in range(n)]
    a = [n + 1 + i for i in range(n)]
    z = 2 * n + 1

    def maj(c: int, y: int, x: int) -> None:
        circuit.cx(x, y)
        circuit.cx(x, c)
        circuit.ccx(c, y, x)

    def uma(c: int, y: int, x: int) -> None:
        circuit.ccx(c, y, x)
        circuit.cx(x, c)
        circuit.cx(c, y)

    carries = [0] + a[:-1]
    for i in range(n):
        maj(carries[i], b[i], a[i])
    circuit.cx(a[n - 1], z)
    for i in reversed(range(n)):
        uma(carries[i], b[i], a[i])
    return circuit


def parity_circuit(num_bits: int) -> Circuit:
    """Compute the parity of ``num_bits`` inputs into one ancilla (CNOT fan-in)."""
    if num_bits < 1:
        raise ValueError("parity needs at least one bit")
    circuit = Circuit(num_bits + 1, name=f"parity_{num_bits}b")
    for q in range(num_bits):
        circuit.cx(q, num_bits)
    return circuit


def _multi_controlled_x(
    circuit: Circuit, controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> None:
    """X on ``target`` controlled on all of ``controls`` (Toffoli V-chain)."""
    controls = list(controls)
    if not controls:
        circuit.x(target)
        return
    if len(controls) == 1:
        circuit.cx(controls[0], target)
        return
    if len(controls) == 2:
        circuit.ccx(controls[0], controls[1], target)
        return
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise ValueError(f"{needed} ancillas required, got {len(ancillas)}")
    chain = [(controls[0], controls[1], ancillas[0])]
    circuit.ccx(*chain[0])
    for i in range(2, len(controls) - 1):
        step = (controls[i], ancillas[i - 2], ancillas[i - 1])
        circuit.ccx(*step)
        chain.append(step)
    circuit.ccx(controls[-1], ancillas[needed - 1], target)
    for step in reversed(chain):
        circuit.ccx(*step)


def increment_circuit(num_bits: int) -> Circuit:
    """``x := x + 1 (mod 2^n)`` on an LSB-first register.

    Bit ``i`` flips when all lower bits are 1, so the circuit is a cascade
    of multi-controlled X gates from the top down; ``max(0, n - 3)``
    ancilla qubits are appended for the Toffoli V-chains.
    """
    if num_bits < 1:
        raise ValueError("incrementer needs at least one bit")
    n = num_bits
    num_ancillas = max(0, n - 3)
    circuit = Circuit(n + num_ancillas, name=f"increment_{n}b")
    ancillas = list(range(n, n + num_ancillas))
    for target in reversed(range(n)):
        _multi_controlled_x(circuit, list(range(target)), target, ancillas)
    return circuit


def majority_vote_circuit(num_voters: int = 3) -> Circuit:
    """Majority-of-three style voting network into an output ancilla.

    For the classic ``num_voters = 3`` case the output qubit receives
    MAJ(a, b, c) = ab xor ac xor bc; larger odd voter counts chain the
    pairwise products.
    """
    if num_voters < 3 or num_voters % 2 == 0:
        raise ValueError("need an odd number of voters >= 3")
    output = num_voters
    circuit = Circuit(num_voters + 1, name=f"majority_{num_voters}")
    for i in range(num_voters):
        for j in range(i + 1, num_voters):
            circuit.ccx(i, j, output)
    return circuit


def random_reversible_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Optional[int] = None,
    toffoli_fraction: float = 0.3,
    cnot_fraction: float = 0.4,
) -> Circuit:
    """Random Toffoli network over {X, CNOT, Toffoli} (RevLib flavour).

    Gate kinds are drawn with the given fractions (remainder are X gates);
    operands are uniform without replacement.  Circuits with fewer than
    three qubits degrade Toffolis to CNOTs, and fewer than two degrade
    everything to X.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if toffoli_fraction + cnot_fraction > 1.0:
        raise ValueError("gate fractions exceed 1")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"revnet_{num_qubits}q_{num_gates}g")
    for _ in range(num_gates):
        draw = rng.random()
        if draw < toffoli_fraction and num_qubits >= 3:
            a, b, c = (int(q) for q in rng.choice(num_qubits, 3, replace=False))
            circuit.ccx(a, b, c)
        elif draw < toffoli_fraction + cnot_fraction and num_qubits >= 2:
            a, b = (int(q) for q in rng.choice(num_qubits, 2, replace=False))
            circuit.cx(a, b)
        else:
            circuit.x(int(rng.integers(num_qubits)))
    return circuit
